//! A full perturbation-free debugging session (paper §4 / Fig. 4): record
//! a racy execution, then debug the *recording* — breakpoints, stepping
//! (forward and backward), stack traces with reflective line numbers, the
//! thread viewer — through the three-tier TCP architecture.
//!
//! ```sh
//! cargo run --example debug_session
//! ```

use debugger::{Command, DebugClient, DebugSession, Response};
use dejavu::{record_run, ExecSpec, SymmetryConfig};

fn main() {
    // Tier 0: record the application.
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "producer_consumer")
        .unwrap();
    let mut spec = ExecSpec::new((w.build)()).with_seed(6);
    spec.timer_base = 53;
    spec.timer_jitter = 19;
    let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    println!("recorded execution: output {:?}\n", rec.output.trim());

    // Tier 1: the debugger tier hosts a replaying session over TCP.
    let consumer = spec.program.method_id_by_name("consumer").unwrap();
    let session = DebugSession::new(spec.program.clone(), spec.vm.clone(), trace, 5_000);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || debugger::server::serve_one(session, listener).unwrap());

    // Tier 2: the "GUI" (CLI client) connects over TCP.
    let mut client = DebugClient::connect(&addr.to_string()).unwrap();
    println!("== set a breakpoint at consumer:0 and continue ==");
    client.brk(consumer, 0).unwrap();
    let r = client.cont().unwrap();
    println!("  {r:?}");

    println!("\n== thread viewer ==");
    if let Response::Threads { threads } = client.threads().unwrap() {
        for t in &threads {
            println!(
                "  t{} {:12} {:18} pc={} yp={}",
                t.tid, t.name, t.status, t.pc, t.yield_points
            );
        }
        let running = threads.iter().find(|t| t.status == "running").unwrap().tid;
        println!("\n== stack trace of the running thread (lines via remote reflection) ==");
        if let Response::Stack { frames } = client.stack(running).unwrap() {
            for f in &frames {
                println!("  {}:{} (pc {}) {}", f.method_name, f.line, f.pc, f.op);
            }
        }
    }

    println!("\n== step forward 3, then step BACK 2 (checkpoint time travel) ==");
    for _ in 0..3 {
        let r = client.step().unwrap();
        if let Response::Stopped { step, .. } = r {
            print!(" -> {step}");
        }
    }
    for _ in 0..2 {
        let r = client.step_back().unwrap();
        if let Response::Stopped { step, .. } = r {
            print!(" <- {step}");
        }
    }
    println!();

    println!("\n== clear the breakpoint, run to completion ==");
    client
        .request(&Command::ClearBreak {
            method: consumer,
            pc: 0,
        })
        .unwrap();
    let r = client.cont().unwrap();
    println!("  {r:?}");
    if let Response::Output { text } = client.output().unwrap() {
        println!("  replayed output: {:?}", text.trim());
        assert_eq!(text, rec.output, "debugging did not perturb the replay");
        println!("  identical to the recorded output ✓");
    }
    client.quit().unwrap();
    server.join().unwrap();
}
