//! The non-determinism zoo: every source the paper names, demonstrated and
//! tamed — the Figure-1 examples, timed events, and JNI natives.
//!
//! ```sh
//! cargo run --example nondeterminism_zoo
//! ```

use dejavu::{record_replay, ExecSpec, SymmetryConfig};
use std::collections::BTreeMap;

fn main() {
    // Figure 1 (A)/(B): the printed value depends on preemption timing.
    println!("== Fig. 1 (A)/(B): preemptive-switch timing ==");
    let mut hist: BTreeMap<String, u32> = BTreeMap::new();
    for seed in 0..40u64 {
        let mut s = ExecSpec::new(workloads::fig1::fig1_ab()).with_seed(seed);
        s.timer_base = 11;
        s.timer_jitter = 5;
        let (rec, _rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(ok, "replay must be accurate");
        *hist.entry(rec.output.trim().to_string()).or_default() += 1;
    }
    for (v, n) in &hist {
        println!("  printed {v}: {n}/40 runs (each replayed exactly)");
    }

    // Figure 1 (C)/(D): Date() steers a branch that decides a wait/notify
    // thread switch.
    println!("\n== Fig. 1 (C)/(D): wall-clock-driven branch ==");
    let mut wait = 0;
    let mut skip = 0;
    for seed in 0..40u64 {
        let mut s = ExecSpec::new(workloads::fig1::fig1_cd()).with_seed(seed);
        s.clock_noise = 40;
        let (rec, _rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        assert!(ok);
        if rec.output.lines().next() == Some("1") {
            wait += 1;
        } else {
            skip += 1;
        }
    }
    println!("  took the wait branch (case C): {wait}/40");
    println!("  skipped it (case D):          {skip}/40");

    // Timed events: sleeps, timed waits, interrupts.
    println!("\n== timed events (sleep / timed wait / interrupt) ==");
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "sleepy_workers")
        .unwrap();
    for seed in 0..3u64 {
        let mut s = ExecSpec::new((w.build)()).with_seed(seed);
        s.timer_base = 53;
        s.timer_jitter = 19;
        let (rec, rep, ok) = record_replay(&s, w.natives, SymmetryConfig::full());
        assert!(ok);
        println!(
            "  seed {seed}: acc = {} (replayed: {})",
            rec.output.trim(),
            rep.output.trim()
        );
    }

    // JNI natives: a stateful, time-salted request source with callbacks —
    // captured during record, regenerated during replay without executing
    // the native at all.
    println!("\n== native calls + callbacks (server workload) ==");
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "server_loop")
        .unwrap();
    let mut s = ExecSpec::new((w.build)()).with_seed(9);
    s.timer_base = 53;
    s.timer_jitter = 19;
    let (rec, rep, ok) = record_replay(&s, w.natives, SymmetryConfig::full());
    assert!(ok);
    let rec_lines: Vec<&str> = rec.output.lines().collect();
    println!(
        "  checksum: {}   callback events: {}",
        rec_lines[0], rec_lines[1]
    );
    println!("  replay identical: {}", rec.output == rep.output);
    println!("\nEvery source of non-determinism, replayed. ✓");
}
