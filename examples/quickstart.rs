//! Quickstart: build a racy multithreaded guest program, watch it behave
//! differently run to run, then record one execution and replay it exactly.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dejavu::{passthrough_run, record_run, replay_run, ExecSpec, SymmetryConfig};
use djvm::{ProgramBuilder, Ty};

fn main() {
    // 1. A guest program: two threads race unsynchronized increments.
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("count", Ty::Int).build();
    let worker = pb.method("worker", 0, 3).code(|a| {
        a.iconst(0).store(0);
        a.label("top");
        a.load(0).iconst(500).ge().if_nz("done");
        a.get_static(g, 0).store(1); // read
        a.iconst(0).store(2); // a small delay: the racy window
        a.label("d");
        a.load(2).iconst(3).ge().if_nz("dd");
        a.load(2).iconst(1).add().store(2);
        a.goto("d");
        a.label("dd");
        a.load(1).iconst(1).add().put_static(g, 0); // write (lost updates!)
        a.load(0).iconst(1).add().store(0);
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let main_m = pb.method("main", 0, 2).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(worker, 0).store(0);
        a.spawn(worker, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    let program = pb.finish(main_m).unwrap();

    // 2. The program is non-deterministic: different "machines" (timer
    //    seeds) give different results.
    println!("== uninstrumented runs on different machines ==");
    for seed in 0..5u64 {
        let mut spec = ExecSpec::new(program.clone()).with_seed(seed);
        spec.timer_base = 37;
        spec.timer_jitter = 13;
        let r = passthrough_run(&spec, |_| {});
        println!("  seed {seed}: count = {}", r.output.trim());
    }

    // 3. Record one execution...
    let mut spec = ExecSpec::new(program).with_seed(3);
    spec.timer_base = 37;
    spec.timer_jitter = 13;
    let (rec, trace) = record_run(&spec, |_| {}, SymmetryConfig::full(), true);
    let stats = trace.stats();
    println!("\n== recorded seed 3 ==");
    println!("  output: {}", rec.output.trim());
    println!(
        "  trace: {} bytes ({} preemptive switches, {} clock reads)",
        stats.total_bytes, stats.switch_count, stats.clock_count
    );

    // 4. ...and replay it: identical down to the execution fingerprint.
    let (rep, desyncs) = replay_run(&spec, trace, SymmetryConfig::full());
    println!("\n== replay ==");
    println!("  output: {}", rep.output.trim());
    println!("  desyncs: {}", desyncs.len());
    println!(
        "  fingerprints match: {}",
        rec.fingerprint == rep.fingerprint
    );
    println!(
        "  final program states match: {}",
        rec.state_digest == rep.state_digest
    );
    assert!(rec.matches(&rep) && desyncs.is_empty());
    println!("\nDeterministic replay of a non-deterministic execution. ✓");
}
