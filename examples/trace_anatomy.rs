//! Trace anatomy: what DejaVu logs (and, more importantly, what it does
//! not), compared byte-for-byte with the related-work schemes of §5.
//!
//! ```sh
//! cargo run --example trace_anatomy
//! ```

use baselines::trace_size_comparison;
use dejavu::{record_run, DataRec, ExecSpec, SymmetryConfig};

fn main() {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "producer_consumer")
        .unwrap();
    let mut spec = ExecSpec::new((w.build)()).with_seed(4);
    spec.timer_base = 401; // a moderate preemption quantum
    spec.timer_jitter = 100;

    let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), false);
    let stats = trace.stats();

    println!("== what one DejaVu trace contains ==");
    println!("execution:        {} instructions", rec.counters.steps);
    println!("thread switches:  {} total", rec.counters.thread_switches);
    println!(
        "  deterministic:  {} (monitors/wait/join/sleep — NOT logged)",
        rec.counters.thread_switches - rec.counters.preemptive_switches
    );
    println!(
        "  preemptive:     {} (logged as nyp deltas: {} bytes)",
        stats.switch_count, stats.switch_bytes
    );
    println!("clock reads:      {} (logged)", stats.clock_count);
    println!("native outcomes:  {} (logged)", stats.native_count);
    println!("total trace:      {} bytes", stats.total_bytes);

    println!("\nfirst ten switch deltas (yield points between preemptions):");
    for s in trace.switches.iter().take(10) {
        print!(" {}", s.nyp);
    }
    println!();
    println!("first five data events:");
    for d in trace.data.iter().take(5) {
        match d {
            DataRec::Clock(v) => println!("  clock read -> {v}"),
            DataRec::Native { ret, callbacks } => {
                println!("  native -> {ret} ({} callbacks)", callbacks.len())
            }
        }
    }

    // The binary encoding round-trips.
    let bytes = trace.encoded();
    let decoded = dejavu::Trace::decode(&bytes).unwrap();
    assert_eq!(decoded, trace);
    println!("\nbinary encoding: {} bytes, round-trips ✓", bytes.len());

    println!("\n== the same execution under every scheme (paper §5) ==");
    let row = trace_size_comparison("producer_consumer", &spec, w.natives);
    println!(
        "DejaVu        : {:>8} bytes  ({} preemptive switch records)",
        row.dejavu_bytes, row.dejavu_switches
    );
    println!(
        "Russinovich-C : {:>8} bytes  ({} dispatch records — every switch)",
        row.rc_bytes, row.rc_dispatches
    );
    println!(
        "InstantReplay : {:>8} bytes  ({} access records — every shared access)",
        row.ir_bytes, row.ir_accesses
    );
    println!(
        "Recap readlog : {:>8} bytes  ({} read values)",
        row.readlog_bytes, row.readlog_reads
    );
    println!(
        "\nDejaVu's trace is {:.0}x smaller than access logging on this run.",
        row.ir_bytes as f64 / row.dejavu_bytes as f64
    );
}
