//! The paper's Figure 3, live: `Debugger.lineNumberOf` executed by a tool
//! against the application VM's address space — over TCP, across
//! processes' worth of separation — while the application VM executes
//! nothing.
//!
//! ```sh
//! cargo run --example remote_reflection
//! ```

use djvm::{interp, CycleClock, FixedTimer, Passthrough, ProgramBuilder, Ty, Vm, VmConfig};
use reflect::{mirror, LocalVmMemory, ProcessMemory, RemoteReflector, TcpMemory};
use std::sync::Arc;

fn main() {
    // The "application": builds a little object graph, then halts.
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("head", Ty::Ref).build();
    let node = pb
        .class("Node")
        .field("value", Ty::Int)
        .field("next", Ty::Ref)
        .build();
    let m = pb.method("main", 0, 2).code(|a| {
        a.line(10).null().store(0);
        a.line(11).iconst(0).store(1);
        a.label("top");
        a.line(12).load(1).iconst(4).ge().if_nz("done");
        a.line(13).new(node).dup().load(1).put_field(0);
        a.line(14).dup().load(0).put_field_ref(1).store(0);
        a.line(15).load(1).iconst(1).add().store(1);
        a.goto("top");
        a.label("done");
        a.line(16).load(0).put_static(g, 0);
        a.line(17).halt();
    });
    let program = Arc::new(pb.finish(m).unwrap());

    let mut vm = Vm::boot(
        Arc::clone(&program),
        VmConfig::default(),
        Box::new(FixedTimer::new(1 << 20)),
        Box::new(CycleClock::new(0, 100)),
    )
    .unwrap();
    let mut hook = Passthrough;
    interp::run(&mut vm, &mut hook, 1_000_000);
    println!("application VM halted; heap holds a 4-node list\n");

    // -- In-process "ptrace": the Figure-3 query --------------------------
    println!("== Figure 3: lineNumberOf over LocalVmMemory ==");
    {
        let mem = LocalVmMemory::new(&vm);
        let mut refl = RemoteReflector::new(Arc::clone(&program), &mem);
        refl.map_boot_method_table(vm.boot_image.method_table);
        for offset in [0u32, 5, 9, 14] {
            let line = refl.line_number_of(program.entry, offset).unwrap();
            println!("  main @ bytecode {offset} -> source line {line}");
        }

        // Walk the remote object graph with mirrors.
        let gobj = vm.class_objects[program.class_id_by_name("G").unwrap() as usize].unwrap();
        let mut cur = mem.read_word(gobj + 1).unwrap();
        println!("\n  remote list walk:");
        while cur != 0 {
            println!("    {}", mirror::describe(&mem, &program, cur));
            cur = mem.read_word(cur + 2).unwrap(); // .next
        }
    }

    // -- The same query over TCP (separate server thread = the remote
    //    process; the VM executes nothing on the tool's behalf). ---------
    println!("\n== the same query over TCP ==");
    let table = vm.boot_image.method_table;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || reflect::serve_one(vm, listener).unwrap());
    {
        let mem = TcpMemory::connect(&addr.to_string()).unwrap();
        let mut refl = RemoteReflector::new(Arc::clone(&program), &mem);
        refl.map_boot_method_table(table);
        let line = refl.line_number_of(program.entry, 9).unwrap();
        println!("  main @ bytecode 9 -> source line {line}");
        println!("  TCP word-read round trips: {}", mem.round_trips());
    }
    let _vm = server.join().unwrap();
    println!("\nno application code executed on the tool's behalf. ✓");
}
