//! Demonstrate divergence-driven shrinking: ablate the LiveClock
//! symmetry (a controlled stand-in for a platform regression), hand the
//! diverging corpus spec to the qc tape shrinker, and print the minimal
//! canonical-JSON repro blob.
//!
//! ```sh
//! cargo run --release --example corpus_shrink
//! ```

use dejavu_repro::corpus::{run_repro, shrink_divergence, ReproSpec};
use dejavu_repro::dejavu::{Ablation, SymmetryConfig};

fn main() {
    let sym = SymmetryConfig::ablate(Ablation::LiveClock);
    let start = ReproSpec {
        workload: "clock_spin".into(),
        seed: 7,
        timer_base: 211,
        timer_jitter: 60,
        clock_noise: 3,
    };
    println!("start spec : {}", start.to_json().to_canonical_string());
    println!("start tape : {:?}", start.tape().unwrap());
    let t0 = std::time::Instant::now();
    let repro = shrink_divergence(&start, sym).expect("ablated clock_spin diverges");
    println!("shrunk in  : {} ms", t0.elapsed().as_millis());
    println!("minimal    : {}", repro.to_blob());
    // The blob is directly replayable:
    let err = run_repro(&repro.spec, sym).unwrap_err();
    println!("replayed   : {err}");
}
