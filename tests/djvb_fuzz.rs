//! Fuzz oracle for the DJVB decode path (the blocktrace bugfixes): feed
//! seeded, deterministic mutations of valid trace bytes — bit flips,
//! truncations, byte overwrites, insertions — into every decoder entry
//! point and assert "typed error or success, never panic".
//!
//! This is what makes the corpus gate's exit-code contract trustworthy:
//! a panicking decoder would turn a corrupt artifact (exit 1) into an
//! abort (SIGABRT / exit 101).

use dejavu_repro::dejavu::{
    decode_any, encode_trace, sniff_format, BlockFile, DataRec, SwitchRec, Trace, TraceFormat,
};
use dejavu_repro::qc::{check, Gen};
use dejavu_repro::qc_assert;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A structurally valid random trace: the mutation starting point.
fn gen_trace(g: &mut Gen) -> Trace {
    let paranoid = g.bool();
    let switches = g.vec_of(0, 40, |g| SwitchRec {
        nyp: g.u64_in(0, 50_000),
        check_tid: if paranoid {
            g.u64_in(0, 5) as u32
        } else {
            u32::MAX
        },
    });
    let data = g.vec_of(0, 40, |g| {
        if g.bool() {
            DataRec::Clock(g.i64_in(-5, 2_000_000))
        } else {
            DataRec::Native {
                ret: g.any_i64(),
                callbacks: g.vec_of(0, 3, |g| {
                    (g.u64_in(0, 7) as u32, g.vec_of(0, 3, |g| g.i64_in(-9, 9)))
                }),
            }
        }
    });
    Trace {
        paranoid,
        switches,
        data,
    }
}

/// Apply one seeded mutation to `bytes` (no-op on empty input).
fn mutate(g: &mut Gen, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    match g.usize_in(0, 3) {
        // bit flip
        0 => {
            let i = g.usize_in(0, bytes.len() - 1);
            bytes[i] ^= 1 << g.usize_in(0, 7);
        }
        // byte overwrite (0x00 and 0xFF are the interesting extremes for
        // varint columns; draw them often)
        1 => {
            let i = g.usize_in(0, bytes.len() - 1);
            bytes[i] = [0x00, 0xFF, 0x7F, 0x80][g.usize_in(0, 3)];
        }
        // truncate
        2 => {
            let keep = g.usize_in(0, bytes.len() - 1);
            bytes.truncate(keep);
        }
        // insert a byte
        _ => {
            let i = g.usize_in(0, bytes.len());
            bytes.insert(i, g.u64_in(0, 255) as u8);
        }
    }
}

/// Run every decoder entry point over the bytes; the closure's only job
/// is to not panic.
fn exercise_decoders(bytes: &[u8]) {
    let _ = sniff_format(bytes);
    if let Ok((t, _)) = decode_any(bytes) {
        let _ = t.stats();
    }
    let _ = Trace::decode(bytes);
    if let Ok(bf) = BlockFile::parse(bytes.to_vec()) {
        let _ = bf.verify();
        let _ = bf.crc_status();
        let _ = bf.boundaries();
        let _ = bf.stats();
        for i in 0..bf.index.len() {
            let _ = bf.block(i);
        }
        let _ = bf.to_trace();
    }
}

#[test]
fn mutated_djvb_bytes_never_panic() {
    check("mutated_djvb_bytes_never_panic", 600, |g| {
        let trace = gen_trace(g);
        let format = if g.bool() {
            TraceFormat::Block
        } else {
            TraceFormat::Flat
        };
        let budget = [24, 48, 96, 4096][g.usize_in(0, 3)];
        let mut bytes = encode_trace(&trace, format, budget);
        let mutations = g.usize_in(1, 8);
        for _ in 0..mutations {
            mutate(g, &mut bytes);
        }
        let ok = catch_unwind(AssertUnwindSafe(|| exercise_decoders(&bytes))).is_ok();
        qc_assert!(ok, "decoder panicked on mutated {} bytes", bytes.len());
        Ok(())
    });
}

#[test]
fn unmutated_bytes_round_trip() {
    // Control arm: without mutations the same pipeline must decode back
    // to the identical trace (so the fuzz arm is mutating real encodings,
    // not already-broken ones).
    check("unmutated_bytes_round_trip", 120, |g| {
        let trace = gen_trace(g);
        let budget = [24, 48, 96, 4096][g.usize_in(0, 3)];
        let bytes = encode_trace(&trace, TraceFormat::Block, budget);
        let (decoded, format) = decode_any(&bytes).map_err(|e| e.to_string())?;
        qc_assert!(format == TraceFormat::Block);
        qc_assert!(decoded == trace, "block round-trip changed the trace");
        Ok(())
    });
}

/// The two crafted inputs the satellite bugfixes are about, as explicit
/// regressions beside the random sweep: a frame-of-reference column whose
/// `min + delta` overflows `u64`, and an all-0xFF varint header region.
#[test]
fn crafted_extremes_never_panic() {
    let trace = Trace {
        paranoid: true,
        switches: (0..12)
            .map(|i| SwitchRec {
                nyp: u64::MAX - i,
                check_tid: 0,
            })
            .collect(),
        data: vec![DataRec::Clock(i64::MAX), DataRec::Clock(i64::MIN)],
    };
    let bytes = encode_trace(&trace, TraceFormat::Block, 48);
    // Saturate every byte region in turn.
    for start in 0..bytes.len().min(64) {
        let mut b = bytes.clone();
        for x in b[start..].iter_mut().take(10) {
            *x = 0xFF;
        }
        let ok = catch_unwind(AssertUnwindSafe(|| exercise_decoders(&b))).is_ok();
        assert!(ok, "panic with 0xFF run at {start}");
    }
}
