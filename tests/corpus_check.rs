//! The trace-corpus CI stage, end to end: the committed corpus passes,
//! injected failures classify onto the 0/1/2 exit contract, and a real
//! divergence shrinks to a minimal canonical-JSON reproducer.

use dejavu_repro::corpus::{
    check_corpus, check_trace, kind_string, shrink_divergence, Policy, ReproSpec,
};
use dejavu_repro::dejavu::{Ablation, SymmetryConfig};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Fresh scratch directory under the target dir (no tempfile dep).
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(format!("corpus-scratch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_corpus(tag: &str) -> PathBuf {
    let dst = scratch(tag);
    for entry in std::fs::read_dir(corpus_dir()).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    dst
}

#[test]
fn committed_corpus_passes() {
    let report = check_corpus(&corpus_dir()).unwrap();
    assert_eq!(
        report.exit_class(),
        0,
        "corpus failed: {:#?}",
        report.checks
    );
    // Acceptance floor: ≥10 traces over ≥5 scenarios.
    assert!(report.checks.len() >= 10, "only {}", report.checks.len());
    let mut scenarios: Vec<String> = report
        .checks
        .iter()
        .filter_map(|c| c.name.rsplit_once("_s").map(|(w, _)| w.to_owned()))
        .collect();
    scenarios.sort();
    scenarios.dedup();
    assert!(scenarios.len() >= 5, "only scenarios {scenarios:?}");
    // The seek-latency policy must actually be exercised on multi-block
    // traces, not vacuously skipped everywhere.
    assert!(
        report
            .checks
            .iter()
            .filter(|c| c.seek_events.is_some())
            .count()
            >= 5,
        "too few multi-block traces"
    );
}

#[test]
fn injected_fingerprint_mismatch_is_a_violation() {
    let dir = copy_corpus("fp");
    let policy_path = dir.join("clock_spin_s1.policy.json");
    let text = std::fs::read_to_string(&policy_path).unwrap();
    let mut policy = Policy::parse(&text).unwrap();
    policy.expected_fingerprint ^= 1;
    std::fs::write(&policy_path, policy.to_canonical_string()).unwrap();
    let report = check_corpus(&dir).unwrap();
    assert_eq!(report.exit_class(), 2);
    let bad = report
        .checks
        .iter()
        .find(|c| c.name == "clock_spin_s1")
        .unwrap();
    assert!(bad.diverged);
    assert!(bad
        .violations
        .iter()
        .any(|v| v.contains("replay fingerprint")));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn injected_corruption_is_corrupt_class() {
    let dir = copy_corpus("corrupt");
    let trace_path = dir.join("lock_convoy_s1.djvb");
    let bytes = std::fs::read(&trace_path).unwrap();
    std::fs::write(&trace_path, &bytes[..bytes.len() / 2]).unwrap();
    let report = check_corpus(&dir).unwrap();
    assert_eq!(report.exit_class(), 1);
    assert!(report
        .checks
        .iter()
        .any(|c| c.name == "lock_convoy_s1" && c.corrupt.is_some()));
    // A missing policy is also corruption, not a silent skip.
    std::fs::remove_file(dir.join("gc_pressure_s1.policy.json")).unwrap();
    let report = check_corpus(&dir).unwrap();
    assert!(report.checks.iter().any(|c| c.name == "gc_pressure_s1"
        && c.corrupt.as_deref().is_some_and(|m| m.contains("policy"))));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn lenient_trace_warns_instead_of_failing() {
    let dir = copy_corpus("lenient");
    // racy_counter_s3 is the corpus's lenient entry; give it an
    // unsatisfiable size ceiling and the corpus must still pass.
    let policy_path = dir.join("racy_counter_s3.policy.json");
    let mut policy = Policy::parse(&std::fs::read_to_string(&policy_path).unwrap()).unwrap();
    assert!(!policy.strict, "racy_counter_s3 should ride lenient");
    policy.max_trace_bytes = 1;
    std::fs::write(&policy_path, policy.to_canonical_string()).unwrap();
    let report = check_corpus(&dir).unwrap();
    assert_eq!(report.exit_class(), 0);
    let c = report
        .checks
        .iter()
        .find(|c| c.name == "racy_counter_s3")
        .unwrap();
    assert!(c.violations.is_empty() && !c.warnings.is_empty());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn forbidden_sequence_policy_fires() {
    // Forbid clock reads in a clock-dominated trace: must violate.
    let path = corpus_dir().join("clock_spin_s1.djvb");
    let bytes = std::fs::read(path).unwrap();
    let text = std::fs::read_to_string(corpus_dir().join("clock_spin_s1.policy.json")).unwrap();
    let mut policy = Policy::parse(&text).unwrap();
    policy.forbid = vec!["CC".into()];
    let check = check_trace("clock_spin_s1", &bytes, &policy);
    assert!(check
        .violations
        .iter()
        .any(|v| v.contains("forbidden event sequence")));
    // Sanity: the committed policy's own patterns are absent.
    let (trace, _) = dejavu_repro::dejavu::decode_any(&bytes).unwrap();
    assert!(!kind_string(&trace).contains('N'));
}

#[test]
fn divergence_shrinks_to_minimal_repro() {
    // LiveClock ablation genuinely diverges on clock-reading workloads —
    // the controlled stand-in for a real platform regression.
    let sym = SymmetryConfig::ablate(Ablation::LiveClock);
    let start = ReproSpec {
        workload: "clock_spin".into(),
        seed: 7,
        timer_base: 211,
        timer_jitter: 60,
        clock_noise: 3,
    };
    let repro = shrink_divergence(&start, sym).expect("ablated clock_spin must diverge");
    // The shrinker minimizes toward each range's floor while preserving
    // failure; the result must still diverge and be no larger than the
    // starting tape.
    assert!(repro.msg.contains("diverged"), "{}", repro.msg);
    assert!(repro.tape.len() <= start.tape().unwrap().len());
    assert!(repro.tape.iter().sum::<u64>() <= start.tape().unwrap().iter().sum::<u64>());
    let blob = repro.to_blob();
    // The blob is canonical JSON carrying the spec and the tape.
    let parsed = dejavu_repro::codec::Json::parse(&blob).unwrap();
    assert_eq!(parsed.to_canonical_string(), blob);
    assert!(parsed.field("spec").is_ok() && parsed.field("tape").is_ok());
    // And the shrunk spec still reproduces the divergence directly.
    assert!(dejavu_repro::corpus::run_repro(&repro.spec, sym).is_err());
}

#[test]
fn full_symmetry_never_diverges_so_shrinker_declines() {
    let start = ReproSpec {
        workload: "clock_spin".into(),
        seed: 7,
        timer_base: 211,
        timer_jitter: 60,
        clock_noise: 3,
    };
    assert!(shrink_divergence(&start, SymmetryConfig::full()).is_none());
}
