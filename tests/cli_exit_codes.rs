//! The documented exit-code contract, driven through the real binary:
//! `0` success / accurate / corpus pass, `1` usage, I/O, or corrupt
//! input, `2` divergence or policy violation — consistently, for every
//! subcommand, including hostile inputs (a panic would surface as 101).

use std::path::{Path, PathBuf};
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dejavu-cli"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(format!("cli-scratch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> (i32, String) {
    let out = cli().args(args).output().expect("spawn dejavu-cli");
    (
        out.status.code().expect("no exit code (killed by signal?)"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn usage_errors_exit_1() {
    assert_eq!(run(&[]).0, 1);
    assert_eq!(run(&["no-such-subcommand"]).0, 1);
    assert_eq!(run(&["run", "no-such-workload"]).0, 1);
    assert_eq!(run(&["record", "racy_counter"]).0, 1); // missing args
    assert_eq!(run(&["check"]).0, 1);
    assert_eq!(run(&["corpus"]).0, 1);
    assert_eq!(run(&["replay", "racy_counter", "1", "/no/such/file"]).0, 1);
}

#[test]
fn corrupt_inputs_exit_1_not_panic() {
    let dir = scratch("corrupt-inputs");
    // Corrupt variants: wrong magic, truncated block trace, random junk.
    let junk = dir.join("junk.djvb");
    std::fs::write(&junk, b"not a trace at all").unwrap();
    let trunc = dir.join("trunc.djvb");
    let (code, _) = run(&[
        "record",
        "clock_spin",
        "1",
        trunc.to_str().unwrap(),
        "--trace-format",
        "block",
    ]);
    assert_eq!(code, 0);
    let bytes = std::fs::read(&trunc).unwrap();
    std::fs::write(&trunc, &bytes[..bytes.len() / 3]).unwrap();

    for f in [&junk, &trunc] {
        let f = f.to_str().unwrap();
        let (code, err) = run(&["replay", "clock_spin", "1", f]);
        assert_eq!(code, 1, "replay {f}: {err}");
        let (code, err) = run(&["trace", "inspect", f]);
        assert_eq!(code, 1, "inspect {f}: {err}");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn replay_wrong_seed_exits_2() {
    let dir = scratch("wrong-seed");
    let trace = dir.join("t.djvb");
    assert_eq!(
        run(&["record", "racy_counter", "1", trace.to_str().unwrap()]).0,
        0
    );
    // Same trace, different seed: a divergence, not an I/O problem.
    let (code, err) = run(&["replay", "racy_counter", "2", trace.to_str().unwrap()]);
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("DIVERGED"), "{err}");
    // And the matching seed replays accurately.
    assert_eq!(
        run(&["replay", "racy_counter", "1", trace.to_str().unwrap()]).0,
        0
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn checkjson_contract() {
    let dir = scratch("checkjson");
    let invalid = dir.join("invalid.json");
    std::fs::write(&invalid, "{nope").unwrap();
    assert_eq!(run(&["checkjson", invalid.to_str().unwrap()]).0, 1);
    let non_canonical = dir.join("non_canonical.json");
    std::fs::write(&non_canonical, r#"{"b":1,"a":2}"#).unwrap();
    assert_eq!(run(&["checkjson", non_canonical.to_str().unwrap()]).0, 1);
    let canonical = dir.join("canonical.json");
    std::fs::write(&canonical, r#"{"a":2,"b":1}"#).unwrap();
    assert_eq!(run(&["checkjson", canonical.to_str().unwrap()]).0, 0);
    assert_eq!(run(&["checkjson", "/no/such/file.json"]).0, 1);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn store_subcommand_exit_classes() {
    let dir = scratch("store-classes");
    let root = dir.join("store");
    let trace = dir.join("t.djvb");
    assert_eq!(
        run(&[
            "record",
            "racy_counter",
            "1",
            trace.to_str().unwrap(),
            "--trace-format",
            "block",
        ])
        .0,
        0
    );
    let root_s = root.to_str().unwrap();
    let trace_s = trace.to_str().unwrap();

    // Usage class.
    assert_eq!(run(&["store"]).0, 1);
    assert_eq!(run(&["store", "put", root_s]).0, 1);
    assert_eq!(run(&["store", "no-such-op", root_s]).0, 1);

    // Verified put: exit 0 and a canonical-JSON outcome with the entry id.
    let out = cli()
        .args(["store", "put", root_s, "racy_counter", "1", trace_s])
        .output()
        .expect("spawn dejavu-cli");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let doc = dejavu_repro::codec::Json::parse(stdout.trim()).expect("put outcome json");
    let entry = doc.field("entry").unwrap().as_str().unwrap().to_string();
    // Repeated put of the same run dedups and still succeeds.
    assert_eq!(run(&["store", "put", root_s, "racy_counter", "1", trace_s]).0, 0);

    // Divergence class: claiming the wrong seed is exit 2, like `replay`.
    let (code, err) = run(&["store", "put", root_s, "racy_counter", "2", trace_s]);
    assert_eq!(code, 2, "{err}");

    // Corrupt-input class: junk bytes fail decode before cataloging.
    let junk = dir.join("junk.djvb");
    std::fs::write(&junk, b"not a trace").unwrap();
    assert_eq!(
        run(&["store", "put", root_s, "racy_counter", "1", junk.to_str().unwrap()]).0,
        1
    );

    // Reconstruction: byte-exact, exit 0; bogus entry id is exit 1.
    let back = dir.join("back.djvb");
    assert_eq!(
        run(&["store", "get", root_s, &entry, back.to_str().unwrap()]).0,
        0
    );
    assert_eq!(std::fs::read(&back).unwrap(), std::fs::read(&trace).unwrap());
    let bogus = "f".repeat(32);
    assert_eq!(
        run(&["store", "get", root_s, &bogus, back.to_str().unwrap()]).0,
        1
    );

    // Maintenance + stats on a healthy store: all exit 0.
    for op in ["ls", "gc", "compact", "stats"] {
        let (code, err) = run(&["store", op, root_s]);
        assert_eq!(code, 0, "store {op}: {err}");
    }

    // Injected block damage: get degrades to the corrupt class, no panic.
    let mut smashed = false;
    for shard in std::fs::read_dir(root.join("blocks")).unwrap() {
        for blk in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            std::fs::write(blk.unwrap().path(), b"").unwrap();
            smashed = true;
        }
    }
    assert!(smashed, "store held no block files");
    assert_eq!(
        run(&["store", "get", root_s, &entry, back.to_str().unwrap()]).0,
        1
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn check_subcommand_exit_classes() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    // Pass: the committed corpus.
    let (code, err) = run(&["check", src.to_str().unwrap()]);
    assert_eq!(code, 0, "{err}");
    // Missing / empty directory: I/O class.
    assert_eq!(run(&["check", "/no/such/corpus"]).0, 1);
    let empty = scratch("check-empty");
    assert_eq!(run(&["check", empty.to_str().unwrap()]).0, 1);

    // Injected corruption: class 1. Injected policy mismatch: class 2.
    let dir = scratch("check-inject");
    for entry in std::fs::read_dir(&src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    let victim = dir.join("recursion_storm_s1.djvb");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() - 7]).unwrap();
    assert_eq!(run(&["check", dir.to_str().unwrap()]).0, 1);
    // Restore the trace, then poison a policy digest.
    std::fs::write(&victim, &bytes).unwrap();
    let policy_path = dir.join("lock_convoy_s7.policy.json");
    let mut policy =
        dejavu_repro::corpus::Policy::parse(&std::fs::read_to_string(&policy_path).unwrap())
            .unwrap();
    policy.expected_state_digest ^= 1;
    std::fs::write(&policy_path, policy.to_canonical_string()).unwrap();
    let (code, err) = run(&["check", dir.to_str().unwrap()]);
    assert_eq!(code, 2, "{err}");
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(empty);
}
