//! The documented exit-code contract, driven through the real binary:
//! `0` success / accurate / corpus pass, `1` usage, I/O, or corrupt
//! input, `2` divergence or policy violation — consistently, for every
//! subcommand, including hostile inputs (a panic would surface as 101).

use std::path::{Path, PathBuf};
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dejavu-cli"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(format!("cli-scratch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> (i32, String) {
    let out = cli().args(args).output().expect("spawn dejavu-cli");
    (
        out.status.code().expect("no exit code (killed by signal?)"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn usage_errors_exit_1() {
    assert_eq!(run(&[]).0, 1);
    assert_eq!(run(&["no-such-subcommand"]).0, 1);
    assert_eq!(run(&["run", "no-such-workload"]).0, 1);
    assert_eq!(run(&["record", "racy_counter"]).0, 1); // missing args
    assert_eq!(run(&["check"]).0, 1);
    assert_eq!(run(&["corpus"]).0, 1);
    assert_eq!(run(&["replay", "racy_counter", "1", "/no/such/file"]).0, 1);
}

#[test]
fn corrupt_inputs_exit_1_not_panic() {
    let dir = scratch("corrupt-inputs");
    // Corrupt variants: wrong magic, truncated block trace, random junk.
    let junk = dir.join("junk.djvb");
    std::fs::write(&junk, b"not a trace at all").unwrap();
    let trunc = dir.join("trunc.djvb");
    let (code, _) = run(&[
        "record",
        "clock_spin",
        "1",
        trunc.to_str().unwrap(),
        "--trace-format",
        "block",
    ]);
    assert_eq!(code, 0);
    let bytes = std::fs::read(&trunc).unwrap();
    std::fs::write(&trunc, &bytes[..bytes.len() / 3]).unwrap();

    for f in [&junk, &trunc] {
        let f = f.to_str().unwrap();
        let (code, err) = run(&["replay", "clock_spin", "1", f]);
        assert_eq!(code, 1, "replay {f}: {err}");
        let (code, err) = run(&["trace", "inspect", f]);
        assert_eq!(code, 1, "inspect {f}: {err}");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn replay_wrong_seed_exits_2() {
    let dir = scratch("wrong-seed");
    let trace = dir.join("t.djvb");
    assert_eq!(
        run(&["record", "racy_counter", "1", trace.to_str().unwrap()]).0,
        0
    );
    // Same trace, different seed: a divergence, not an I/O problem.
    let (code, err) = run(&["replay", "racy_counter", "2", trace.to_str().unwrap()]);
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("DIVERGED"), "{err}");
    // And the matching seed replays accurately.
    assert_eq!(
        run(&["replay", "racy_counter", "1", trace.to_str().unwrap()]).0,
        0
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn checkjson_contract() {
    let dir = scratch("checkjson");
    let invalid = dir.join("invalid.json");
    std::fs::write(&invalid, "{nope").unwrap();
    assert_eq!(run(&["checkjson", invalid.to_str().unwrap()]).0, 1);
    let non_canonical = dir.join("non_canonical.json");
    std::fs::write(&non_canonical, r#"{"b":1,"a":2}"#).unwrap();
    assert_eq!(run(&["checkjson", non_canonical.to_str().unwrap()]).0, 1);
    let canonical = dir.join("canonical.json");
    std::fs::write(&canonical, r#"{"a":2,"b":1}"#).unwrap();
    assert_eq!(run(&["checkjson", canonical.to_str().unwrap()]).0, 0);
    assert_eq!(run(&["checkjson", "/no/such/file.json"]).0, 1);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn check_subcommand_exit_classes() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    // Pass: the committed corpus.
    let (code, err) = run(&["check", src.to_str().unwrap()]);
    assert_eq!(code, 0, "{err}");
    // Missing / empty directory: I/O class.
    assert_eq!(run(&["check", "/no/such/corpus"]).0, 1);
    let empty = scratch("check-empty");
    assert_eq!(run(&["check", empty.to_str().unwrap()]).0, 1);

    // Injected corruption: class 1. Injected policy mismatch: class 2.
    let dir = scratch("check-inject");
    for entry in std::fs::read_dir(&src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    let victim = dir.join("recursion_storm_s1.djvb");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() - 7]).unwrap();
    assert_eq!(run(&["check", dir.to_str().unwrap()]).0, 1);
    // Restore the trace, then poison a policy digest.
    std::fs::write(&victim, &bytes).unwrap();
    let policy_path = dir.join("lock_convoy_s7.policy.json");
    let mut policy =
        dejavu_repro::corpus::Policy::parse(&std::fs::read_to_string(&policy_path).unwrap())
            .unwrap();
    policy.expected_state_digest ^= 1;
    std::fs::write(&policy_path, policy.to_canonical_string()).unwrap();
    let (code, err) = run(&["check", dir.to_str().unwrap()]);
    assert_eq!(code, 2, "{err}");
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(empty);
}
