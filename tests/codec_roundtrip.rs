//! Round-trip coverage for the hermetic codec layer, through the public
//! API: binary `Trace` edge cases, JSON round-trips for *every*
//! `Command`/`Response` variant on the debugger wire protocol, and a full
//! `Program` JSON round-trip that re-compiles and re-runs identically.

use codec::{FromJson, ToJson};
use debugger::protocol::{Command, Response};
use debugger::{FrameInfo, StopReason, ThreadInfo};
use dejavu::{DataRec, SwitchRec, Trace};

// ---------------------------------------------------------------------
// Binary trace format
// ---------------------------------------------------------------------

fn bin_roundtrip(t: &Trace) {
    let bytes = t.encoded();
    let back = Trace::decode(&bytes).expect("decode");
    assert_eq!(&back, t);
}

#[test]
fn empty_trace_roundtrips() {
    bin_roundtrip(&Trace::default());
    // Header only: magic + flags byte + two zero-length varint counts.
    assert_eq!(Trace::default().encoded().len(), 7);
}

#[test]
fn paranoid_trace_roundtrips() {
    bin_roundtrip(&Trace {
        paranoid: true,
        switches: vec![
            SwitchRec {
                nyp: 0,
                check_tid: 0,
            },
            SwitchRec {
                nyp: 1,
                check_tid: 3,
            },
            SwitchRec {
                nyp: 1 << 40,
                check_tid: u32::MAX - 1,
            },
        ],
        data: vec![DataRec::Clock(-1), DataRec::Clock(0)],
    });
}

#[test]
fn extreme_values_roundtrip() {
    // u64::MAX nyp deltas exercise the full 10-byte varint path; i64
    // extremes exercise zigzag at both ends.
    bin_roundtrip(&Trace {
        paranoid: false,
        switches: vec![
            SwitchRec {
                nyp: u64::MAX,
                check_tid: u32::MAX,
            },
            SwitchRec {
                nyp: u64::MAX - 1,
                check_tid: u32::MAX,
            },
        ],
        data: vec![
            DataRec::Clock(i64::MIN),
            DataRec::Clock(i64::MAX),
            DataRec::Native {
                ret: i64::MIN,
                callbacks: vec![(7, vec![i64::MAX, 0, -1])],
            },
        ],
    });
}

#[test]
fn truncated_trace_rejected() {
    let full = Trace {
        paranoid: true,
        switches: vec![SwitchRec {
            nyp: 500_000,
            check_tid: 2,
        }],
        data: vec![DataRec::Clock(123_456_789)],
    }
    .encoded();
    for cut in 0..full.len() {
        assert!(
            Trace::decode(&full[..cut]).is_none(),
            "prefix of {cut} bytes decoded"
        );
    }
    assert!(Trace::decode(b"NOPE").is_none());
}

// ---------------------------------------------------------------------
// Debugger wire protocol: every variant, through the string form the
// client/server actually exchange.
// ---------------------------------------------------------------------

fn every_command() -> Vec<Command> {
    vec![
        Command::Break {
            method: 0,
            pc: u32::MAX,
        },
        Command::BreakLine {
            method: "Worker.run \"q\"".into(),
            line: 42,
        },
        Command::ClearBreak { method: 3, pc: 7 },
        Command::Continue,
        Command::Step,
        Command::StepBack,
        Command::Seek { step: u64::MAX },
        Command::Stack { tid: 1 },
        Command::Threads,
        Command::Inspect { addr: u64::MAX - 1 },
        Command::Disassemble { method: 9 },
        Command::Output,
        Command::Where,
        Command::Quit,
    ]
}

fn every_response() -> Vec<Response> {
    vec![
        Response::Ok,
        Response::Stopped {
            reason: StopReason::StepDone,
            step: 0,
        },
        Response::Stopped {
            reason: StopReason::Halted,
            step: u64::MAX,
        },
        Response::Stopped {
            reason: StopReason::Deadlocked,
            step: 17,
        },
        Response::Stopped {
            reason: StopReason::Breakpoint {
                method: 1,
                pc: 2,
                tid: 3,
            },
            step: 9,
        },
        Response::Stopped {
            reason: StopReason::Error("stack overflow — \"deep\"".into()),
            step: 4,
        },
        Response::Stack {
            frames: vec![FrameInfo {
                method: 2,
                method_name: "main".into(),
                pc: 11,
                line: -1,
                op: "Add".into(),
            }],
        },
        Response::Stack { frames: vec![] },
        Response::Threads {
            threads: vec![ThreadInfo {
                tid: 0,
                name: "t-ünïcode".into(),
                status: "Runnable".into(),
                method_name: "Worker.run".into(),
                pc: 5,
                yield_points: u64::MAX,
            }],
        },
        Response::Object {
            description: "Node { v: 1, next: null }".into(),
        },
        Response::Listing {
            text: "0000  Iconst 1\n0001  Halt\n".into(),
        },
        Response::Output {
            text: "line1\nline2\\with\\backslashes".into(),
        },
        Response::Location {
            method: "main".into(),
            pc: 0,
            line: 1,
            step: 2,
        },
        Response::Error {
            message: "no such method \u{7}".into(),
        },
        Response::Bye,
    ]
}

#[test]
fn every_command_roundtrips_as_one_json_line() {
    for cmd in every_command() {
        let line = cmd.to_json_string();
        assert!(!line.contains('\n'), "multi-line wire form: {line}");
        let back =
            Command::from_json_str(&line).unwrap_or_else(|e| panic!("{cmd:?}: {e} in {line}"));
        assert_eq!(back, cmd, "wire form {line}");
    }
}

#[test]
fn every_response_roundtrips_as_one_json_line() {
    for resp in every_response() {
        let line = resp.to_json_string();
        assert!(!line.contains('\n'), "multi-line wire form: {line}");
        let back =
            Response::from_json_str(&line).unwrap_or_else(|e| panic!("{resp:?}: {e} in {line}"));
        assert_eq!(back, resp, "wire form {line}");
    }
}

#[test]
fn protocol_rejects_malformed_lines() {
    for junk in [
        "",
        "not json",
        "{}",
        r#"{"cmd":"no_such_command"}"#,
        r#"{"resp":"stopped"}"#,
        r#"{"cmd":"break","method":3}"#,
        r#"{"cmd":"seek","step":-1}"#,
    ] {
        assert!(Command::from_json_str(junk).is_err(), "accepted {junk:?}");
    }
    assert!(Response::from_json_str(r#"{"resp":"nope"}"#).is_err());
}

// ---------------------------------------------------------------------
// Program JSON codec: encode → decode → recompile → identical run.
// ---------------------------------------------------------------------

#[test]
fn program_json_roundtrip_runs_identically() {
    let program = workloads::suite::racy_counter(40);
    let json = program.to_json_string();
    let mut decoded = djvm::Program::from_json_str(&json).expect("decode");
    // The codec intentionally skips compiled method bodies; re-derive them.
    djvm::compile::compile_program(&mut decoded).expect("recompile");
    assert_eq!(decoded.to_json_string(), json, "re-encode not canonical");

    let spec_a = dejavu::ExecSpec::new(program).with_seed(5);
    let spec_b = dejavu::ExecSpec::new(decoded).with_seed(5);
    let a = dejavu::passthrough_run(&spec_a, |_| {});
    let b = dejavu::passthrough_run(&spec_b, |_| {});
    assert_eq!(a.output, b.output);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.state_digest, b.state_digest);
}
