//! Fuzz oracle for the trace-store read path: build a real store with
//! `put_bytes`, apply seeded byte mutations — bit flips, truncations,
//! overwrites, insertions — to one on-disk artifact (a catalog manifest,
//! a block record, or the heat file), then drive every read entry point
//! and assert "typed `StoreError` or success, never panic".
//!
//! Same contract the DJVB fuzz gives the corpus gate: a corrupt store
//! must surface as exit 1 from the CLI, and that only holds if nothing
//! in `open`/`get_bytes`/`open_trace`/`gc`/`compact` can abort.

use dejavu_repro::dejavu::{encode_trace, DataRec, SwitchRec, Trace, TraceFormat};
use dejavu_repro::qc::{check, Gen};
use dejavu_repro::qc_assert;
use dejavu_repro::store::{Store, DEFAULT_COLD_THRESHOLD};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// A structurally valid random trace: the corpus the store is seeded with.
fn gen_trace(g: &mut Gen) -> Trace {
    let paranoid = g.bool();
    let switches = g.vec_of(1, 30, |g| SwitchRec {
        nyp: g.u64_in(0, 50_000),
        check_tid: if paranoid {
            g.u64_in(0, 5) as u32
        } else {
            u32::MAX
        },
    });
    let data = g.vec_of(0, 20, |g| {
        if g.bool() {
            DataRec::Clock(g.i64_in(-5, 2_000_000))
        } else {
            DataRec::Native {
                ret: g.any_i64(),
                callbacks: vec![],
            }
        }
    });
    Trace {
        paranoid,
        switches,
        data,
    }
}

/// Apply one seeded mutation to `bytes` (no-op on empty input).
fn mutate(g: &mut Gen, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    match g.usize_in(0, 3) {
        0 => {
            let i = g.usize_in(0, bytes.len() - 1);
            bytes[i] ^= 1 << g.usize_in(0, 7);
        }
        1 => {
            let i = g.usize_in(0, bytes.len() - 1);
            bytes[i] = [0x00, 0xFF, 0x7F, 0x80][g.usize_in(0, 3)];
        }
        2 => {
            let keep = g.usize_in(0, bytes.len() - 1);
            bytes.truncate(keep);
        }
        _ => {
            let i = g.usize_in(0, bytes.len());
            bytes.insert(i, g.u64_in(0, 255) as u8);
        }
    }
}

/// Every regular file under `root`, sorted for seed determinism.
fn store_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Seed a fresh store with a couple of runs; returns the catalog ids.
fn seed_store(g: &mut Gen, root: &Path) -> Vec<String> {
    let store = Store::open(root).expect("open fresh store");
    let runs = g.usize_in(1, 3);
    let mut ids = Vec::new();
    for i in 0..runs {
        let trace = gen_trace(g);
        let budget = [24, 48, 4096][g.usize_in(0, 2)];
        let bytes = encode_trace(&trace, TraceFormat::Block, budget);
        let out = store
            .put_bytes(
                ["wa", "wb", "wc"][i],
                g.u64_in(0, 9),
                &bytes,
                g.u64_in(1, u64::MAX),
                "",
            )
            .expect("seed put");
        ids.push(out.entry);
    }
    drop(store); // flush heat + caches so the mutation hits cold state
    ids
}

/// Drive every read/maintenance entry point; the closure's only job is
/// to not panic — every failure must be a typed `StoreError`.
fn exercise_store(root: &Path, ids: &[String]) {
    let Ok(store) = Store::open(root) else {
        return;
    };
    if let Ok(entries) = store.entries() {
        for e in &entries {
            let _ = store.entry(&e.identity());
        }
    }
    for id in ids {
        if let Ok(bytes) = store.get_bytes(id) {
            let _ = bytes.len();
        }
        if let Ok(stored) = store.open_trace(id) {
            let _ = stored.trace.stats();
            let _ = stored.boundaries.len();
        }
    }
    let _ = store.disk_stats();
    let _ = store.gc();
    let _ = store.compact(DEFAULT_COLD_THRESHOLD);
}

#[test]
fn mutated_store_files_never_panic() {
    let base = std::env::temp_dir().join(format!("djv-store-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut iter = 0u64;
    check("mutated_store_files_never_panic", 120, |g| {
        iter += 1;
        let root = base.join(format!("it{iter}"));
        let ids = seed_store(g, &root);

        // Mutate one on-disk artifact — catalog manifest, block record,
        // or heat file — with 1..8 seeded corruptions.
        let files = store_files(&root);
        qc_assert!(!files.is_empty(), "seeded store produced no files");
        let victim = &files[g.usize_in(0, files.len() - 1)];
        let mut bytes = std::fs::read(victim).map_err(|e| e.to_string())?;
        for _ in 0..g.usize_in(1, 8) {
            mutate(g, &mut bytes);
        }
        std::fs::write(victim, &bytes).map_err(|e| e.to_string())?;

        let ok = catch_unwind(AssertUnwindSafe(|| exercise_store(&root, &ids))).is_ok();
        let _ = std::fs::remove_dir_all(&root);
        qc_assert!(
            ok,
            "store panicked after mutating {}",
            victim.display()
        );
        Ok(())
    });
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn unmutated_store_round_trips() {
    // Control arm: without mutations the same pipeline reconstructs the
    // exact put bytes (so the fuzz arm corrupts real stores, not ones
    // that were already broken).
    let base = std::env::temp_dir().join(format!("djv-store-ctl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut iter = 0u64;
    check("unmutated_store_round_trips", 40, |g| {
        iter += 1;
        let root = base.join(format!("it{iter}"));
        let trace = gen_trace(g);
        let bytes = encode_trace(&trace, TraceFormat::Block, 48);
        let store = Store::open(&root).map_err(|e| e.to_string())?;
        let out = store
            .put_bytes("wa", g.u64_in(0, 9), &bytes, 7, "")
            .map_err(|e| e.to_string())?;
        drop(store);
        let store = Store::open(&root).map_err(|e| e.to_string())?;
        let back = store.get_bytes(&out.entry).map_err(|e| e.to_string())?;
        qc_assert!(back == bytes, "reopen + get changed the bytes");
        let opened = store.open_trace(&out.entry).map_err(|e| e.to_string())?;
        qc_assert!(opened.trace == trace, "open_trace changed the trace");
        drop(store);
        let _ = std::fs::remove_dir_all(&root);
        Ok(())
    });
    let _ = std::fs::remove_dir_all(&base);
}

/// Deterministic extremes beside the random sweep: a block record
/// truncated to nothing, a deleted block record, and a catalog manifest
/// overwritten with non-JSON garbage. Each must read back as a typed
/// error with the CLI "corrupt artifact" code, never a panic.
#[test]
fn crafted_store_damage_is_typed() {
    let root = std::env::temp_dir().join(format!("djv-store-crafted-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let trace = Trace {
        paranoid: false,
        switches: (0..40)
            .map(|i| SwitchRec {
                nyp: i * 17,
                check_tid: u32::MAX,
            })
            .collect(),
        data: vec![DataRec::Clock(42)],
    };
    let bytes = encode_trace(&trace, TraceFormat::Block, 24);
    let store = Store::open(&root).expect("open");
    let id = store.put_bytes("wa", 1, &bytes, 9, "").expect("put").entry;
    drop(store);

    let blocks: Vec<PathBuf> = store_files(&root)
        .into_iter()
        .filter(|p| p.extension().is_some_and(|e| e == "blk"))
        .collect();
    assert!(!blocks.is_empty(), "crafted trace produced no block files");

    // Truncated block record.
    std::fs::write(&blocks[0], b"").expect("truncate block");
    let store = Store::open(&root).expect("reopen");
    let err = store.get_bytes(&id).expect_err("truncated block must fail");
    assert_eq!(err.code(), 1, "corrupt block is CLI code 1, got {err}");
    drop(store);

    // Missing block record.
    std::fs::remove_file(&blocks[0]).expect("delete block");
    let store = Store::open(&root).expect("reopen");
    assert_eq!(
        store.open_trace(&id).expect_err("missing block").code(),
        1
    );
    drop(store);

    // Garbage catalog manifest.
    let catalog = root.join("catalog").join(format!("{id}.json"));
    std::fs::write(&catalog, b"\xFF\xFEnot json at all").expect("smash catalog");
    let store = Store::open(&root).expect("reopen");
    let ok = catch_unwind(AssertUnwindSafe(|| {
        let _ = store.entries();
        let _ = store.entry(&id);
        let _ = store.disk_stats();
        let _ = store.gc();
    }))
    .is_ok();
    assert!(ok, "garbage catalog manifest caused a panic");
    drop(store);
    let _ = std::fs::remove_dir_all(&root);
}
