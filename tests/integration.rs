//! Cross-crate integration: the full platform exercised end to end —
//! record a server workload, compare trace schemes, debug the recording
//! with breakpoints and reverse steps, inspect state via remote reflection,
//! and verify the replay never deviated.

use baselines::{trace_size_comparison, TimeTravel};
use debugger::{DebugSession, StopReason};
use dejavu::{record_run, replay_run, ExecSpec, SymmetryConfig};
use djvm::VmStatus;
use reflect::{LocalVmMemory, RemoteReflector};
use std::sync::Arc;

#[test]
fn full_platform_flow() {
    // --- record a native-driven server execution ------------------------
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "server_loop")
        .unwrap();
    let mut spec = ExecSpec::new((w.build)()).with_seed(12);
    spec.timer_base = 53;
    spec.timer_jitter = 19;
    let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    assert_eq!(rec.status, VmStatus::Halted);

    // --- plain replay is exact ------------------------------------------
    let (rep, desyncs) = replay_run(&spec, trace.clone(), SymmetryConfig::full());
    assert!(desyncs.is_empty());
    assert!(rec.matches(&rep));

    // --- trace economics vs the baselines --------------------------------
    let row = trace_size_comparison("server_loop", &spec, w.natives);
    assert!(row.dejavu_bytes < row.ir_bytes);
    assert!(row.dejavu_bytes < row.readlog_bytes);

    // --- debug the recording ---------------------------------------------
    let mut session = DebugSession::new(spec.program.clone(), spec.vm.clone(), trace, 4_000);
    let worker = spec.program.method_id_by_name("worker").unwrap();
    session.add_breakpoint(worker, 0);
    let stop = session.cont();
    assert!(matches!(stop, StopReason::Breakpoint { .. }));

    // thread viewer + reflective stack trace at the stop
    let threads = session.threads();
    assert!(threads.len() >= 4, "main + acceptor + 2 workers");
    let tid = session.vm().sched.current;
    let frames = session.stack_trace(tid);
    assert_eq!(frames[0].method_name, "worker");
    assert!(frames[0].line >= 0);

    // remote reflection directly against the paused VM
    {
        let vm = session.vm();
        let mem = LocalVmMemory::new(vm);
        let mut refl = RemoteReflector::new(Arc::clone(&spec.program), &mem);
        refl.map_boot_method_table(vm.boot_image.method_table);
        let line = refl.line_number_of(worker, 0).unwrap();
        assert_eq!(line, frames[0].line);
    }

    // reverse-step, then resume to completion: still the recorded run
    let here = session.step_index();
    session.step();
    session.step_back();
    assert_eq!(session.step_index(), here);
    session.remove_breakpoint(worker, 0);
    let stop = session.cont();
    assert_eq!(stop, StopReason::Halted);
    assert_eq!(session.output(), rec.output);
}

#[test]
fn time_travel_composes_with_reflection() {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "gc_churn")
        .unwrap();
    let mut spec = ExecSpec::new((w.build)()).with_seed(3);
    spec.timer_base = 53;
    spec.timer_jitter = 19;
    let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);

    let vm = djvm::Vm::boot(
        Arc::clone(&spec.program),
        spec.vm.clone(),
        Box::new(djvm::FixedTimer::new(1 << 30)),
        Box::new(djvm::CycleClock::new(0, 100)),
    )
    .unwrap();
    let mut tt = TimeTravel::new(vm, trace, SymmetryConfig::full(), 3_000);

    // Sample the same moment twice (before/after a round trip through the
    // future) and reflectively compare: identical remote answers.
    tt.seek(9_000);
    let q1 = {
        let mem = LocalVmMemory::new(tt.vm());
        let mut refl = RemoteReflector::new(Arc::clone(&spec.program), &mem);
        refl.map_boot_method_table(tt.vm().boot_image.method_table);
        refl.line_number_of(spec.program.entry, 1).unwrap()
    };
    let digest1 = tt.vm().state_digest();
    tt.seek(25_000);
    tt.seek(9_000);
    let digest2 = tt.vm().state_digest();
    assert_eq!(digest1, digest2);
    let q2 = {
        let mem = LocalVmMemory::new(tt.vm());
        let mut refl = RemoteReflector::new(Arc::clone(&spec.program), &mem);
        refl.map_boot_method_table(tt.vm().boot_image.method_table);
        refl.line_number_of(spec.program.entry, 1).unwrap()
    };
    assert_eq!(q1, q2);

    // Run out: matches the record.
    while tt.status().is_running() {
        tt.advance(10_000);
    }
    assert_eq!(tt.vm().output, rec.output);
}

#[test]
fn umbrella_crate_reexports_work() {
    // the root crate exposes all member crates
    let _cfg = dejavu_repro::dejavu::SymmetryConfig::full();
    let regs = dejavu_repro::workloads::registry();
    assert!(!regs.is_empty());
}
