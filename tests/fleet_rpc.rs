//! Property tests and fuzz loops for the fleet RPC layer (satellite:
//! "frame-codec round-trip property test in the qc harness, plus a
//! malformed-header fuzz loop mirroring djvb_fuzz.rs"), and the
//! fingerprint-parity guard that keeps `fleet::spec_for` in lock-step
//! with the corpus execution environment.

use dejavu_repro::corpus::corpus_spec;
use dejavu_repro::dejavu::{record_run, SymmetryConfig};
use dejavu_repro::fleet::{self, spec_for, Request, Response, WireError};
use dejavu_repro::qc::{check, Gen};
use dejavu_repro::qc_assert;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A random syntactically valid request.
fn gen_request(g: &mut Gen) -> Request {
    let s = |g: &mut Gen| {
        let n = g.usize_in(0, 12);
        (0..n)
            .map(|_| char::from(g.u64_in(32, 126) as u8))
            .collect::<String>()
    };
    match g.usize_in(0, 11) {
        0 => Request::Open {
            workload: s(g),
            seed: g.any_u64(),
        },
        1 => Request::IngestBlocks {
            session: g.any_u64(),
            chunk: g.vec_of(0, 64, |g| g.u64_in(0, 255) as u8),
            done: g.bool(),
        },
        2 => Request::Record {
            session: g.any_u64(),
        },
        3 => Request::Replay {
            session: g.any_u64(),
        },
        4 => Request::SeekLogical {
            session: g.any_u64(),
            logical: g.any_u64(),
        },
        5 => Request::DivergenceCheck {
            session: g.any_u64(),
        },
        6 => Request::Profile {
            session: g.any_u64(),
            top: g.any_u64(),
        },
        7 => Request::Close {
            session: g.any_u64(),
        },
        8 => Request::Debug {
            session: g.any_u64(),
            command: s(g),
        },
        9 => Request::Stats,
        10 => Request::OpenStored { entry: s(g) },
        _ => Request::Shutdown { token: s(g) },
    }
}

/// A random syntactically valid response.
fn gen_response(g: &mut Gen) -> Response {
    let s = |g: &mut Gen| {
        let n = g.usize_in(0, 12);
        (0..n)
            .map(|_| char::from(g.u64_in(32, 126) as u8))
            .collect::<String>()
    };
    match g.usize_in(0, 11) {
        0 => Response::Opened {
            session: g.any_u64(),
        },
        1 => Response::Ingested {
            session: g.any_u64(),
            bytes: g.any_u64(),
        },
        2 => Response::Recorded {
            session: g.any_u64(),
            fingerprint: g.any_u64(),
            state_digest: g.any_u64(),
            events: g.any_u64(),
            trace_bytes: g.any_u64(),
        },
        3 => Response::Replayed {
            session: g.any_u64(),
            fingerprint: g.any_u64(),
            state_digest: g.any_u64(),
            clean: g.bool(),
        },
        4 => Response::Sought {
            session: g.any_u64(),
            target_logical: g.any_u64(),
            final_step: g.any_u64(),
            final_logical: g.any_u64(),
            steps_replayed: g.any_u64(),
        },
        5 => Response::Divergence {
            session: g.any_u64(),
            clean: g.bool(),
            json: s(g),
        },
        6 => Response::Profiled {
            session: g.any_u64(),
            json: s(g),
        },
        7 => Response::Closed {
            session: g.any_u64(),
        },
        8 => Response::Debug { json: s(g) },
        9 => Response::Stats { json: s(g) },
        10 => Response::ShuttingDown,
        _ => Response::Error {
            code: g.u64_in(0, 255) as u8,
            message: s(g),
        },
    }
}

#[test]
fn request_and_response_encodings_round_trip() {
    check("fleet_rpc_round_trip", 400, |g| {
        let req = gen_request(g);
        let decoded = Request::decode(&req.encode()).map_err(|e| e.to_string())?;
        qc_assert!(decoded == req, "request round-trip changed the value");
        let resp = gen_response(g);
        let decoded = Response::decode(&resp.encode()).map_err(|e| e.to_string())?;
        qc_assert!(decoded == resp, "response round-trip changed the value");
        Ok(())
    });
}

#[test]
fn truncated_payloads_are_typed_errors_never_panics() {
    check("fleet_rpc_truncation", 400, |g| {
        let is_request = g.bool();
        let bytes = if is_request {
            gen_request(g).encode()
        } else {
            gen_response(g).encode()
        };
        // Every strict prefix must fail with a typed error (a shorter
        // encoding of the same variant cannot also be valid — varint
        // fields make prefixes either Truncated or TrailingBytes-free
        // shorter values, which decode must reject by length check).
        let keep = g.usize_in(0, bytes.len().saturating_sub(1));
        let prefix = &bytes[..keep];
        let ok = catch_unwind(AssertUnwindSafe(|| {
            let _ = Request::decode(prefix);
            let _ = Response::decode(prefix);
        }))
        .is_ok();
        qc_assert!(ok, "decoder panicked on a {keep}-byte prefix");
        // Appending garbage to an encoding must be rejected by the
        // decoder of the *same* type (strict whole-buffer consumption;
        // cross-type, an extension can legitimately parse — e.g.
        // Request::Stats [10] + 0x00 is Response::Stats{json:""}).
        let mut extended = bytes.clone();
        extended.extend((0..g.usize_in(1, 4)).map(|_| g.u64_in(0, 255) as u8));
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            if is_request {
                Request::decode(&extended).is_err()
            } else {
                Response::decode(&extended).is_err()
            }
        }));
        match verdict {
            Ok(rejected) => {
                qc_assert!(rejected, "trailing bytes accepted by the same-type decoder");
            }
            Err(_) => qc_assert!(false, "decoder panicked on extended payload"),
        }
        Ok(())
    });
}

#[test]
fn mutated_frames_and_headers_never_panic() {
    // The djvb_fuzz.rs idiom pointed at the RPC layer: seeded mutations
    // of valid encodings (bit flips, overwrites, truncations, inserts)
    // through every decode entry point.
    check("fleet_rpc_fuzz", 600, |g| {
        let mut bytes = if g.bool() {
            gen_request(g).encode()
        } else {
            gen_response(g).encode()
        };
        for _ in 0..g.usize_in(1, 8) {
            if bytes.is_empty() {
                break;
            }
            match g.usize_in(0, 3) {
                0 => {
                    let i = g.usize_in(0, bytes.len() - 1);
                    bytes[i] ^= 1 << g.usize_in(0, 7);
                }
                1 => {
                    let i = g.usize_in(0, bytes.len() - 1);
                    bytes[i] = [0x00, 0xFF, 0x7F, 0x80][g.usize_in(0, 3)];
                }
                2 => {
                    let keep = g.usize_in(0, bytes.len() - 1);
                    bytes.truncate(keep);
                }
                _ => {
                    let i = g.usize_in(0, bytes.len());
                    bytes.insert(i, g.u64_in(0, 255) as u8);
                }
            }
        }
        let ok = catch_unwind(AssertUnwindSafe(|| {
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }))
        .is_ok();
        qc_assert!(ok, "decoder panicked on mutated {} bytes", bytes.len());
        Ok(())
    });
}

#[test]
fn malformed_hellos_are_typed_errors() {
    // Header fuzz: 5-byte hellos drawn adversarially close to the real
    // one must either validate (exact match) or produce the right error.
    check("fleet_hello_fuzz", 300, |g| {
        let mut h = fleet::wire::hello_bytes();
        let flips = g.usize_in(0, 2);
        for _ in 0..flips {
            let i = g.usize_in(0, 4);
            h[i] = g.u64_in(0, 255) as u8;
        }
        match fleet::wire::check_hello(&h) {
            Ok(()) => qc_assert!(
                h == fleet::wire::hello_bytes(),
                "non-canonical hello accepted: {h:?}"
            ),
            Err(WireError::BadMagic) => qc_assert!(
                h[..4] != fleet::wire::MAGIC,
                "BadMagic with a good magic: {h:?}"
            ),
            Err(WireError::BadVersion(v)) => {
                qc_assert!(h[..4] == fleet::wire::MAGIC);
                qc_assert!(v == h[4] && v != fleet::wire::VERSION);
            }
            Err(other) => qc_assert!(false, "unexpected error {other:?}"),
        }
        Ok(())
    });
}

#[test]
fn oversize_frames_are_refused_without_allocation() {
    // A length prefix past MAX_FRAME must be rejected before the payload
    // is allocated or read (allocation-bomb guard).
    let mut stream: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
    match fleet::wire::read_frame(&mut stream) {
        Err(WireError::Oversize(n)) => assert_eq!(n, u32::MAX as usize),
        other => panic!("expected Oversize, got {other:?}"),
    }
    // And the boundary itself is accepted (cap is inclusive).
    let mut ok_header = (fleet::MAX_FRAME as u32).to_le_bytes().to_vec();
    ok_header.extend(std::iter::repeat(0u8).take(8)); // far too short
    let mut stream: &[u8] = &ok_header;
    match fleet::wire::read_frame(&mut stream) {
        Err(WireError::Truncated) => {} // accepted the length, hit EOF
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn fleet_spec_matches_the_corpus_execution_environment() {
    // The fleet re-derives the corpus ExecSpec instead of depending on
    // the root crate (that would be a dependency cycle). This is the
    // guard: a fleet-hosted record and a corpus record of the same
    // workload/seed must produce bit-identical fingerprints.
    for name in ["fig1_ab", "racy_counter", "bank_transfer"] {
        let w = workloads::registry()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        for seed in [1u64, 77, 4242] {
            let (a, _) = record_run(&spec_for(&w, seed), w.natives, SymmetryConfig::full(), true);
            let (b, _) = record_run(
                &corpus_spec(&w, seed),
                w.natives,
                SymmetryConfig::full(),
                true,
            );
            assert_eq!(
                a.fingerprint, b.fingerprint,
                "{name}/{seed}: fleet spec fingerprint drifted from corpus spec"
            );
            assert_eq!(
                a.state_digest, b.state_digest,
                "{name}/{seed}: state digest"
            );
        }
    }
}
