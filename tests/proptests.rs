//! Property-based tests on the core invariants (proptest).

use dejavu::{passthrough_run, record_replay, ExecSpec, SymmetryConfig};
use djvm::{ProgramBuilder, Ty};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// 1. The interpreter computes arithmetic exactly like a host-side model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Const(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = any::<i32>().prop_map(Expr::Const);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
        ]
    })
}

fn eval(e: &Expr) -> i64 {
    match e {
        Expr::Const(v) => *v as i64,
        Expr::Add(a, b) => eval(a).wrapping_add(eval(b)),
        Expr::Sub(a, b) => eval(a).wrapping_sub(eval(b)),
        Expr::Mul(a, b) => eval(a).wrapping_mul(eval(b)),
        Expr::Xor(a, b) => eval(a) ^ eval(b),
    }
}

fn emit(e: &Expr, a: &mut djvm::builder::Asm) {
    match e {
        Expr::Const(v) => {
            a.iconst(*v as i64);
        }
        Expr::Add(x, y) => {
            emit(x, a);
            emit(y, a);
            a.add();
        }
        Expr::Sub(x, y) => {
            emit(x, a);
            emit(y, a);
            a.sub();
        }
        Expr::Mul(x, y) => {
            emit(x, a);
            emit(y, a);
            a.mul();
        }
        Expr::Xor(x, y) => {
            emit(x, a);
            emit(y, a);
            a.bxor();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpreter_matches_host_arithmetic(e in expr_strategy()) {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 0).code(|a| {
            emit(&e, a);
            a.print();
            a.halt();
        });
        let spec = ExecSpec::new(pb.finish(m).unwrap());
        let r = passthrough_run(&spec, |_| {});
        prop_assert_eq!(r.output.trim().parse::<i64>().unwrap(), eval(&e));
    }

    // -----------------------------------------------------------------
    // 2. Executions are pure functions of the seed: bit-identical twice.
    // -----------------------------------------------------------------
    #[test]
    fn execution_is_deterministic_given_the_seed(
        seed in 0u64..1000,
        base in 11u64..200,
    ) {
        let w = workloads::suite::racy_counter(60);
        let mut s1 = ExecSpec::new(w.clone()).with_seed(seed);
        s1.timer_base = base;
        s1.timer_jitter = base / 3;
        let mut s2 = ExecSpec::new(w).with_seed(seed);
        s2.timer_base = base;
        s2.timer_jitter = base / 3;
        let a = passthrough_run(&s1, |_| {});
        let b = passthrough_run(&s2, |_| {});
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(a.state_digest, b.state_digest);
    }

    // -----------------------------------------------------------------
    // 3. Replay accuracy holds for arbitrary seeds and timer shapes.
    // -----------------------------------------------------------------
    #[test]
    fn replay_is_accurate_for_any_seed(
        seed in 0u64..10_000,
        base in 13u64..150,
    ) {
        let w = workloads::suite::racy_counter(80);
        let mut s = ExecSpec::new(w).with_seed(seed);
        s.timer_base = base;
        s.timer_jitter = base / 4;
        let (rec, rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        prop_assert!(ok, "rec {:?} rep {:?}", rec.output, rep.output);
    }

    // -----------------------------------------------------------------
    // 4. The trace codec round-trips arbitrary traces.
    // -----------------------------------------------------------------
    #[test]
    fn trace_codec_roundtrips(
        nyps in proptest::collection::vec(1u64..1_000_000, 0..50),
        clocks in proptest::collection::vec(any::<i64>(), 0..50),
        paranoid in any::<bool>(),
    ) {
        let trace = dejavu::Trace {
            paranoid,
            switches: nyps
                .iter()
                .map(|&n| dejavu::SwitchRec {
                    nyp: n,
                    check_tid: if paranoid { (n % 7) as u32 } else { u32::MAX },
                })
                .collect(),
            data: clocks.iter().map(|&c| dejavu::DataRec::Clock(c)).collect(),
        };
        let decoded = dejavu::Trace::decode(&trace.encoded()).unwrap();
        prop_assert_eq!(decoded, trace);
    }

    // -----------------------------------------------------------------
    // 5. Guest data structures survive GC: random linked-list contents
    //    are intact after heavy churn, under both collectors.
    // -----------------------------------------------------------------
    #[test]
    fn gc_preserves_linked_list(values in proptest::collection::vec(0i64..1000, 1..30)) {
        let expected: i64 = values.iter().sum();
        for gc in [djvm::GcKind::MarkSweep, djvm::GcKind::Copying] {
            let mut pb = ProgramBuilder::new();
            let node = pb
                .class("Node")
                .field("v", Ty::Int)
                .field("next", Ty::Ref)
                .build();
            let m = pb.method("main", 0, 4).code(|a| {
                a.null().store(0);
                // build the list with the literal values
                for &v in &values {
                    a.new(node).store(1);
                    a.load(1).iconst(v).put_field(0);
                    a.load(1).load(0).put_field_ref(1);
                    a.load(1).store(0);
                }
                // churn garbage to force collections
                a.iconst(0).store(2);
                a.label("churn");
                a.load(2).iconst(400).ge().if_nz("sum");
                a.iconst(16).new_array_int().pop();
                a.load(2).iconst(1).add().store(2);
                a.goto("churn");
                // sum the list
                a.label("sum");
                a.iconst(0).store(3);
                a.label("walk");
                a.load(0).null().ref_eq().if_nz("done");
                a.load(3).load(0).get_field(0).add().store(3);
                a.load(0).get_field_ref(1).store(0);
                a.goto("walk");
                a.label("done");
                a.load(3).print();
                a.halt();
            });
            let mut s = ExecSpec::new(pb.finish(m).unwrap());
            s.vm.heap_words = 8 * 1024;
            s.vm.gc = gc;
            let r = passthrough_run(&s, |_| {});
            prop_assert_eq!(
                r.output.trim().parse::<i64>().unwrap(),
                expected,
                "gc {:?}", gc
            );
        }
    }

    // -----------------------------------------------------------------
    // 6. Clock implementations are monotone for arbitrary cycle inputs.
    // -----------------------------------------------------------------
    #[test]
    fn clocks_are_monotone(
        seed in any::<u64>(),
        mut cycles in proptest::collection::vec(0u64..1_000_000, 1..50),
        warp in 0i64..1_000_000,
    ) {
        use djvm::clock::WallClock;
        cycles.sort_unstable();
        let mut c = djvm::JitteredClock::new(seed, 0, 10, 25);
        let mut last = i64::MIN;
        for (i, &cy) in cycles.iter().enumerate() {
            if i == cycles.len() / 2 {
                c.warp_to(warp);
            }
            let t = c.now(cy);
            prop_assert!(t >= last);
            last = t;
        }
    }
}
