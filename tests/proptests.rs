//! Property-based tests on the core invariants, driven by the in-repo
//! [`dejavu_repro::qc`] harness (deterministic SplitMix64 generation +
//! shrinking-lite — no proptest; the build is hermetic).

use dejavu::{passthrough_run, record_replay, record_run, replay_run, ExecSpec, SymmetryConfig};
use dejavu_repro::qc::{self, Gen};
use dejavu_repro::{qc_assert, qc_assert_eq};
use djvm::{ProgramBuilder, Ty};

// ---------------------------------------------------------------------
// 1. The interpreter computes arithmetic exactly like a host-side model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Const(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

/// Recursive generator, depth-bounded like the old
/// `prop_recursive(4, ..)` strategy.
fn gen_expr(g: &mut Gen, depth: u32) -> Expr {
    // Draw-order stability: the shape draw happens before the subtree
    // draws, so shrinking the shape raw toward 0 collapses to a leaf.
    let choice = if depth == 0 { 0 } else { g.u64_in(0, 4) };
    match choice {
        0 => Expr::Const(g.any_i32()),
        1 => Expr::Add(gen_expr(g, depth - 1).into(), gen_expr(g, depth - 1).into()),
        2 => Expr::Sub(gen_expr(g, depth - 1).into(), gen_expr(g, depth - 1).into()),
        3 => Expr::Mul(gen_expr(g, depth - 1).into(), gen_expr(g, depth - 1).into()),
        _ => Expr::Xor(gen_expr(g, depth - 1).into(), gen_expr(g, depth - 1).into()),
    }
}

fn eval(e: &Expr) -> i64 {
    match e {
        Expr::Const(v) => *v as i64,
        Expr::Add(a, b) => eval(a).wrapping_add(eval(b)),
        Expr::Sub(a, b) => eval(a).wrapping_sub(eval(b)),
        Expr::Mul(a, b) => eval(a).wrapping_mul(eval(b)),
        Expr::Xor(a, b) => eval(a) ^ eval(b),
    }
}

fn emit(e: &Expr, a: &mut djvm::builder::Asm) {
    match e {
        Expr::Const(v) => {
            a.iconst(*v as i64);
        }
        Expr::Add(x, y) => {
            emit(x, a);
            emit(y, a);
            a.add();
        }
        Expr::Sub(x, y) => {
            emit(x, a);
            emit(y, a);
            a.sub();
        }
        Expr::Mul(x, y) => {
            emit(x, a);
            emit(y, a);
            a.mul();
        }
        Expr::Xor(x, y) => {
            emit(x, a);
            emit(y, a);
            a.bxor();
        }
    }
}

#[test]
fn interpreter_matches_host_arithmetic() {
    qc::check("interpreter_matches_host_arithmetic", 64, |g| {
        let e = gen_expr(g, 4);
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 0).code(|a| {
            emit(&e, a);
            a.print();
            a.halt();
        });
        let spec = ExecSpec::new(pb.finish(m).unwrap());
        let r = passthrough_run(&spec, |_| {});
        qc_assert_eq!(
            r.output.trim().parse::<i64>().unwrap(),
            eval(&e),
            "expr {e:?}"
        );
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 2. Executions are pure functions of the seed: bit-identical twice.
// ---------------------------------------------------------------------

#[test]
fn execution_is_deterministic_given_the_seed() {
    qc::check("execution_is_deterministic_given_the_seed", 64, |g| {
        let seed = g.u64_in(0, 999);
        let base = g.u64_in(11, 199);
        let w = workloads::suite::racy_counter(60);
        let mut s1 = ExecSpec::new(w.clone()).with_seed(seed);
        s1.timer_base = base;
        s1.timer_jitter = base / 3;
        let mut s2 = ExecSpec::new(w).with_seed(seed);
        s2.timer_base = base;
        s2.timer_jitter = base / 3;
        let a = passthrough_run(&s1, |_| {});
        let b = passthrough_run(&s2, |_| {});
        qc_assert_eq!(a.fingerprint, b.fingerprint);
        qc_assert_eq!(a.state_digest, b.state_digest);
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 3. Replay accuracy holds for arbitrary seeds and timer shapes.
// ---------------------------------------------------------------------

#[test]
fn replay_is_accurate_for_any_seed() {
    qc::check("replay_is_accurate_for_any_seed", 64, |g| {
        let seed = g.u64_in(0, 9_999);
        let base = g.u64_in(13, 149);
        let w = workloads::suite::racy_counter(80);
        let mut s = ExecSpec::new(w).with_seed(seed);
        s.timer_base = base;
        s.timer_jitter = base / 4;
        let (rec, rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        qc_assert!(ok, "rec {:?} rep {:?}", rec.output, rep.output);
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 3b. The telemetry sink is perturbation-free for arbitrary seeds and
//     timer shapes: every guest-visible quantity is bit-identical with
//     the observer on vs. off, on both sides of the record/replay pair.
// ---------------------------------------------------------------------

#[test]
fn telemetry_is_neutral_for_any_seed() {
    qc::check("telemetry_is_neutral_for_any_seed", 32, |g| {
        let seed = g.u64_in(0, 9_999);
        let base = g.u64_in(13, 149);
        let w = workloads::suite::racy_counter(60);
        let mut off = ExecSpec::new(w).with_seed(seed);
        off.timer_base = base;
        off.timer_jitter = base / 4;
        let on = off.clone().with_telemetry();
        let (rec_off, rep_off, ok_off) = record_replay(&off, |_| {}, SymmetryConfig::full());
        let (rec_on, rep_on, ok_on) = record_replay(&on, |_| {}, SymmetryConfig::full());
        qc_assert_eq!(
            rec_off.fingerprint,
            rec_on.fingerprint,
            "record fingerprint"
        );
        qc_assert_eq!(rec_off.state_digest, rec_on.state_digest, "record digest");
        qc_assert_eq!(
            rep_off.fingerprint,
            rep_on.fingerprint,
            "replay fingerprint"
        );
        qc_assert_eq!(rep_off.state_digest, rep_on.state_digest, "replay digest");
        qc_assert_eq!(rec_off.output, rec_on.output, "record output");
        qc_assert_eq!(ok_off, ok_on, "accuracy verdict");
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 3c. The replay-time profiler is perturbation-free and deterministic
//     for arbitrary seeds and timer shapes: a profiled replay has the
//     same guest-visible identity as an unprofiled one, and two profiled
//     replays of the same trace produce byte-identical artifacts.
// ---------------------------------------------------------------------

#[test]
fn profiler_is_neutral_and_deterministic_for_any_seed() {
    qc::check(
        "profiler_is_neutral_and_deterministic_for_any_seed",
        24,
        |g| {
            let seed = g.u64_in(0, 9_999);
            let base = g.u64_in(13, 149);
            let w = workloads::suite::racy_counter(60);
            let mut spec = ExecSpec::new(w).with_seed(seed);
            spec.timer_base = base;
            spec.timer_jitter = base / 4;
            let (rec, trace) = dejavu::record_run(&spec, |_| {}, SymmetryConfig::full(), true);
            let (plain, d0) = dejavu::replay_run(&spec, trace.clone(), SymmetryConfig::full());
            let (p1, rep, d1) =
                dejavu::profile_replay(&spec, trace.clone(), SymmetryConfig::full());
            qc_assert_eq!(d0.is_empty(), d1.is_empty(), "desync verdict");
            qc_assert_eq!(
                rep.fingerprint,
                plain.fingerprint,
                "replay fingerprint on vs off"
            );
            qc_assert_eq!(
                rep.state_digest,
                plain.state_digest,
                "replay digest on vs off"
            );
            qc_assert_eq!(rep.output, plain.output, "replay output on vs off");
            qc_assert_eq!(
                rep.fingerprint,
                rec.fingerprint,
                "profiled replay vs record"
            );
            let (p2, _, _) = dejavu::profile_replay(&spec, trace, SymmetryConfig::full());
            qc_assert_eq!(
                p1.chrome_json().to_string(),
                p2.chrome_json().to_string(),
                "chrome artifact bytes"
            );
            qc_assert_eq!(p1.folded(), p2.folded(), "folded artifact bytes");
            qc_assert_eq!(
                p1.summary_json(10).to_string(),
                p2.summary_json(10).to_string(),
                "summary bytes"
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// 4. The trace codec round-trips arbitrary traces.
// ---------------------------------------------------------------------

#[test]
fn trace_codec_roundtrips() {
    qc::check("trace_codec_roundtrips", 256, |g| {
        let paranoid = g.bool();
        let trace = dejavu::Trace {
            paranoid,
            switches: g.vec_of(0, 50, |g| {
                let n = g.u64_in(1, 1_000_000);
                dejavu::SwitchRec {
                    nyp: n,
                    check_tid: if paranoid { (n % 7) as u32 } else { u32::MAX },
                }
            }),
            data: g.vec_of(0, 50, |g| dejavu::DataRec::Clock(g.any_i64())),
        };
        let decoded =
            dejavu::Trace::decode(&trace.encoded()).ok_or_else(|| "decode failed".to_string())?;
        qc_assert_eq!(decoded, trace);
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 5. Guest data structures survive GC: random linked-list contents
//    are intact after heavy churn, under both collectors.
// ---------------------------------------------------------------------

#[test]
fn gc_preserves_linked_list() {
    qc::check("gc_preserves_linked_list", 24, |g| {
        let values = g.vec_of(1, 30, |g| g.i64_in(0, 999));
        let expected: i64 = values.iter().sum();
        for gc in [djvm::GcKind::MarkSweep, djvm::GcKind::Copying] {
            let mut pb = ProgramBuilder::new();
            let node = pb
                .class("Node")
                .field("v", Ty::Int)
                .field("next", Ty::Ref)
                .build();
            let m = pb.method("main", 0, 4).code(|a| {
                a.null().store(0);
                // build the list with the literal values
                for &v in &values {
                    a.new(node).store(1);
                    a.load(1).iconst(v).put_field(0);
                    a.load(1).load(0).put_field_ref(1);
                    a.load(1).store(0);
                }
                // churn garbage to force collections
                a.iconst(0).store(2);
                a.label("churn");
                a.load(2).iconst(400).ge().if_nz("sum");
                a.iconst(16).new_array_int().pop();
                a.load(2).iconst(1).add().store(2);
                a.goto("churn");
                // sum the list
                a.label("sum");
                a.iconst(0).store(3);
                a.label("walk");
                a.load(0).null().ref_eq().if_nz("done");
                a.load(3).load(0).get_field(0).add().store(3);
                a.load(0).get_field_ref(1).store(0);
                a.goto("walk");
                a.label("done");
                a.load(3).print();
                a.halt();
            });
            let mut s = ExecSpec::new(pb.finish(m).unwrap());
            s.vm.heap_words = 8 * 1024;
            s.vm.gc = gc;
            let r = passthrough_run(&s, |_| {});
            qc_assert_eq!(
                r.output.trim().parse::<i64>().unwrap(),
                expected,
                "gc {gc:?}"
            );
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 6. Quickened dispatch is a pure speed optimisation. For random
//    programs built from the exact shapes the quickener fuses (and a
//    few it must refuse to fuse) and random timer shapes — always
//    including interval 1, the worst case for mid-fusion splits — the
//    fingerprint, the encoded trace bytes, and the final heap digest
//    are byte-identical with quickening on vs. off, and a trace
//    recorded in one mode replays accurately under the other.
// ---------------------------------------------------------------------

/// One random loop-body statement. Variants map one-to-one onto the
/// quickener's superinstruction patterns (`Const+Store`,
/// `Load+Load+Alu`, `Load+Const+Alu`, compare+branch) plus ops the
/// quickener deliberately leaves generic: `div`/`rem` can trap, and the
/// trap itself must be mode-neutral.
#[derive(Debug, Clone)]
enum QStmt {
    ConstStore {
        v: i64,
        d: u16,
    },
    LoadLoadAlu {
        x: u16,
        y: u16,
        f: u8,
        d: u16,
    },
    LoadConstAlu {
        x: u16,
        v: i64,
        f: u8,
        d: u16,
    },
    CmpSkip {
        x: u16,
        y: u16,
        f: u8,
        nz: bool,
        v: i64,
        d: u16,
    },
    DivRem {
        x: u16,
        y: u16,
        rem: bool,
        d: u16,
    },
    NegStore {
        x: u16,
        d: u16,
    },
}

fn gen_stmt(g: &mut Gen, ndata: u16) -> QStmt {
    // Data locals are 1..=ndata; local 0 is the loop counter and only
    // the loop head writes it, so every drawn program terminates.
    let l = |g: &mut Gen| g.usize_in(1, ndata as usize) as u16;
    match g.u64_in(0, 9) {
        0 | 1 => QStmt::ConstStore {
            v: g.i64_in(-99, 99),
            d: l(g),
        },
        2 | 3 => QStmt::LoadLoadAlu {
            x: l(g),
            y: l(g),
            f: g.u64_in(0, 7) as u8,
            d: l(g),
        },
        4 | 5 => QStmt::LoadConstAlu {
            x: l(g),
            v: g.i64_in(-9, 9),
            f: g.u64_in(0, 7) as u8,
            d: l(g),
        },
        6 | 7 => QStmt::CmpSkip {
            x: l(g),
            y: l(g),
            f: g.u64_in(0, 5) as u8,
            nz: g.bool(),
            v: g.i64_in(0, 9),
            d: l(g),
        },
        8 => QStmt::DivRem {
            x: l(g),
            y: l(g),
            rem: g.bool(),
            d: l(g),
        },
        _ => QStmt::NegStore { x: l(g), d: l(g) },
    }
}

fn emit_alu(f: u8, a: &mut djvm::builder::Asm) {
    match f % 8 {
        0 => a.add(),
        1 => a.sub(),
        2 => a.mul(),
        3 => a.band(),
        4 => a.bor(),
        5 => a.bxor(),
        6 => a.shl(),
        _ => a.shr(),
    };
}

fn emit_cmp(f: u8, a: &mut djvm::builder::Asm) {
    match f % 6 {
        0 => a.eq(),
        1 => a.ne(),
        2 => a.lt(),
        3 => a.le(),
        4 => a.gt(),
        _ => a.ge(),
    };
}

fn emit_stmt(s: &QStmt, tag: &str, i: usize, a: &mut djvm::builder::Asm) {
    match s {
        QStmt::ConstStore { v, d } => {
            a.iconst(*v).store(*d);
        }
        QStmt::LoadLoadAlu { x, y, f, d } => {
            a.load(*x).load(*y);
            emit_alu(*f, a);
            a.store(*d);
        }
        QStmt::LoadConstAlu { x, v, f, d } => {
            a.load(*x).iconst(*v);
            emit_alu(*f, a);
            a.store(*d);
        }
        QStmt::CmpSkip { x, y, f, nz, v, d } => {
            let skip = format!("{tag}_skip{i}");
            a.load(*x).load(*y);
            emit_cmp(*f, a);
            if *nz {
                a.if_nz(&skip);
            } else {
                a.if_z(&skip);
            }
            a.iconst(*v).store(*d);
            a.label(&skip);
        }
        QStmt::DivRem { x, y, rem, d } => {
            a.load(*x).load(*y);
            if *rem {
                a.rem();
            } else {
                a.div();
            }
            a.store(*d);
        }
        QStmt::NegStore { x, d } => {
            a.load(*x);
            a.neg();
            a.store(*d);
        }
    }
}

/// Two threads race random fusible loop bodies over a shared static; the
/// worker additionally makes a statically-monomorphic virtual call each
/// iteration so devirtualized dispatch runs under random timer shapes.
fn build_quick_program(
    ndata: u16,
    init: &[i64],
    w_iters: i64,
    w_stmts: &[QStmt],
    m_iters: i64,
    m_stmts: &[QStmt],
) -> djvm::Program {
    let mut pb = ProgramBuilder::new();
    let shared = pb.class("G").static_field("x", Ty::Int).build();
    let c = pb.class("C").field("v", Ty::Int).build();
    let _mix = pb
        .virtual_method(c, "mix", vec![Ty::Int], 2, Some(Ty::Int))
        .code(|a| {
            a.load(0).dup().get_field(0).load(1).add().put_field(0);
            a.load(0).get_field(0).ret_val();
        });
    let mix_slot = pb.vslot(c, "mix");
    let obj = ndata + 1; // worker's receiver local / main's tid local
    let worker = pb.method("worker", 0, ndata + 2).code(|a| {
        for (i, v) in init.iter().enumerate() {
            a.iconst(*v).store(1 + i as u16);
        }
        a.new(c).store(obj);
        a.iconst(0).store(0);
        a.label("w_top");
        a.load(0).iconst(w_iters).ge().if_nz("w_done");
        a.get_static(shared, 0).load(1).add().put_static(shared, 0);
        a.load(obj).load(1).call_virtual(c, mix_slot).store(1);
        for (i, s) in w_stmts.iter().enumerate() {
            emit_stmt(s, "w", i, a);
        }
        a.load(0).iconst(1).add().store(0);
        a.goto("w_top");
        a.label("w_done");
        a.ret();
    });
    let m = pb.method("main", 0, ndata + 2).code(|a| {
        a.iconst(0).put_static(shared, 0);
        a.spawn(worker, 0).store(obj);
        for (i, v) in init.iter().enumerate() {
            a.iconst(*v).store(1 + i as u16);
        }
        a.iconst(0).store(0);
        a.label("m_top");
        a.load(0).iconst(m_iters).ge().if_nz("m_done");
        a.get_static(shared, 0).load(1).add().put_static(shared, 0);
        for (i, s) in m_stmts.iter().enumerate() {
            emit_stmt(s, "m", i, a);
        }
        a.load(0).iconst(1).add().store(0);
        a.goto("m_top");
        a.label("m_done");
        a.load(obj).join();
        a.get_static(shared, 0).print();
        a.load(1).print();
        a.halt();
    });
    pb.finish(m).unwrap()
}

/// Record in both dispatch modes and demand byte-identical observables,
/// then cross-replay each trace under the *other* mode.
fn quicken_modes_agree(spec: &ExecSpec) -> Result<(), String> {
    let q = spec.clone().with_quicken(true);
    let u = spec.clone().with_quicken(false);
    let (rec_q, trace_q) = record_run(&q, |_| {}, SymmetryConfig::full(), true);
    let (rec_u, trace_u) = record_run(&u, |_| {}, SymmetryConfig::full(), true);
    qc_assert_eq!(rec_q.fingerprint, rec_u.fingerprint, "record fingerprint");
    qc_assert_eq!(rec_q.state_digest, rec_u.state_digest, "final heap digest");
    qc_assert_eq!(&rec_q.output, &rec_u.output, "console output");
    qc_assert_eq!(rec_q.status, rec_u.status, "termination status");
    qc_assert_eq!(rec_q.counters.steps, rec_u.counters.steps, "step count");
    qc_assert_eq!(rec_q.cycles, rec_u.cycles, "cycle count");
    qc_assert_eq!(trace_q.encoded(), trace_u.encoded(), "trace bytes");
    let (rep_q, de_q) = replay_run(&q, trace_u, SymmetryConfig::full());
    qc_assert!(de_q.is_empty(), "desyncs replaying unfused trace quickened");
    qc_assert!(
        rec_q.matches(&rep_q),
        "unfused trace under quickened replay"
    );
    let (rep_u, de_u) = replay_run(&u, trace_q, SymmetryConfig::full());
    qc_assert!(de_u.is_empty(), "desyncs replaying quickened trace unfused");
    qc_assert!(
        rec_u.matches(&rep_u),
        "quickened trace under unfused replay"
    );
    Ok(())
}

#[test]
fn quickening_is_neutral_for_random_programs() {
    qc::check("quickening_is_neutral_for_random_programs", 24, |g| {
        let ndata = g.usize_in(2, 4) as u16;
        let init: Vec<i64> = (0..ndata).map(|_| g.i64_in(-50, 50)).collect();
        let w_iters = g.i64_in(2, 30);
        let m_iters = g.i64_in(2, 30);
        let w_stmts = g.vec_of(1, 8, |g| gen_stmt(g, ndata));
        let m_stmts = g.vec_of(1, 8, |g| gen_stmt(g, ndata));
        let program = build_quick_program(ndata, &init, w_iters, &w_stmts, m_iters, &m_stmts);
        let seed = g.u64_in(0, 9_999);
        let base = g.u64_in(2, 33);
        let jitter = g.u64_in(0, base / 2);
        // The drawn timer shape, plus the interval-1 worst case: a timer
        // that can expire inside every superinstruction window, forcing
        // the split rule on every fused op.
        for (b, j) in [(base, jitter), (1, 0)] {
            let mut s = ExecSpec::new(program.clone()).with_seed(seed);
            s.timer_base = b;
            s.timer_jitter = j;
            quicken_modes_agree(&s)?;
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 7. Clock implementations are monotone for arbitrary cycle inputs.
// ---------------------------------------------------------------------

#[test]
fn clocks_are_monotone() {
    qc::check("clocks_are_monotone", 256, |g| {
        use djvm::clock::WallClock;
        let seed = g.any_u64();
        let mut cycles = g.vec_of(1, 50, |g| g.u64_in(0, 999_999));
        let warp = g.i64_in(0, 999_999);
        cycles.sort_unstable();
        let mut c = djvm::JitteredClock::new(seed, 0, 10, 25);
        let mut last = i64::MIN;
        for (i, &cy) in cycles.iter().enumerate() {
            if i == cycles.len() / 2 {
                c.warp_to(warp);
            }
            let t = c.now(cy);
            qc_assert!(t >= last, "cycle {cy}: {t} < {last}");
            last = t;
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 8. The block trace format is lossless and tamper-evident: random
//    event streams × random block budgets roundtrip exactly (including
//    empty traces and single-event blocks), re-encoding is
//    byte-deterministic, and a truncated tail is always detected.
// ---------------------------------------------------------------------

fn gen_trace(g: &mut Gen) -> dejavu::Trace {
    use dejavu::{DataRec, SwitchRec};
    let paranoid = g.bool();
    let mut t = dejavu::Trace {
        paranoid,
        ..dejavu::Trace::default()
    };
    // Mostly realistic narrow-band values, occasionally adversarial
    // extremes (u64::MAX nyp, i64::MIN clocks) to stress the
    // frame-of-reference columns and saturating logical-time index.
    t.switches = g.vec_of(0, 120, |g| SwitchRec {
        nyp: if g.u64_in(0, 19) == 0 {
            g.any_u64()
        } else {
            g.u64_in(1, 400)
        },
        check_tid: if paranoid {
            g.u64_in(0, 3) as u32
        } else {
            u32::MAX
        },
    });
    t.data = g.vec_of(0, 120, |g| {
        if g.bool() {
            DataRec::Clock(if g.u64_in(0, 19) == 0 {
                g.any_i64()
            } else {
                1_000_000 + g.i64_in(0, 5_000)
            })
        } else {
            DataRec::Native {
                ret: g.any_i64(),
                callbacks: g.vec_of(0, 3, |g| {
                    (g.u64_in(0, 90) as u32, g.vec_of(0, 4, |g| g.any_i64()))
                }),
            }
        }
    });
    t
}

#[test]
fn block_trace_roundtrips_and_detects_truncation() {
    qc::check("block_trace_roundtrips_and_detects_truncation", 128, |g| {
        let t = gen_trace(g);
        let budget = g.u64_in(1, 200) as u32;
        let enc = dejavu::encode_trace(&t, dejavu::TraceFormat::Block, budget);
        qc_assert_eq!(
            dejavu::encode_trace(&t, dejavu::TraceFormat::Block, budget),
            enc.clone(),
            "encoding must be byte-deterministic"
        );
        let bf = dejavu::BlockFile::parse(enc.clone())
            .map_err(|e| format!("own encoding rejected: {e}"))?;
        let back = bf.to_trace().map_err(|e| format!("decode failed: {e}"))?;
        qc_assert_eq!(back, t.clone(), "budget {budget}");
        let (t2, fmt) = dejavu::decode_any(&enc).map_err(|e| format!("decode_any: {e}"))?;
        qc_assert_eq!(fmt, dejavu::TraceFormat::Block, "sniffed format");
        qc_assert_eq!(t2, t.clone(), "decode_any roundtrip");

        // Any truncation of the tail must surface as a typed error —
        // between the footer checks and the per-block CRC there is no
        // cut point that yields a silently different trace.
        let cut = g.usize_in(1, enc.len());
        let short = &enc[..enc.len() - cut];
        if dejavu::sniff_format(short) == Ok(dejavu::TraceFormat::Block) {
            let r = dejavu::BlockFile::parse(short.to_vec()).and_then(|bf| bf.to_trace());
            qc_assert!(r.is_err(), "accepted a {cut}-byte truncation");
        }
        Ok(())
    });
}
