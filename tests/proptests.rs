//! Property-based tests on the core invariants, driven by the in-repo
//! [`dejavu_repro::qc`] harness (deterministic SplitMix64 generation +
//! shrinking-lite — no proptest; the build is hermetic).

use dejavu::{passthrough_run, record_replay, ExecSpec, SymmetryConfig};
use dejavu_repro::qc::{self, Gen};
use dejavu_repro::{qc_assert, qc_assert_eq};
use djvm::{ProgramBuilder, Ty};

// ---------------------------------------------------------------------
// 1. The interpreter computes arithmetic exactly like a host-side model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Const(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

/// Recursive generator, depth-bounded like the old
/// `prop_recursive(4, ..)` strategy.
fn gen_expr(g: &mut Gen, depth: u32) -> Expr {
    // Draw-order stability: the shape draw happens before the subtree
    // draws, so shrinking the shape raw toward 0 collapses to a leaf.
    let choice = if depth == 0 { 0 } else { g.u64_in(0, 4) };
    match choice {
        0 => Expr::Const(g.any_i32()),
        1 => Expr::Add(
            gen_expr(g, depth - 1).into(),
            gen_expr(g, depth - 1).into(),
        ),
        2 => Expr::Sub(
            gen_expr(g, depth - 1).into(),
            gen_expr(g, depth - 1).into(),
        ),
        3 => Expr::Mul(
            gen_expr(g, depth - 1).into(),
            gen_expr(g, depth - 1).into(),
        ),
        _ => Expr::Xor(
            gen_expr(g, depth - 1).into(),
            gen_expr(g, depth - 1).into(),
        ),
    }
}

fn eval(e: &Expr) -> i64 {
    match e {
        Expr::Const(v) => *v as i64,
        Expr::Add(a, b) => eval(a).wrapping_add(eval(b)),
        Expr::Sub(a, b) => eval(a).wrapping_sub(eval(b)),
        Expr::Mul(a, b) => eval(a).wrapping_mul(eval(b)),
        Expr::Xor(a, b) => eval(a) ^ eval(b),
    }
}

fn emit(e: &Expr, a: &mut djvm::builder::Asm) {
    match e {
        Expr::Const(v) => {
            a.iconst(*v as i64);
        }
        Expr::Add(x, y) => {
            emit(x, a);
            emit(y, a);
            a.add();
        }
        Expr::Sub(x, y) => {
            emit(x, a);
            emit(y, a);
            a.sub();
        }
        Expr::Mul(x, y) => {
            emit(x, a);
            emit(y, a);
            a.mul();
        }
        Expr::Xor(x, y) => {
            emit(x, a);
            emit(y, a);
            a.bxor();
        }
    }
}

#[test]
fn interpreter_matches_host_arithmetic() {
    qc::check("interpreter_matches_host_arithmetic", 64, |g| {
        let e = gen_expr(g, 4);
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 0).code(|a| {
            emit(&e, a);
            a.print();
            a.halt();
        });
        let spec = ExecSpec::new(pb.finish(m).unwrap());
        let r = passthrough_run(&spec, |_| {});
        qc_assert_eq!(r.output.trim().parse::<i64>().unwrap(), eval(&e), "expr {e:?}");
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 2. Executions are pure functions of the seed: bit-identical twice.
// ---------------------------------------------------------------------

#[test]
fn execution_is_deterministic_given_the_seed() {
    qc::check("execution_is_deterministic_given_the_seed", 64, |g| {
        let seed = g.u64_in(0, 999);
        let base = g.u64_in(11, 199);
        let w = workloads::suite::racy_counter(60);
        let mut s1 = ExecSpec::new(w.clone()).with_seed(seed);
        s1.timer_base = base;
        s1.timer_jitter = base / 3;
        let mut s2 = ExecSpec::new(w).with_seed(seed);
        s2.timer_base = base;
        s2.timer_jitter = base / 3;
        let a = passthrough_run(&s1, |_| {});
        let b = passthrough_run(&s2, |_| {});
        qc_assert_eq!(a.fingerprint, b.fingerprint);
        qc_assert_eq!(a.state_digest, b.state_digest);
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 3. Replay accuracy holds for arbitrary seeds and timer shapes.
// ---------------------------------------------------------------------

#[test]
fn replay_is_accurate_for_any_seed() {
    qc::check("replay_is_accurate_for_any_seed", 64, |g| {
        let seed = g.u64_in(0, 9_999);
        let base = g.u64_in(13, 149);
        let w = workloads::suite::racy_counter(80);
        let mut s = ExecSpec::new(w).with_seed(seed);
        s.timer_base = base;
        s.timer_jitter = base / 4;
        let (rec, rep, ok) = record_replay(&s, |_| {}, SymmetryConfig::full());
        qc_assert!(ok, "rec {:?} rep {:?}", rec.output, rep.output);
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 3b. The telemetry sink is perturbation-free for arbitrary seeds and
//     timer shapes: every guest-visible quantity is bit-identical with
//     the observer on vs. off, on both sides of the record/replay pair.
// ---------------------------------------------------------------------

#[test]
fn telemetry_is_neutral_for_any_seed() {
    qc::check("telemetry_is_neutral_for_any_seed", 32, |g| {
        let seed = g.u64_in(0, 9_999);
        let base = g.u64_in(13, 149);
        let w = workloads::suite::racy_counter(60);
        let mut off = ExecSpec::new(w).with_seed(seed);
        off.timer_base = base;
        off.timer_jitter = base / 4;
        let on = off.clone().with_telemetry();
        let (rec_off, rep_off, ok_off) = record_replay(&off, |_| {}, SymmetryConfig::full());
        let (rec_on, rep_on, ok_on) = record_replay(&on, |_| {}, SymmetryConfig::full());
        qc_assert_eq!(rec_off.fingerprint, rec_on.fingerprint, "record fingerprint");
        qc_assert_eq!(rec_off.state_digest, rec_on.state_digest, "record digest");
        qc_assert_eq!(rep_off.fingerprint, rep_on.fingerprint, "replay fingerprint");
        qc_assert_eq!(rep_off.state_digest, rep_on.state_digest, "replay digest");
        qc_assert_eq!(rec_off.output, rec_on.output, "record output");
        qc_assert_eq!(ok_off, ok_on, "accuracy verdict");
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 4. The trace codec round-trips arbitrary traces.
// ---------------------------------------------------------------------

#[test]
fn trace_codec_roundtrips() {
    qc::check("trace_codec_roundtrips", 256, |g| {
        let paranoid = g.bool();
        let trace = dejavu::Trace {
            paranoid,
            switches: g.vec_of(0, 50, |g| {
                let n = g.u64_in(1, 1_000_000);
                dejavu::SwitchRec {
                    nyp: n,
                    check_tid: if paranoid { (n % 7) as u32 } else { u32::MAX },
                }
            }),
            data: g.vec_of(0, 50, |g| dejavu::DataRec::Clock(g.any_i64())),
        };
        let decoded = dejavu::Trace::decode(&trace.encoded())
            .ok_or_else(|| "decode failed".to_string())?;
        qc_assert_eq!(decoded, trace);
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 5. Guest data structures survive GC: random linked-list contents
//    are intact after heavy churn, under both collectors.
// ---------------------------------------------------------------------

#[test]
fn gc_preserves_linked_list() {
    qc::check("gc_preserves_linked_list", 24, |g| {
        let values = g.vec_of(1, 30, |g| g.i64_in(0, 999));
        let expected: i64 = values.iter().sum();
        for gc in [djvm::GcKind::MarkSweep, djvm::GcKind::Copying] {
            let mut pb = ProgramBuilder::new();
            let node = pb
                .class("Node")
                .field("v", Ty::Int)
                .field("next", Ty::Ref)
                .build();
            let m = pb.method("main", 0, 4).code(|a| {
                a.null().store(0);
                // build the list with the literal values
                for &v in &values {
                    a.new(node).store(1);
                    a.load(1).iconst(v).put_field(0);
                    a.load(1).load(0).put_field_ref(1);
                    a.load(1).store(0);
                }
                // churn garbage to force collections
                a.iconst(0).store(2);
                a.label("churn");
                a.load(2).iconst(400).ge().if_nz("sum");
                a.iconst(16).new_array_int().pop();
                a.load(2).iconst(1).add().store(2);
                a.goto("churn");
                // sum the list
                a.label("sum");
                a.iconst(0).store(3);
                a.label("walk");
                a.load(0).null().ref_eq().if_nz("done");
                a.load(3).load(0).get_field(0).add().store(3);
                a.load(0).get_field_ref(1).store(0);
                a.goto("walk");
                a.label("done");
                a.load(3).print();
                a.halt();
            });
            let mut s = ExecSpec::new(pb.finish(m).unwrap());
            s.vm.heap_words = 8 * 1024;
            s.vm.gc = gc;
            let r = passthrough_run(&s, |_| {});
            qc_assert_eq!(
                r.output.trim().parse::<i64>().unwrap(),
                expected,
                "gc {gc:?}"
            );
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// 6. Clock implementations are monotone for arbitrary cycle inputs.
// ---------------------------------------------------------------------

#[test]
fn clocks_are_monotone() {
    qc::check("clocks_are_monotone", 256, |g| {
        use djvm::clock::WallClock;
        let seed = g.any_u64();
        let mut cycles = g.vec_of(1, 50, |g| g.u64_in(0, 999_999));
        let warp = g.i64_in(0, 999_999);
        cycles.sort_unstable();
        let mut c = djvm::JitteredClock::new(seed, 0, 10, 25);
        let mut last = i64::MIN;
        for (i, &cy) in cycles.iter().enumerate() {
            if i == cycles.len() / 2 {
                c.warp_to(warp);
            }
            let t = c.now(cy);
            qc_assert!(t >= last, "cycle {cy}: {t} < {last}");
            last = t;
        }
        Ok(())
    });
}
