//! dejavu-cli — drive the replay platform from the command line.
//!
//! ```text
//! dejavu-cli list
//! dejavu-cli run <workload> [seed]
//! dejavu-cli record <workload> <seed> <trace-file> [--trace-format flat|block]
//!                                                  [--metrics-out <file>]
//! dejavu-cli replay <workload> <seed> <trace-file> [--metrics-out <file>]
//! dejavu-cli profile <workload> <seed> <trace-file> [--out <dir>]
//!                    [--format chrome|folded|both] [--top <n>]
//! dejavu-cli trace inspect <trace-file>... [--dedup]  # block index, canonical JSON
//! dejavu-cli stats <workload> [seed]             # record+replay metrics JSON
//! dejavu-cli store put <dir> <workload> <seed> <trace-file>
//!                   [--policy <p>] [--no-verify] # ingest (verified by default)
//! dejavu-cli store get <dir> <entry-id> <out>    # byte-exact reconstruction
//! dejavu-cli store ls <dir>                      # catalog summary, one JSON/line
//! dejavu-cli store gc <dir>                      # drop unreferenced blocks
//! dejavu-cli store compact <dir> [--cold <n>]    # heat-driven tier migration
//! dejavu-cli store stats <dir>                   # content-deterministic shape JSON
//! dejavu-cli neutrality <workload> [seed]        # telemetry on == off proof
//! dejavu-cli checkjson <file>                    # validate via crates/codec
//! dejavu-cli check <corpus-dir>                  # replay corpus vs policies
//! dejavu-cli corpus record <corpus-dir>          # (re)record the corpus
//! dejavu-cli dis <workload> [method-name]
//! dejavu-cli serve <workload> <seed> <port>      # debugger tier over TCP
//!                   [--workers <n>]              # concurrent JSON-line clients
//! dejavu-cli fleet-serve <port> [--workers <n>]  # multi-session fleet server
//!                   [--fleet-token <t>] [--port-file <f>] [--store <dir>]
//! dejavu-cli fleet-bench <addr> [workload]       # drive N concurrent sessions
//!                   [--sessions <n>] [--workers <n>]
//! dejavu-cli fleet-shutdown <addr> <token>       # token-gated graceful stop
//! dejavu-cli stats --fleet <addr>                # live fleet metrics JSON
//! ```
//!
//! `fleet-serve` hosts ≥64 concurrent record/replay sessions behind one
//! framed binary RPC endpoint (`crates/fleet`, DESIGN.md §9); `serve` now
//! accepts any number of simultaneous JSON-line clients via the fleet
//! compatibility adapter (same wire format as before). `fleet-bench`
//! exits 2 if any concurrently-hosted fingerprint differs from its
//! single-session ground truth.
//!
//! Traces written by `record` are [`dejavu::Trace::encoded`] (flat, the
//! default) or the block-structured compressed format of
//! [`dejavu::encode_trace`] (`--trace-format block`); `replay` sniffs the
//! format from the magic and accepts either, then verifies accuracy
//! against a fresh record of the same seed. `--metrics-out` writes the
//! run's canonical (sorted-key, timestamp-free, byte-deterministic)
//! metrics JSON — identical bytes whichever trace format was used, which
//! is how the verify script proves the writer is a pure observer.
//!
//! `--no-quicken` (any run-like subcommand) disables the quickened
//! dispatch engine — runs are bit-identical, only slower. `--no-mega`
//! keeps quickening but disables tier-2 megablock execution of hot loops
//! (the `DJVM_NO_MEGA` env var is the same ablation). `dis --quick`
//! prints the quickened `QOp` stream with fusion pc ranges; `dis --mega`
//! prints each loop's compiled megablock — entry guards, constituent ops
//! with original pc ranges, and the side-exit (deopt) table.
//!
//! Exit codes (uniform across every subcommand): `0` success / accurate
//! replay / corpus pass, `1` usage, I/O, or corrupt-input error, `2`
//! replay divergence (desync), corpus policy violation, or neutrality
//! violation.
//!
//! `check` replays every `<stem>.djvb` + `<stem>.policy.json` pair in the
//! corpus directory ([`dejavu_repro::corpus`]); on a divergence it
//! minimizes the failing workload spec with the qc tape shrinker and
//! prints a canonical-JSON repro blob.
//!
//! `store` subcommands drive the content-addressed trace store
//! (`crates/store`, DESIGN.md §11). `store put` replays the trace before
//! cataloging and records the verified fingerprint (exit 2 if it
//! diverges from a fresh record); `--no-verify` ingests with fingerprint
//! 0, the fleet-ingest semantics. `trace inspect --dedup` keys blocks
//! exactly as the store does — [`codec::digest128`] over the raw
//! pre-compression payload — so its unique-block accounting predicts
//! store dedup byte-for-byte.

use dejavu::{
    decode_any, encode_trace, passthrough_run, record_replay_forensic, record_run, replay_run,
    run_metrics_json, sniff_format, BlockFile, ExecSpec, SymmetryConfig, Trace, TraceFormat,
    DEFAULT_BLOCK_BUDGET,
};
use std::process::ExitCode;

/// Exit code distinguishing "the replay diverged" from ordinary failures.
const EXIT_DIVERGED: u8 = 2;

fn find(name: &str) -> Option<workloads::Workload> {
    workloads::registry().into_iter().find(|w| w.name == name)
}

/// The CLI's execution environment is the corpus's: a trace recorded by
/// `record` and one recorded by `corpus record` must have identical
/// fingerprints, or the corpus gate would disagree with ad-hoc use.
fn spec_of(w: &workloads::Workload, seed: u64) -> ExecSpec {
    dejavu_repro::corpus::corpus_spec(w, seed)
}

/// Extract a boolean flag from the arg list (removing it if present).
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Extract `<opt> <value>` from the arg list (removing both tokens).
fn take_value(args: &mut Vec<String>, opt: &str) -> Result<Option<String>, ()> {
    let Some(i) = args.iter().position(|a| a == opt) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        eprintln!("{opt} requires a value argument");
        return Err(());
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

/// Write canonical metrics JSON (newline-terminated) to `path`.
fn write_metrics(path: &str, json: &codec::Json) -> Result<(), ExitCode> {
    let mut s = json.to_string();
    s.push('\n');
    std::fs::write(path, s).map_err(|e| {
        eprintln!("write {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!(
            "usage: dejavu-cli <list|run|record|replay|profile|trace|stats|neutrality|checkjson|check|corpus|store|dis|serve|fleet-serve|fleet-bench|fleet-shutdown> [args...]\n\
             see the module docs for details"
        );
        ExitCode::FAILURE
    };
    let metrics_out = match take_value(&mut args, "--metrics-out") {
        Ok(m) => m,
        Err(()) => return usage(),
    };
    let out_dir = match take_value(&mut args, "--out") {
        Ok(m) => m,
        Err(()) => return usage(),
    };
    let prof_format = match take_value(&mut args, "--format") {
        Ok(m) => m,
        Err(()) => return usage(),
    };
    let top: usize = match take_value(&mut args, "--top") {
        Ok(None) => 10,
        Ok(Some(s)) => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--top requires an integer, got \"{s}\"");
                return ExitCode::FAILURE;
            }
        },
        Err(()) => return usage(),
    };
    let trace_format = match take_value(&mut args, "--trace-format") {
        Ok(None) => TraceFormat::Flat,
        Ok(Some(name)) => match TraceFormat::from_name(&name) {
            Some(f) => f,
            None => {
                eprintln!("--trace-format must be \"flat\" or \"block\", got \"{name}\"");
                return ExitCode::FAILURE;
            }
        },
        Err(()) => return usage(),
    };
    let workers: usize = match take_value(&mut args, "--workers") {
        Ok(None) => 8,
        Ok(Some(s)) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--workers requires a positive integer, got \"{s}\"");
                return ExitCode::FAILURE;
            }
        },
        Err(()) => return usage(),
    };
    let sessions: usize = match take_value(&mut args, "--sessions") {
        Ok(None) => 64,
        Ok(Some(s)) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--sessions requires a positive integer, got \"{s}\"");
                return ExitCode::FAILURE;
            }
        },
        Err(()) => return usage(),
    };
    let fleet_addr = match take_value(&mut args, "--fleet") {
        Ok(m) => m,
        Err(()) => return usage(),
    };
    let fleet_token = match take_value(&mut args, "--fleet-token") {
        Ok(m) => m.unwrap_or_else(|| "dejavu".to_string()),
        Err(()) => return usage(),
    };
    let port_file = match take_value(&mut args, "--port-file") {
        Ok(m) => m,
        Err(()) => return usage(),
    };
    let store_root = match take_value(&mut args, "--store") {
        Ok(m) => m,
        Err(()) => return usage(),
    };
    // `--no-quicken` runs the generic dispatch loop instead of the
    // quickened QOp stream — a speed ablation, observationally identical.
    // `--no-mega` keeps quickening but disables tier-2 megablock execution
    // of hot loops (same contract: bit-identical observables, only slower).
    let quicken = !take_flag(&mut args, "--no-quicken");
    let mega = !take_flag(&mut args, "--no-mega");
    let quick_dis = take_flag(&mut args, "--quick");
    let mega_dis = take_flag(&mut args, "--mega");
    let dedup = take_flag(&mut args, "--dedup");
    let no_verify = take_flag(&mut args, "--no-verify");
    let policy = match take_value(&mut args, "--policy") {
        Ok(m) => m.unwrap_or_default(),
        Err(()) => return usage(),
    };
    let cold: u64 = match take_value(&mut args, "--cold") {
        Ok(None) => store::DEFAULT_COLD_THRESHOLD,
        Ok(Some(s)) => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--cold requires an integer, got \"{s}\"");
                return ExitCode::FAILURE;
            }
        },
        Err(()) => return usage(),
    };
    // Only force the knobs when a flag was given: the defaults must stay
    // env-driven so `DJVM_NO_QUICKEN=1` / `DJVM_NO_MEGA=1` work through
    // the CLI too.
    let spec_of = move |w: &workloads::Workload, seed: u64| {
        let mut s = spec_of(w, seed);
        if !quicken {
            s = s.with_quicken(false);
        }
        if !mega {
            s = s.with_mega(false);
        }
        s
    };
    match args.first().map(String::as_str) {
        Some("list") => {
            for w in workloads::registry() {
                println!("{:22} {}", w.name, w.description);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(w) = args.get(1).and_then(|n| find(n)) else {
                return usage();
            };
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
            let r = passthrough_run(&spec_of(&w, seed), w.natives);
            print!("{}", r.output);
            eprintln!(
                "[{} steps, {} switches, status {:?}]",
                r.counters.steps, r.counters.thread_switches, r.status
            );
            ExitCode::SUCCESS
        }
        Some("record") => {
            let (Some(w), Some(seed), Some(path)) = (
                args.get(1).and_then(|n| find(n)),
                args.get(2).and_then(|s| s.parse::<u64>().ok()),
                args.get(3),
            ) else {
                return usage();
            };
            let mut spec = spec_of(&w, seed);
            if metrics_out.is_some() {
                spec = spec.with_telemetry();
            }
            let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
            let bytes = encode_trace(&trace, trace_format, DEFAULT_BLOCK_BUDGET);
            if let Err(e) = std::fs::write(path, &bytes) {
                eprintln!("write {path}: {e}");
                return ExitCode::FAILURE;
            }
            print!("{}", rec.output);
            let st = trace.stats();
            // The metrics JSON is deliberately format-independent: the
            // same record must produce byte-identical metrics whether it
            // was stored flat or block (the writer is a pure observer).
            if let Some(out) = metrics_out {
                if let Err(code) = write_metrics(&out, &run_metrics_json(&rec, Some(&st))) {
                    return code;
                }
            }
            match trace_format {
                TraceFormat::Flat => eprintln!(
                    "[trace {path}: flat, {} bytes, {} switches, {} clock reads, {} native outcomes]",
                    st.total_bytes, st.switch_count, st.clock_count, st.native_count
                ),
                TraceFormat::Block => {
                    // Even the just-encoded case goes through the typed
                    // error path: a panic here would break the exit-code
                    // contract if the encoder ever regressed.
                    let bst = match BlockFile::parse(bytes) {
                        Ok(bf) => bf.stats(),
                        Err(e) => {
                            eprintln!("{path}: encoder produced unparseable block trace: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    eprintln!(
                        "[trace {path}: block, {} bytes ({} flat), {} blocks, compression {}‰, {} events]",
                        bst.file_bytes, st.total_bytes, bst.blocks,
                        bst.compression_permille(), bst.events
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Some("replay") => {
            let (Some(w), Some(seed), Some(path)) = (
                args.get(1).and_then(|n| find(n)),
                args.get(2).and_then(|s| s.parse::<u64>().ok()),
                args.get(3),
            ) else {
                return usage();
            };
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (trace, format) = match decode_any(&bytes) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("[{path}: {} format]", format.name());
            // Telemetry is always on here: it is proven perturbation-free,
            // and the rings let a divergence be localized to an event.
            let spec = spec_of(&w, seed).with_telemetry();
            let (rep, desyncs) = replay_run(&spec, trace, SymmetryConfig::full());
            print!("{}", rep.output);
            if let Some(out) = metrics_out {
                if let Err(code) = write_metrics(&out, &run_metrics_json(&rep, None)) {
                    return code;
                }
            }
            // verify against a fresh record of the same seed
            let (rec, _) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
            let accurate = rec.matches(&rep) && desyncs.is_empty();
            // Every desync, named with all its fields.
            for d in &desyncs {
                eprintln!("desync: {}", d.describe());
            }
            if !accurate {
                let report = dejavu::DivergenceReport::build(&rec, &rep, desyncs.clone());
                eprintln!("{}", report.describe());
            }
            eprintln!(
                "[replay {}: {} desyncs]",
                if accurate { "ACCURATE" } else { "DIVERGED" },
                desyncs.len()
            );
            if accurate {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_DIVERGED)
            }
        }
        Some("profile") => {
            // Replay the trace with the flight recorder armed, emit the
            // Chrome-trace / folded-stacks artifacts, and print the
            // canonical-JSON summary. The profiler is a pure observer, so
            // the profiled replay is also checked for neutrality against
            // an unprofiled replay of the same trace (exit 2 on any
            // fingerprint drift, same class as a divergence).
            let (Some(w), Some(seed), Some(path)) = (
                args.get(1).and_then(|n| find(n)),
                args.get(2).and_then(|s| s.parse::<u64>().ok()),
                args.get(3),
            ) else {
                return usage();
            };
            let format = match prof_format.as_deref() {
                None | Some("both") => "both",
                Some(f @ ("chrome" | "folded")) => f,
                Some(f) => {
                    eprintln!("--format must be \"chrome\", \"folded\" or \"both\", got \"{f}\"");
                    return ExitCode::FAILURE;
                }
            };
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (trace, fmt) = match decode_any(&bytes) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("[{path}: {} format]", fmt.name());
            let spec = spec_of(&w, seed);
            let (prof, report, desyncs) =
                dejavu::profile_replay(&spec, trace.clone(), SymmetryConfig::full());
            for d in &desyncs {
                eprintln!("desync: {}", d.describe());
            }
            let (plain, _) = replay_run(&spec, trace, SymmetryConfig::full());
            let neutral = report.fingerprint == plain.fingerprint
                && report.state_digest == plain.state_digest;
            if !neutral {
                eprintln!(
                    "profiler neutrality VIOLATED: profiled fingerprint {:016x} vs \
                     unprofiled {:016x}",
                    report.fingerprint, plain.fingerprint
                );
            }
            if let Some(dir) = out_dir {
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("mkdir {dir}: {e}");
                    return ExitCode::FAILURE;
                }
                if format != "folded" {
                    let p = format!("{dir}/profile.chrome.json");
                    let mut s = prof.chrome_json().to_string();
                    s.push('\n');
                    if let Err(e) = std::fs::write(&p, s) {
                        eprintln!("write {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("[wrote {p}]");
                }
                if format != "chrome" {
                    let p = format!("{dir}/profile.folded");
                    if let Err(e) = std::fs::write(&p, prof.folded()) {
                        eprintln!("write {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("[wrote {p}]");
                }
            }
            println!("{}", prof.summary_json(top));
            if let Some(hot) = prof.hottest_method() {
                eprintln!("[hottest method: {hot}]");
            }
            if neutral && desyncs.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_DIVERGED)
            }
        }
        Some("trace") => {
            // trace inspect <file>...: the block index as canonical JSON —
            // diffable, and a deterministic function of the file bytes.
            // Each block carries its content digest (digest128 of the raw
            // pre-compression payload — the store's dedup key, computed
            // over the same bytes), and `--dedup` appends a summary of
            // unique vs total blocks across all the named files: what a
            // `store put` of this set would share.
            let Some("inspect") = args.get(1).map(String::as_str) else {
                return usage();
            };
            let paths: Vec<String> = args.iter().skip(2).cloned().collect();
            if paths.is_empty() {
                return usage();
            }
            use codec::Json;
            use std::collections::BTreeMap;
            // digest hex → raw payload length, across all files.
            let mut seen: BTreeMap<String, u64> = BTreeMap::new();
            let mut total_blocks = 0u64;
            let mut total_raw = 0u64;
            for path in &paths {
                let bytes = match std::fs::read(path) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut doc = match sniff_format(&bytes) {
                    Ok(TraceFormat::Flat) => {
                        let Some(trace) = Trace::decode(&bytes) else {
                            eprintln!("{path}: corrupt trace: flat trace rejected by decoder");
                            return ExitCode::FAILURE;
                        };
                        if dedup {
                            // Key flat sources exactly as the store does:
                            // blockified at the default budget first.
                            let enc = dejavu::blocktrace::encode_block(
                                &trace,
                                DEFAULT_BLOCK_BUDGET,
                            );
                            let raws = match BlockFile::parse(enc).and_then(|bf| bf.raw_blocks())
                            {
                                Ok(r) => r,
                                Err(e) => {
                                    eprintln!("{path}: blockify for dedup: {e}");
                                    return ExitCode::FAILURE;
                                }
                            };
                            for rb in &raws {
                                total_blocks += 1;
                                total_raw += rb.raw.len() as u64;
                                seen.insert(
                                    codec::digest128(&rb.raw).hex(),
                                    rb.raw.len() as u64,
                                );
                            }
                        }
                        Json::obj(vec![
                            ("format", Json::Str("flat".into())),
                            ("stats", trace.stats().to_json()),
                        ])
                    }
                    Ok(TraceFormat::Block) => {
                        let bf = match BlockFile::parse(bytes) {
                            Ok(bf) => bf,
                            Err(e) => {
                                eprintln!("{path}: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                        let crc_ok = bf.crc_status();
                        let blocks: Vec<Json> = bf
                            .index
                            .iter()
                            .enumerate()
                            .zip(&crc_ok)
                            .map(|((i, b), &ok)| {
                                // Per-block compression accounting: how well the
                                // block squeezed and which compressor won its
                                // encode-time race (corrupt method bytes keep the
                                // inspection total, like `crc_ok: false` does).
                                let permille = if b.raw_len == 0 {
                                    1000
                                } else {
                                    b.comp_len as u64 * 1000 / b.raw_len as u64
                                };
                                let compressor = bf.block_compressor(i).unwrap_or("corrupt");
                                // The store's content key; corrupt payloads
                                // keep the inspection total like crc_ok does.
                                let digest = match bf.block_raw(i) {
                                    Ok(raw) => {
                                        if dedup && ok {
                                            total_blocks += 1;
                                            total_raw += raw.len() as u64;
                                            seen.insert(
                                                codec::digest128(&raw).hex(),
                                                raw.len() as u64,
                                            );
                                        }
                                        codec::digest128(&raw).hex()
                                    }
                                    Err(_) => "corrupt".into(),
                                };
                                Json::obj(vec![
                                    ("comp_len", Json::UInt(b.comp_len as u64)),
                                    ("compression_permille", Json::UInt(permille)),
                                    ("compressor", Json::Str(compressor.into())),
                                    ("crc_ok", Json::Bool(ok)),
                                    ("digest", Json::Str(digest)),
                                    ("event_count", Json::UInt(b.event_count as u64)),
                                    ("first_logical_time", Json::UInt(b.first_logical_time)),
                                    ("first_seq", Json::UInt(b.first_seq)),
                                    ("offset", Json::UInt(b.offset)),
                                    ("raw_len", Json::UInt(b.raw_len as u64)),
                                    ("switch_count", Json::UInt(b.switch_count as u64)),
                                ])
                            })
                            .collect();
                        Json::obj(vec![
                            ("format", Json::Str("block".into())),
                            ("budget", Json::UInt(bf.budget as u64)),
                            ("paranoid", Json::Bool(bf.paranoid)),
                            ("blocks", Json::Arr(blocks)),
                            ("stats", bf.stats().to_json()),
                        ])
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                doc.canonicalize();
                println!("{doc}");
            }
            if dedup {
                let unique_raw: u64 = seen.values().sum();
                let ratio = if unique_raw == 0 {
                    0
                } else {
                    total_raw * 1000 / unique_raw
                };
                let mut summary = Json::obj(vec![
                    ("blocks", Json::UInt(total_blocks)),
                    ("dedup_ratio_milli", Json::UInt(ratio)),
                    ("files", Json::UInt(paths.len() as u64)),
                    ("raw_bytes", Json::UInt(total_raw)),
                    ("unique_blocks", Json::UInt(seen.len() as u64)),
                    ("unique_raw_bytes", Json::UInt(unique_raw)),
                ]);
                summary.canonicalize();
                println!("{summary}");
            }
            ExitCode::SUCCESS
        }
        Some("stats") if fleet_addr.is_some() => {
            // `stats --fleet <addr>`: live fleet-server metrics. Stdout is
            // the canonical (sorted-key, byte-deterministic) JSON snapshot;
            // the human latency digest goes to stderr like workload stats.
            let addr = fleet_addr.unwrap();
            let mut client = match fleet::FleetClient::connect(&addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("connect {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let json = match client.stats() {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("stats rpc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Ok(doc) = codec::Json::parse(&json) else {
                eprintln!("stats rpc returned unparseable json");
                return ExitCode::FAILURE;
            };
            println!("{doc}");
            if let Some(codec::Json::Obj(sessions)) = doc.get("sessions") {
                let field = |k: &str| {
                    sessions
                        .iter()
                        .find(|(n, _)| n == k)
                        .and_then(|(_, v)| v.as_u64().ok())
                        .unwrap_or(0)
                };
                eprintln!(
                    "[sessions: active={} peak={} opened={} closed={} evicted={}]",
                    field("active"),
                    field("peak"),
                    field("opened"),
                    field("closed"),
                    field("evicted"),
                );
            }
            if let Some(codec::Json::Obj(hists)) = doc.get("rpc").and_then(|r| r.get("histograms"))
            {
                for (name, h) in hists {
                    let q = |k: &str| h.get(k).and_then(|v| v.as_u64().ok()).unwrap_or(0);
                    if q("count") == 0 {
                        continue;
                    }
                    eprintln!(
                        "[{name}: n={} p50={}ns p95={}ns p99={}ns max={}ns]",
                        q("count"),
                        q("p50"),
                        q("p95"),
                        q("p99"),
                        q("max"),
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Some("stats") => {
            let Some(w) = args.get(1).and_then(|n| find(n)) else {
                return usage();
            };
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
            let spec = spec_of(&w, seed).with_telemetry();
            let out = record_replay_forensic(&spec, w.natives, SymmetryConfig::full());
            // Tier-2 stats are observer-side (excluded from the byte-compared
            // run metrics) but worth surfacing here: tier_ups is deterministic
            // across record/replay, the entry/iteration split is not required
            // to be (it depends on each side's quiet-yield horizon).
            let mut doc = codec::Json::obj(vec![
                ("accurate", codec::Json::Bool(out.accurate)),
                (
                    "mega",
                    codec::Json::obj(vec![
                        ("record", out.record.mega.to_json()),
                        ("replay", out.replay.mega.to_json()),
                    ]),
                ),
                (
                    "record",
                    run_metrics_json(&out.record, Some(&out.trace_stats)),
                ),
                ("replay", run_metrics_json(&out.replay, None)),
            ]);
            doc.canonicalize();
            println!("{doc}");
            // Human-readable latency digest of the record-side histograms:
            // the log2-bucket quantile estimates (exact min/max, p50/p95/p99
            // interpolated within a bucket).
            if let Some(t) = &out.record.telemetry {
                for (name, h) in [
                    ("alloc_words", &t.alloc_words),
                    ("compile_words", &t.compile_words),
                    ("timer_intervals", &t.timer_intervals),
                ] {
                    if h.count() == 0 {
                        continue;
                    }
                    eprintln!(
                        "[{name}: n={} min={} p50={} p95={} p99={} max={}]",
                        h.count(),
                        h.min().unwrap_or(0),
                        h.quantile(500).unwrap_or(0),
                        h.quantile(950).unwrap_or(0),
                        h.quantile(990).unwrap_or(0),
                        h.max().unwrap_or(0),
                    );
                }
            }
            if let Some(report) = &out.report {
                eprintln!("{}", report.describe());
                return ExitCode::from(EXIT_DIVERGED);
            }
            ExitCode::SUCCESS
        }
        Some("neutrality") => {
            // Prove perturbation-freedom for this workload+seed: the
            // fingerprint, state digest and output of record and replay
            // must be bit-identical with the telemetry sink on vs. off.
            let Some(w) = args.get(1).and_then(|n| find(n)) else {
                return usage();
            };
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
            let spec_off = spec_of(&w, seed);
            let spec_on = spec_of(&w, seed).with_telemetry();
            let off = record_replay_forensic(&spec_off, w.natives, SymmetryConfig::full());
            let on = record_replay_forensic(&spec_on, w.natives, SymmetryConfig::full());
            let neutral = off.record.matches(&on.record) && off.replay.matches(&on.replay);
            println!(
                "record fingerprint off={:016x} on={:016x}\n\
                 replay fingerprint off={:016x} on={:016x}\n\
                 neutrality: {}",
                off.record.fingerprint,
                on.record.fingerprint,
                off.replay.fingerprint,
                on.replay.fingerprint,
                if neutral { "HOLDS" } else { "VIOLATED" }
            );
            if neutral {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_DIVERGED)
            }
        }
        Some("checkjson") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match codec::Json::parse(text.trim()) {
                Ok(j) => {
                    let canon = j.to_canonical_string();
                    if canon != text.trim() {
                        eprintln!("{path}: valid JSON but not in canonical (sorted-key) form");
                        return ExitCode::FAILURE;
                    }
                    println!("{path}: canonical JSON OK");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: invalid JSON: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check") => {
            let Some(dir) = args.get(1) else {
                return usage();
            };
            let report = match dejavu_repro::corpus::check_corpus(std::path::Path::new(dir)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("check {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for c in &report.checks {
                let verdict = if let Some(msg) = &c.corrupt {
                    format!("CORRUPT  {msg}")
                } else if !c.violations.is_empty() {
                    format!("VIOLATED {}", c.violations.join("; "))
                } else {
                    format!(
                        "ok       {} events, {} bytes{}, {} ms",
                        c.events,
                        c.bytes,
                        c.seek_events
                            .map(|e| format!(", seek {e} ev"))
                            .unwrap_or_default(),
                        c.check_ms
                    )
                };
                println!("{:28} {verdict}", c.name);
                for w in &c.warnings {
                    println!("{:28}   lenient: {w}", "");
                }
            }
            // Divergences get the full treatment: minimize the failing
            // workload spec and print a replayable repro blob.
            for c in report.checks.iter().filter(|c| c.diverged) {
                let Ok(policy_text) =
                    std::fs::read_to_string(format!("{dir}/{}.policy.json", c.name))
                else {
                    continue;
                };
                let Ok(policy) = dejavu_repro::corpus::Policy::parse(&policy_text) else {
                    continue;
                };
                let start = dejavu_repro::corpus::ReproSpec {
                    workload: policy.workload,
                    seed: policy.seed,
                    timer_base: 211,
                    timer_jitter: 60,
                    clock_noise: 3,
                };
                match dejavu_repro::corpus::shrink_divergence(&start, SymmetryConfig::full()) {
                    Some(repro) => eprintln!("repro[{}]: {}", c.name, repro.to_blob()),
                    None => eprintln!(
                        "repro[{}]: divergence did not reproduce from a fresh record \
                         (trace/policy drift, not a platform bug)",
                        c.name
                    ),
                }
            }
            println!(
                "[corpus {}: {}/{} passed]",
                dir,
                report.passed(),
                report.checks.len()
            );
            ExitCode::from(report.exit_class())
        }
        Some("corpus") => {
            let (Some("record"), Some(dir)) = (args.get(1).map(String::as_str), args.get(2)) else {
                return usage();
            };
            match dejavu_repro::corpus::record_corpus(std::path::Path::new(dir)) {
                Ok(stems) => {
                    for s in &stems {
                        println!("recorded {dir}/{s}.djvb");
                    }
                    eprintln!("[corpus {dir}: {} traces recorded]", stems.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("corpus record {dir}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("dis") => {
            let Some(w) = args.get(1).and_then(|n| find(n)) else {
                return usage();
            };
            let p = (w.build)();
            match args.get(2) {
                Some(mname) => match p.method_id_by_name(mname) {
                    Some(m) if mega_dis => {
                        println!("{}", djvm::dis::disassemble_mega(&p, m))
                    }
                    Some(m) if quick_dis => {
                        println!("{}", djvm::dis::disassemble_quickened(&p, m))
                    }
                    Some(m) => println!("{}", djvm::dis::disassemble(&p, m)),
                    None => {
                        eprintln!("no method {mname}");
                        return ExitCode::FAILURE;
                    }
                },
                None if mega_dis => println!("{}", djvm::dis::disassemble_mega_all(&p)),
                None if quick_dis => println!("{}", djvm::dis::disassemble_quickened_all(&p)),
                None => println!("{}", djvm::dis::disassemble_all(&p)),
            }
            ExitCode::SUCCESS
        }
        Some("store") => {
            // Content-addressed trace store (crates/store). Uniform exit
            // codes: StoreError::code() maps corruption/IO to 1 and
            // fingerprint divergence to 2, same classes as `replay`.
            let fail = |e: store::StoreError| {
                eprintln!("store: {e}");
                ExitCode::from(e.code())
            };
            let Some(dir) = args.get(2) else {
                return usage();
            };
            let st = match store::Store::open(std::path::Path::new(dir)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("store open {dir}: {e}");
                    return ExitCode::from(e.code());
                }
            };
            match args.get(1).map(String::as_str) {
                Some("put") => {
                    let (Some(w), Some(seed), Some(path)) = (
                        args.get(3).and_then(|n| find(n)),
                        args.get(4).and_then(|s| s.parse::<u64>().ok()),
                        args.get(5),
                    ) else {
                        return usage();
                    };
                    let bytes = match std::fs::read(path) {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!("read {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    // Verified by default: the fingerprint cataloged with a
                    // run is one an actual replay produced, cross-checked
                    // against a fresh record — never taken on faith.
                    let mut fingerprint = 0u64;
                    if !no_verify {
                        let trace = match decode_any(&bytes) {
                            Ok((t, _)) => t,
                            Err(e) => {
                                eprintln!("{path}: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                        let spec = spec_of(&w, seed);
                        let (rep, desyncs) = replay_run(&spec, trace, SymmetryConfig::full());
                        let (rec, _) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
                        if !(rec.matches(&rep) && desyncs.is_empty()) {
                            eprintln!(
                                "store put: {path} does not replay accurately as {}/{seed} \
                                 ({} desyncs) — refusing to catalog a verified fingerprint",
                                w.name,
                                desyncs.len()
                            );
                            return ExitCode::from(EXIT_DIVERGED);
                        }
                        fingerprint = rep.fingerprint;
                    }
                    match st.put_bytes(&w.name, seed, &bytes, fingerprint, &policy) {
                        Ok(out) => {
                            let mut doc = out.to_json();
                            doc.canonicalize();
                            println!("{doc}");
                            eprintln!(
                                "[store put {}: {} blocks ({} new), {}]",
                                out.entry,
                                out.blocks_total,
                                out.blocks_new,
                                if no_verify { "unverified" } else { "verified" }
                            );
                            ExitCode::SUCCESS
                        }
                        Err(e) => fail(e),
                    }
                }
                Some("get") => {
                    let (Some(id), Some(out)) = (args.get(3), args.get(4)) else {
                        return usage();
                    };
                    match st.get_bytes(id) {
                        Ok(bytes) => {
                            if let Err(e) = std::fs::write(out, &bytes) {
                                eprintln!("write {out}: {e}");
                                return ExitCode::FAILURE;
                            }
                            eprintln!("[store get {id}: {} bytes]", bytes.len());
                            ExitCode::SUCCESS
                        }
                        Err(e) => fail(e),
                    }
                }
                Some("ls") => match st.entries() {
                    Ok(entries) => {
                        for e in entries {
                            let mut line = codec::Json::obj(vec![
                                ("blocks", codec::Json::UInt(e.blocks.len() as u64)),
                                ("file_bytes", codec::Json::UInt(e.file_bytes)),
                                ("fingerprint", codec::Json::UInt(e.fingerprint)),
                                ("id", codec::Json::Str(e.identity())),
                                ("puts", codec::Json::UInt(e.puts)),
                                ("seed", codec::Json::UInt(e.seed)),
                                ("workload", codec::Json::Str(e.workload)),
                            ]);
                            line.canonicalize();
                            println!("{line}");
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                },
                Some("gc") => match st.gc() {
                    Ok(report) => {
                        let mut doc = report.to_json();
                        doc.canonicalize();
                        println!("{doc}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                },
                Some("compact") => match st.compact(cold) {
                    Ok(report) => {
                        let mut doc = report.to_json();
                        doc.canonicalize();
                        println!("{doc}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                },
                Some("stats") => match st.disk_stats() {
                    Ok(stats) => {
                        let mut doc = stats;
                        doc.canonicalize();
                        println!("{doc}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                },
                _ => usage(),
            }
        }
        Some("serve") => {
            let (Some(w), Some(seed), Some(port)) = (
                args.get(1).and_then(|n| find(n)),
                args.get(2).and_then(|s| s.parse::<u64>().ok()),
                args.get(3).and_then(|s| s.parse::<u16>().ok()),
            ) else {
                return usage();
            };
            let spec = spec_of(&w, seed);
            let (_rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
            let session =
                debugger::DebugSession::new(spec.program.clone(), spec.vm.clone(), trace, 5_000);
            let listener = match std::net::TcpListener::bind(("127.0.0.1", port)) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("bind port {port}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "debugger tier listening on 127.0.0.1:{port} \
                 (JSON-line protocol, {workers} workers, concurrent clients ok)"
            );
            match fleet::compat::serve_debug(session, listener, workers) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("fleet-serve") => {
            let Some(port) = args.get(1).and_then(|s| s.parse::<u16>().ok()) else {
                return usage();
            };
            let config = fleet::FleetConfig {
                workers,
                shutdown_token: fleet_token,
                store_root: store_root.map(std::path::PathBuf::from),
                ..fleet::FleetConfig::default()
            };
            let server = match fleet::FleetServer::start(&format!("127.0.0.1:{port}"), config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bind port {port}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = server.addr();
            // `--port-file` lets scripts bind port 0 and learn the pick.
            if let Some(path) = port_file {
                if let Err(e) = std::fs::write(&path, format!("{}\n", addr.port())) {
                    eprintln!("write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            eprintln!("fleet server listening on {addr} ({workers} workers, framed RPC)");
            server.join(); // returns when a Shutdown RPC is accepted
            eprintln!("fleet server: clean shutdown");
            ExitCode::SUCCESS
        }
        Some("fleet-bench") => {
            let Some(addr) = args.get(1) else {
                return usage();
            };
            let workload = args.get(2).map(String::as_str).unwrap_or("fig1_ab");
            let threads = workers.min(sessions);
            let report = match fleet::bench::drive(addr, sessions, workload, threads) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("fleet-bench: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let secs = report.elapsed.as_secs_f64();
            let mut doc = codec::Json::obj(vec![
                ("sessions", codec::Json::UInt(report.sessions as u64)),
                ("requests", codec::Json::UInt(report.requests)),
                (
                    "elapsed_ns",
                    codec::Json::UInt(report.elapsed.as_nanos() as u64),
                ),
                (
                    "sessions_per_sec",
                    codec::Json::UInt((report.sessions as f64 / secs.max(1e-9)) as u64),
                ),
                (
                    "p50_request_ns",
                    codec::Json::UInt(report.latency.quantile(500).unwrap_or(0)),
                ),
                (
                    "p99_request_ns",
                    codec::Json::UInt(report.latency.quantile(990).unwrap_or(0)),
                ),
                (
                    "fingerprints_match",
                    codec::Json::Bool(report.fingerprints_match),
                ),
                ("resident_peak", codec::Json::UInt(report.resident_peak)),
            ]);
            doc.canonicalize();
            println!("{doc}");
            for m in &report.mismatches {
                eprintln!("MISMATCH: {m}");
            }
            if report.fingerprints_match {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_DIVERGED)
            }
        }
        Some("fleet-shutdown") => {
            let (Some(addr), Some(token)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let mut client = match fleet::FleetClient::connect(addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("connect {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match client.shutdown(token) {
                Ok(true) => {
                    eprintln!("fleet server at {addr}: shutting down");
                    ExitCode::SUCCESS
                }
                Ok(false) => {
                    eprintln!("fleet server at {addr}: shutdown denied (bad ctrl token)");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("shutdown rpc: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
