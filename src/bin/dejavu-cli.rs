//! dejavu-cli — drive the replay platform from the command line.
//!
//! ```text
//! dejavu-cli list
//! dejavu-cli run <workload> [seed]
//! dejavu-cli record <workload> <seed> <trace-file>
//! dejavu-cli replay <workload> <seed> <trace-file>
//! dejavu-cli dis <workload> [method-name]
//! dejavu-cli serve <workload> <seed> <port>      # debugger tier over TCP
//! ```
//!
//! Traces written by `record` are the binary format of
//! [`dejavu::Trace::encoded`]; `replay` verifies accuracy against a fresh
//! record of the same seed.

use dejavu::{passthrough_run, record_run, replay_run, ExecSpec, SymmetryConfig, Trace};
use std::process::ExitCode;

fn find(name: &str) -> Option<workloads::Workload> {
    workloads::registry().into_iter().find(|w| w.name == name)
}

fn spec_of(w: &workloads::Workload, seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new((w.build)()).with_seed(seed);
    s.timer_base = 211;
    s.timer_jitter = 60;
    s
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!(
            "usage: dejavu-cli <list|run|record|replay|dis|serve> [args...]\n\
             see the module docs for details"
        );
        ExitCode::FAILURE
    };
    match args.first().map(String::as_str) {
        Some("list") => {
            for w in workloads::registry() {
                println!("{:22} {}", w.name, w.description);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(w) = args.get(1).and_then(|n| find(n)) else {
                return usage();
            };
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
            let r = passthrough_run(&spec_of(&w, seed), w.natives);
            print!("{}", r.output);
            eprintln!(
                "[{} steps, {} switches, status {:?}]",
                r.counters.steps, r.counters.thread_switches, r.status
            );
            ExitCode::SUCCESS
        }
        Some("record") => {
            let (Some(w), Some(seed), Some(path)) = (
                args.get(1).and_then(|n| find(n)),
                args.get(2).and_then(|s| s.parse::<u64>().ok()),
                args.get(3),
            ) else {
                return usage();
            };
            let (rec, trace) = record_run(&spec_of(&w, seed), w.natives, SymmetryConfig::full(), true);
            let bytes = trace.encoded();
            if let Err(e) = std::fs::write(path, &bytes) {
                eprintln!("write {path}: {e}");
                return ExitCode::FAILURE;
            }
            print!("{}", rec.output);
            let st = trace.stats();
            eprintln!(
                "[trace {path}: {} bytes, {} switches, {} clock reads, {} native outcomes]",
                st.total_bytes, st.switch_count, st.clock_count, st.native_count
            );
            ExitCode::SUCCESS
        }
        Some("replay") => {
            let (Some(w), Some(seed), Some(path)) = (
                args.get(1).and_then(|n| find(n)),
                args.get(2).and_then(|s| s.parse::<u64>().ok()),
                args.get(3),
            ) else {
                return usage();
            };
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(trace) = Trace::decode(&bytes) else {
                eprintln!("{path}: not a valid trace");
                return ExitCode::FAILURE;
            };
            let spec = spec_of(&w, seed);
            let (rep, desyncs) = replay_run(&spec, trace, SymmetryConfig::full());
            print!("{}", rep.output);
            // verify against a fresh record of the same seed
            let (rec, _) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
            let accurate = rec.matches(&rep) && desyncs.is_empty();
            eprintln!(
                "[replay {}: {} desyncs]",
                if accurate { "ACCURATE" } else { "DIVERGED" },
                desyncs.len()
            );
            if accurate {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("dis") => {
            let Some(w) = args.get(1).and_then(|n| find(n)) else {
                return usage();
            };
            let p = (w.build)();
            match args.get(2) {
                Some(mname) => match p.method_id_by_name(mname) {
                    Some(m) => println!("{}", djvm::dis::disassemble(&p, m)),
                    None => {
                        eprintln!("no method {mname}");
                        return ExitCode::FAILURE;
                    }
                },
                None => println!("{}", djvm::dis::disassemble_all(&p)),
            }
            ExitCode::SUCCESS
        }
        Some("serve") => {
            let (Some(w), Some(seed), Some(port)) = (
                args.get(1).and_then(|n| find(n)),
                args.get(2).and_then(|s| s.parse::<u64>().ok()),
                args.get(3).and_then(|s| s.parse::<u16>().ok()),
            ) else {
                return usage();
            };
            let spec = spec_of(&w, seed);
            let (_rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
            let session = debugger::DebugSession::new(spec.program.clone(), spec.vm.clone(), trace, 5_000);
            let listener = match std::net::TcpListener::bind(("127.0.0.1", port)) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("bind port {port}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("debugger tier listening on 127.0.0.1:{port} (JSON-line protocol)");
            match debugger::server::serve_one(session, listener) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
