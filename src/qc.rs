//! qc — a mini deterministic property-testing harness (the proptest
//! replacement).
//!
//! Fitting for this repository: the paper's whole subject is deterministic
//! re-execution, and so is this module's. A property draws values through
//! a [`Gen`]; every draw consumes one raw `u64` from a seeded SplitMix64
//! stream and is recorded on a *tape*. Case seeds are pure functions of
//! the test name, so a failure reproduces bit-identically on every
//! machine with no seed file.
//!
//! **Shrinking-lite:** on failure the recorded tape is minimized by
//! re-running the property on mutated tapes — truncations (drops trailing
//! structure), zeroings, halvings and decrements of individual entries
//! (drives drawn values toward range minimums, vector lengths toward
//! their floor). The tape stores *canonical* raws — the smallest source
//! value replaying to the same drawn value — so tape order is value
//! order and the mutations shrink values directly. The minimal tape is
//! printed in the panic message and can be replayed with
//! [`Gen::replaying`].
//!
//! Knobs: `QC_CASES` overrides the per-property case count; `QC_SEED`
//! overrides the base seed.

use djvm::SplitMix64;

/// Source of generated values: a recorded stream of raw `u64`s, drawn
/// fresh from a PRNG or replayed from a shrink-candidate tape.
pub struct Gen {
    rng: SplitMix64,
    replay: Option<Vec<u64>>,
    /// Raws consumed so far (the tape).
    recorded: Vec<u64>,
}

impl Gen {
    /// Fresh generator for one case.
    pub fn fresh(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            replay: None,
            recorded: Vec::new(),
        }
    }

    /// Replay a (possibly mutated) tape; draws beyond its end yield 0,
    /// the smallest raw, so truncation is always a valid shrink.
    pub fn replaying(tape: Vec<u64>) -> Self {
        Self {
            rng: SplitMix64::new(0),
            replay: Some(tape),
            recorded: Vec::new(),
        }
    }

    /// Next unrecorded source value: replay tape (0 past its end) or PRNG.
    fn next_raw(&mut self) -> u64 {
        let i = self.recorded.len();
        match &self.replay {
            Some(tape) => tape.get(i).copied().unwrap_or(0),
            None => self.rng.next_u64(),
        }
    }

    /// Record the *canonical* raw for a draw — the smallest source value
    /// that replays to the same drawn value. Keeping the tape canonical is
    /// what makes shrinking work: decrementing or halving a tape entry
    /// moves the drawn value itself down, not some unrelated residue.
    fn record(&mut self, canonical: u64) {
        self.recorded.push(canonical);
    }

    /// Uniform-ish draw from `lo..=hi` (modulo mapping; the slight bias is
    /// irrelevant for test generation). The tape entry is the offset from
    /// `lo`, so tape order == value order.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            let r = self.next_raw();
            self.record(r);
            return r;
        }
        let off = self.next_raw() % (span + 1);
        self.record(off);
        lo + off
    }

    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as u64).wrapping_sub(lo as u64);
        if span == u64::MAX {
            let r = self.next_raw();
            self.record(r);
            return r as i64;
        }
        let off = self.next_raw() % (span + 1);
        self.record(off);
        lo.wrapping_add(off as i64)
    }

    /// Full-range `i64` (proptest's `any::<i64>()`); the tape entry is the
    /// zigzag encoding, so smaller tape values mean smaller magnitudes.
    pub fn any_i64(&mut self) -> i64 {
        let r = self.next_raw();
        self.record(r);
        codec::unzigzag(r)
    }

    pub fn any_i32(&mut self) -> i32 {
        self.any_i64() as i32
    }

    pub fn any_u64(&mut self) -> u64 {
        let r = self.next_raw();
        self.record(r);
        r
    }

    pub fn bool(&mut self) -> bool {
        let b = self.next_raw() & 1;
        self.record(b);
        b == 1
    }

    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A vector whose length is drawn from `min..=max`, elements from `f`.
    pub fn vec_of<T>(
        &mut self,
        min: usize,
        max: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(min, max);
        (0..n).map(|_| f(self)).collect()
    }
}

/// FNV-1a — stable name→seed mapping across platforms and sessions.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

/// Run `prop` for `cases` generated cases; on failure, shrink the tape
/// and panic with a replayable report.
///
/// The property reports failure by returning `Err` (see [`qc_assert!`] /
/// [`qc_assert_eq!`]); it must be deterministic in the values it draws.
pub fn check<F>(name: &str, cases: u64, mut prop: F)
where
    F: FnMut(&mut Gen) -> Result<(), String>,
{
    let cases = env_u64("QC_CASES").unwrap_or(cases).max(1);
    let base = env_u64("QC_SEED").unwrap_or_else(|| fnv1a(name));
    // Case seeds are SplitMix64 outputs of the base seed, not base+i:
    // neighbouring streams would otherwise overlap heavily.
    let mut seeder = SplitMix64::new(base);
    for case in 0..cases {
        let seed = seeder.next_u64();
        let mut g = Gen::fresh(seed);
        if let Err(msg) = prop(&mut g) {
            let (tape, msg) = shrink(&mut prop, g.recorded, msg);
            panic!(
                "property `{name}` failed (case {case}/{cases}, seed {seed:#x}):\n  {msg}\n  \
                 minimal tape ({} draws): {tape:?}\n  \
                 replay with Gen::replaying(vec!{tape:?})",
                tape.len()
            );
        }
    }
}

/// Minimize a failing tape outside the [`check`] loop — the entry point
/// the corpus stage's divergence shrinker reuses ([`crate::corpus`]).
/// `prop` must return `Err` when the failure of interest reproduces on a
/// candidate tape; the returned tape is the smallest still-failing one
/// found within the shrink budget, with the message of its failure.
pub fn shrink_tape<F>(prop: &mut F, tape: Vec<u64>, msg: String) -> (Vec<u64>, String)
where
    F: FnMut(&mut Gen) -> Result<(), String>,
{
    shrink(prop, tape, msg)
}

/// Re-run `prop` on a candidate tape; `Some((consumed tape, message))` if
/// it still fails.
fn attempt<F>(prop: &mut F, cand: Vec<u64>) -> Option<(Vec<u64>, String)>
where
    F: FnMut(&mut Gen) -> Result<(), String>,
{
    let n = cand.len();
    let mut g = Gen::replaying(cand);
    match prop(&mut g) {
        Err(m) => {
            // Keep only the raws the property consumed; beyond-tape draws
            // were zeros and replay as zeros again, so drop them too.
            let mut used = g.recorded;
            used.truncate(n.min(used.len()));
            Some((used, m))
        }
        Ok(()) => None,
    }
}

/// Minimize a failing tape: repeatedly try truncations, zeroings,
/// halvings and decrements, keeping any mutation that still fails.
/// Bounded work, then return the smallest failure found.
fn shrink<F>(prop: &mut F, mut tape: Vec<u64>, mut msg: String) -> (Vec<u64>, String)
where
    F: FnMut(&mut Gen) -> Result<(), String>,
{
    let mut budget = 2000usize;
    let mut progress = true;
    while progress && budget > 0 {
        progress = false;
        // 1. Truncate: drop the tail (half, then shorter).
        let mut cut = tape.len() / 2;
        while cut > 0 && budget > 0 {
            budget -= 1;
            let cand: Vec<u64> = tape[..tape.len() - cut].to_vec();
            if let Some((t, m)) = attempt(prop, cand) {
                tape = t;
                msg = m;
                progress = true;
                cut = tape.len() / 2;
            } else {
                cut /= 2;
            }
        }
        // 2. Point mutations per position: zero, halve, decrement.
        //    Halving crosses modulo "blocks" of ranged draws; the
        //    decrement then walks to a block's floor.
        for i in 0.. {
            // An accepted attempt may shorten the tape mid-loop.
            if i >= tape.len() {
                break;
            }
            while i < tape.len() && tape[i] != 0 && budget > 0 {
                let old = tape[i];
                let mut advanced = false;
                for cand_v in [0, old / 2, old - 1] {
                    if cand_v >= old {
                        continue;
                    }
                    budget = budget.saturating_sub(1);
                    let mut cand = tape.clone();
                    cand[i] = cand_v;
                    if let Some((t, m)) = attempt(prop, cand) {
                        tape = t;
                        msg = m;
                        progress = true;
                        advanced = true;
                        break;
                    }
                    if budget == 0 {
                        break;
                    }
                }
                if !advanced {
                    break;
                }
            }
        }
    }
    (tape, msg)
}

/// `assert!` for qc properties: returns `Err` instead of panicking so the
/// shrinker can drive re-execution.
#[macro_export]
macro_rules! qc_assert {
    ($cond:expr $(, $($arg:tt)+)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}{}",
                stringify!($cond),
                $crate::qc_detail!($($($arg)+)?)
            ));
        }
    };
}

/// `assert_eq!` for qc properties.
#[macro_export]
macro_rules! qc_assert_eq {
    ($left:expr, $right:expr $(, $($arg:tt)+)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                $crate::qc_detail!($($($arg)+)?)
            ));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! qc_detail {
    () => {
        String::new()
    };
    ($($arg:tt)+) => {
        format!("\n  context: {}", format!($($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check("commutative_add", 200, |g| {
            let a = g.any_i64();
            let b = g.any_i64();
            qc_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
            Ok(())
        });
    }

    #[test]
    fn failing_property_panics_with_minimal_tape() {
        let result = std::panic::catch_unwind(|| {
            check("always_small", 50, |g| {
                let v = g.u64_in(0, 1000);
                qc_assert!(v < 500, "v = {v}");
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("property `always_small` failed"), "{msg}");
        assert!(msg.contains("minimal tape"), "{msg}");
        // Shrinking drives the single drawn raw to the smallest failing
        // value: 500.
        assert!(msg.contains("[500]"), "{msg}");
    }

    #[test]
    fn shrinking_minimizes_vector_lengths() {
        let result = std::panic::catch_unwind(|| {
            check("no_big_vecs", 50, |g| {
                let v = g.vec_of(0, 40, |g| g.u64_in(0, 9));
                qc_assert!(v.len() < 10);
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Minimal counterexample: length raw shrunk to exactly 10,
        // elements all zero (replay beyond tape yields 0).
        assert!(msg.contains("minimal tape (1 draws): [10]"), "{msg}");
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = Vec::new();
        check("stream_probe", 3, |g| {
            a.push(g.any_u64());
            Ok(())
        });
        // `check` takes Fn, so capture through a RefCell-free second pass.
        let mut b = Vec::new();
        check("stream_probe", 3, |g| {
            b.push(g.any_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }

    #[test]
    fn replaying_reproduces_draws() {
        let mut g = Gen::fresh(99);
        let vals = (g.u64_in(0, 100), g.any_i64(), g.bool());
        let tape = g.recorded.clone();
        let mut r = Gen::replaying(tape);
        assert_eq!((r.u64_in(0, 100), r.any_i64(), r.bool()), vals);
    }

    #[test]
    fn exhausted_tape_yields_minimums() {
        let mut g = Gen::replaying(vec![]);
        assert_eq!(g.u64_in(5, 100), 5);
        assert_eq!(g.i64_in(-3, 3), -3);
        assert_eq!(g.any_i64(), 0);
        assert!(!g.bool());
        assert!(g.vec_of(0, 8, |g| g.any_u64()).is_empty());
    }
}
