//! Umbrella crate for the DejaVu reproduction workspace. See README.md.
//!
//! Re-exports the member crates so integration tests and examples can use
//! a single dependency, and hosts [`qc`], the workspace's deterministic
//! property-testing harness (hermetic build: no proptest), and [`corpus`],
//! the trace-corpus CI stage (`dejavu-cli check` / `corpus record`).

pub mod corpus;
pub mod qc;

pub use baselines;
pub use codec;
pub use debugger;
pub use dejavu;
pub use djvm;
pub use fleet;
pub use reflect;
pub use store;
pub use workloads;
