//! corpus — the trace-corpus CI stage.
//!
//! The paper's claim is that a recorded run is a perfectly faithful,
//! re-executable artifact. This module turns that claim into a regression
//! gate: a directory of recorded DJVB traces, each with a sidecar *policy*
//! (canonical JSON) stating what every future build must reproduce —
//! the execution fingerprint and state digest, a trace-size ceiling, a
//! `seek_logical` latency bound in events, and forbidden event sequences.
//! [`check_corpus`] replays the whole corpus and classifies every trace:
//!
//! * **corrupt** — the file or its policy cannot even be decoded
//!   (I/O error, bad magic, CRC mismatch, malformed JSON, unknown
//!   workload). Maps to process exit 1.
//! * **violation** — the trace decodes but the policy does not hold
//!   (divergent replay, drifted fingerprint, oversized trace, slow seek,
//!   forbidden sequence present). Maps to process exit 2. A trace in
//!   `"lenient"` mode downgrades violations to warnings.
//! * **pass** — everything holds. Exit 0 when the whole corpus passes.
//!
//! When a strict trace diverges, [`shrink_divergence`] reuses the
//! [`crate::qc`] tape shrinker to minimize the failing *workload spec*
//! (workload, seed, timer and clock parameters) to a smallest reproducer,
//! reported as a canonical-JSON repro blob (see [`Repro::to_blob`]).

use baselines::TimeTravel;
use codec::Json;
use dejavu::{
    decode_any, encode_trace, record_run, replay_run, BlockFile, DataRec, ExecSpec, SymmetryConfig,
    Trace, TraceFormat,
};
use std::path::Path;

use crate::qc::{shrink_tape, Gen};

/// Block budget the corpus records with: small enough that corpus traces
/// (a few hundred events each) span several blocks, so the seek-latency
/// policy is exercised on real multi-block files.
pub const CORPUS_BLOCK_BUDGET: u32 = 96;

/// The canonical execution environment for corpus traces — shared with
/// `dejavu-cli`'s run-like subcommands so a trace recorded by the CLI and
/// one recorded by [`record_corpus`] have identical fingerprints.
pub fn corpus_spec(w: &workloads::Workload, seed: u64) -> ExecSpec {
    let mut s = ExecSpec::new((w.build)()).with_seed(seed);
    s.timer_base = 211;
    s.timer_jitter = 60;
    s
}

/// Sidecar policy for one corpus trace (`<stem>.policy.json`, canonical
/// JSON, keys sorted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// Registry name of the workload the trace was recorded from.
    pub workload: String,
    /// Seed the trace was recorded under.
    pub seed: u64,
    /// Execution fingerprint replay (and a fresh record) must reproduce.
    pub expected_fingerprint: u64,
    /// Final reachable-state digest replay must reproduce.
    pub expected_state_digest: u64,
    /// Ceiling on the on-disk trace size in bytes.
    pub max_trace_bytes: u64,
    /// Ceiling on `seek_logical` catch-up work, in trace events consumed
    /// (the "one block span" bound; checked only on multi-block traces).
    pub max_seek_events: u64,
    /// Forbidden event-kind sequences, matched as substrings of the
    /// trace's kind string (`'S'` per switch, then `'C'`/`'N'` per data
    /// record, in canonical unified order).
    pub forbid: Vec<String>,
    /// `true` = violations fail the corpus; `false` ("lenient") =
    /// violations are reported as warnings only.
    pub strict: bool,
}

impl Policy {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "expected_fingerprint",
                Json::UInt(self.expected_fingerprint),
            ),
            (
                "expected_state_digest",
                Json::UInt(self.expected_state_digest),
            ),
            (
                "forbid",
                Json::Arr(self.forbid.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            ("max_seek_events", Json::UInt(self.max_seek_events)),
            ("max_trace_bytes", Json::UInt(self.max_trace_bytes)),
            (
                "mode",
                Json::Str(if self.strict { "strict" } else { "lenient" }.into()),
            ),
            ("seed", Json::UInt(self.seed)),
            ("workload", Json::Str(self.workload.clone())),
        ])
    }

    /// Canonical serialized form (what [`record_corpus`] writes).
    pub fn to_canonical_string(&self) -> String {
        let mut j = self.to_json();
        j.canonicalize();
        j.to_canonical_string()
    }

    /// Parse a policy file's text. Any schema problem is a `corrupt`-class
    /// error (the policy is part of the artifact).
    pub fn parse(text: &str) -> Result<Policy, String> {
        let j = Json::parse(text.trim()).map_err(|e| format!("policy is not valid JSON: {e}"))?;
        let field_u64 = |k: &str| -> Result<u64, String> {
            j.field(k)
                .and_then(|v| v.as_u64())
                .map_err(|e| format!("policy field `{k}`: {e}"))
        };
        let mode = j
            .field("mode")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("policy field `mode`: {e}"))?;
        let strict = match mode {
            "strict" => true,
            "lenient" => false,
            other => return Err(format!("policy mode must be strict|lenient, got {other:?}")),
        };
        let forbid = j
            .field("forbid")
            .and_then(|v| v.as_arr())
            .map_err(|e| format!("policy field `forbid`: {e}"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .map_err(|e| format!("policy forbid entry: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Policy {
            workload: j
                .field("workload")
                .and_then(|v| v.as_str())
                .map_err(|e| format!("policy field `workload`: {e}"))?
                .to_owned(),
            seed: field_u64("seed")?,
            expected_fingerprint: field_u64("expected_fingerprint")?,
            expected_state_digest: field_u64("expected_state_digest")?,
            max_trace_bytes: field_u64("max_trace_bytes")?,
            max_seek_events: field_u64("max_seek_events")?,
            forbid,
            strict,
        })
    }
}

/// The trace's event kinds in canonical unified order — the string the
/// `forbid` patterns match against.
pub fn kind_string(trace: &Trace) -> String {
    let mut s = String::with_capacity(trace.switches.len() + trace.data.len());
    for _ in &trace.switches {
        s.push('S');
    }
    for d in &trace.data {
        s.push(match d {
            DataRec::Clock(_) => 'C',
            DataRec::Native { .. } => 'N',
        });
    }
    s
}

/// Outcome of checking one corpus trace against its policy.
#[derive(Debug, Clone)]
pub struct TraceCheck {
    /// File stem (`<stem>.djvb`).
    pub name: String,
    /// `Some` when the artifact itself could not be decoded — I/O error,
    /// bad magic/CRC, malformed policy, unknown workload (exit class 1).
    pub corrupt: Option<String>,
    /// Strict-mode policy violations (exit class 2).
    pub violations: Vec<String>,
    /// Lenient-mode violations, reported but not failing.
    pub warnings: Vec<String>,
    /// `true` when a violation (strict or lenient) was a replay
    /// divergence — the trigger for [`shrink_divergence`].
    pub diverged: bool,
    /// Decoded event count (0 when corrupt).
    pub events: u64,
    /// On-disk size in bytes (0 when unreadable).
    pub bytes: u64,
    /// Events consumed by the backward `seek_logical` probe (`None` when
    /// the trace has fewer than two blocks or was corrupt).
    pub seek_events: Option<u64>,
    /// Wall-clock milliseconds the whole check of this trace took.
    pub check_ms: u128,
}

impl TraceCheck {
    pub fn passed(&self) -> bool {
        self.corrupt.is_none() && self.violations.is_empty()
    }

    fn corrupt(name: &str, msg: String) -> Self {
        TraceCheck {
            name: name.to_owned(),
            corrupt: Some(msg),
            violations: Vec::new(),
            warnings: Vec::new(),
            diverged: false,
            events: 0,
            bytes: 0,
            seek_events: None,
            check_ms: 0,
        }
    }
}

/// Whole-corpus result: one [`TraceCheck`] per `.djvb`, in name order.
#[derive(Debug, Clone, Default)]
pub struct CorpusReport {
    pub checks: Vec<TraceCheck>,
}

impl CorpusReport {
    /// The CLI exit-code contract: 0 all pass, 1 any corrupt artifact
    /// (and no violation), 2 any strict policy violation / divergence.
    /// Violations outrank corruption: a corpus with both has a
    /// determinism failure, which is the severer finding.
    pub fn exit_class(&self) -> u8 {
        if self.checks.iter().any(|c| !c.violations.is_empty()) {
            2
        } else if self.checks.iter().any(|c| c.corrupt.is_some()) {
            1
        } else {
            0
        }
    }

    pub fn passed(&self) -> usize {
        self.checks.iter().filter(|c| c.passed()).count()
    }
}

/// Check one trace's bytes against its policy. Pure in-memory core of
/// [`check_corpus`], shared with the injection tests.
pub fn check_trace(name: &str, bytes: &[u8], policy: &Policy) -> TraceCheck {
    let t0 = std::time::Instant::now();
    let mut check = TraceCheck {
        name: name.to_owned(),
        corrupt: None,
        violations: Vec::new(),
        warnings: Vec::new(),
        diverged: false,
        events: 0,
        bytes: bytes.len() as u64,
        seek_events: None,
        check_ms: 0,
    };
    // Decode failures are corruption, not policy violations: the artifact
    // itself is damaged.
    let (trace, format) = match decode_any(bytes) {
        Ok(x) => x,
        Err(e) => return TraceCheck::corrupt(name, e.to_string()),
    };
    check.events = (trace.switches.len() + trace.data.len()) as u64;
    let Some(w) = workloads::registry()
        .into_iter()
        .find(|w| w.name == policy.workload)
    else {
        return TraceCheck::corrupt(
            name,
            format!("policy names unknown workload {:?}", policy.workload),
        );
    };

    let violation = |check: &mut TraceCheck, msg: String| {
        if policy.strict {
            check.violations.push(msg);
        } else {
            check.warnings.push(msg);
        }
    };

    // 1. Size ceiling.
    if check.bytes > policy.max_trace_bytes {
        let msg = format!(
            "trace is {} bytes, policy ceiling {}",
            check.bytes, policy.max_trace_bytes
        );
        violation(&mut check, msg);
    }
    // 2. Forbidden event sequences.
    let kinds = kind_string(&trace);
    for pat in &policy.forbid {
        if !pat.is_empty() && kinds.contains(pat.as_str()) {
            violation(
                &mut check,
                format!("forbidden event sequence {pat:?} present"),
            );
        }
    }
    // 3. Replay the recorded trace; it must be accurate and reproduce the
    //    policy's fingerprint and state digest.
    let spec = corpus_spec(&w, policy.seed);
    let (rep, desyncs) = replay_run(&spec, trace.clone(), SymmetryConfig::full());
    if !desyncs.is_empty() {
        check.diverged = true;
        violation(
            &mut check,
            format!("replay desynchronized: {}", desyncs[0].describe()),
        );
    }
    if rep.fingerprint != policy.expected_fingerprint {
        check.diverged = true;
        violation(
            &mut check,
            format!(
                "replay fingerprint {:016x} != expected {:016x}",
                rep.fingerprint, policy.expected_fingerprint
            ),
        );
    }
    if rep.state_digest != policy.expected_state_digest {
        check.diverged = true;
        violation(
            &mut check,
            format!(
                "replay state digest {:016x} != expected {:016x}",
                rep.state_digest, policy.expected_state_digest
            ),
        );
    }
    // 4. A *fresh* record of the same spec must still produce the
    //    expected fingerprint — the "no silent determinism drift" gate
    //    every future PR runs against.
    let (rec, _) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
    if rec.fingerprint != policy.expected_fingerprint {
        check.diverged = true;
        violation(
            &mut check,
            format!(
                "fresh record fingerprint {:016x} != expected {:016x} (recorder drifted)",
                rec.fingerprint, policy.expected_fingerprint
            ),
        );
    }
    // 5. Seek-latency bound, multi-block traces only: after running to
    //    the end (populating boundary checkpoints), a backward seek into
    //    the middle must consume at most `max_seek_events` trace events.
    if format == TraceFormat::Block {
        if let Ok(bf) = BlockFile::parse(bytes.to_vec()) {
            if let Some(events) = seek_probe(&spec, &bf, &trace) {
                check.seek_events = Some(events);
                if events > policy.max_seek_events {
                    violation(
                        &mut check,
                        format!(
                            "seek_logical replayed {events} events, policy ceiling {}",
                            policy.max_seek_events
                        ),
                    );
                }
            }
        }
    }
    check.check_ms = t0.elapsed().as_millis();
    check
}

/// Boot a replay VM for the seek probe (mirrors the driver's replay
/// environment: seeded timer, deterministic cycle clock).
fn replay_vm(spec: &ExecSpec) -> djvm::Vm {
    djvm::Vm::boot(
        std::sync::Arc::clone(&spec.program),
        spec.vm.clone(),
        Box::new(djvm::JitteredTimer::new(
            spec.seed,
            spec.timer_base,
            spec.timer_jitter,
        )),
        Box::new(djvm::CycleClock::new(spec.clock_origin, spec.cycles_per_ms)),
    )
    .expect("corpus workload boots")
}

/// Run to the last block boundary (taking boundary checkpoints), then
/// seek backward to just past the middle boundary; the returned number is
/// the trace events consumed catching up — bounded by one block span when
/// the checkpoint index works. `None` for traces under two blocks.
fn seek_probe(spec: &ExecSpec, bf: &BlockFile, trace: &Trace) -> Option<u64> {
    let bounds = bf.boundaries();
    if bounds.len() < 2 {
        return None;
    }
    let mut tt = TimeTravel::new_indexed(
        replay_vm(spec),
        trace.clone(),
        SymmetryConfig::full(),
        // Step-cadence checkpoints off: only boundary checkpoints, so the
        // probe measures exactly what the block index buys.
        u64::MAX,
        bounds.clone(),
    );
    tt.seek_logical(*bounds.last().unwrap());
    let mid = bounds[bounds.len() / 2];
    Some(tt.seek_logical(mid + 1).events_replayed)
}

/// Check every `<stem>.djvb` + `<stem>.policy.json` pair under `dir`
/// (sorted by name). `Err` only for directory-level I/O problems or an
/// empty corpus — both exit class 1 at the CLI.
pub fn check_corpus(dir: &Path) -> Result<CorpusReport, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read corpus dir {dir:?}: {e}"))?;
    let mut stems: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read corpus dir {dir:?}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(stem) = name.strip_suffix(".djvb") {
            stems.push(stem.to_owned());
        }
    }
    if stems.is_empty() {
        return Err(format!("no .djvb traces under {dir:?}"));
    }
    stems.sort_unstable();
    let mut report = CorpusReport::default();
    for stem in stems {
        let trace_path = dir.join(format!("{stem}.djvb"));
        let policy_path = dir.join(format!("{stem}.policy.json"));
        let policy_text = match std::fs::read_to_string(&policy_path) {
            Ok(t) => t,
            Err(e) => {
                report
                    .checks
                    .push(TraceCheck::corrupt(&stem, format!("missing policy: {e}")));
                continue;
            }
        };
        let policy = match Policy::parse(&policy_text) {
            Ok(p) => p,
            Err(e) => {
                report.checks.push(TraceCheck::corrupt(&stem, e));
                continue;
            }
        };
        let bytes = match std::fs::read(&trace_path) {
            Ok(b) => b,
            Err(e) => {
                report
                    .checks
                    .push(TraceCheck::corrupt(&stem, format!("read trace: {e}")));
                continue;
            }
        };
        report.checks.push(check_trace(&stem, &bytes, &policy));
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// The fixed corpus manifest: `(workload, seed, strict)`. Twelve traces
/// over seven scenarios — the five stress scenarios at two seeds each,
/// plus one racy and one native server workload. `racy_counter` rides in
/// lenient mode so the corpus permanently exercises the warning path.
pub const MANIFEST: &[(&str, u64, bool)] = &[
    ("lock_convoy", 1, true),
    ("lock_convoy", 7, true),
    ("gc_pressure", 1, true),
    ("gc_pressure", 7, true),
    ("native_heavy", 1, true),
    ("native_heavy", 7, true),
    ("clock_spin", 1, true),
    ("clock_spin", 7, true),
    ("recursion_storm", 1, true),
    ("recursion_storm", 7, true),
    ("racy_counter", 3, false),
    ("server_loop", 5, true),
];

/// Record the full manifest into `dir`, writing `<name>_s<seed>.djvb`
/// plus its policy. Every policy is derived from the recording itself:
/// measured fingerprint/digest, measured seek cost ×2, measured size
/// +25%+64. Returns the written stems. Deterministic byte-for-byte: all
/// non-determinism sources are seeded, so re-recording an unchanged
/// platform reproduces the committed corpus exactly.
pub fn record_corpus(dir: &Path) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
    let mut stems = Vec::new();
    for &(name, seed, strict) in MANIFEST {
        let w = workloads::registry()
            .into_iter()
            .find(|w| w.name == name)
            .ok_or_else(|| format!("manifest names unknown workload {name:?}"))?;
        let spec = corpus_spec(&w, seed);
        let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);
        // Refuse to publish a trace that does not replay accurately.
        let (rep, desyncs) = replay_run(&spec, trace.clone(), SymmetryConfig::full());
        if !rec.matches(&rep) || !desyncs.is_empty() {
            return Err(format!(
                "{name} seed {seed}: recorded trace does not replay"
            ));
        }
        let bytes = encode_trace(&trace, TraceFormat::Block, CORPUS_BLOCK_BUDGET);
        let bf = BlockFile::parse(bytes.clone()).map_err(|e| format!("{name}: {e}"))?;
        let measured_seek = seek_probe(&spec, &bf, &trace);
        // Forbid natives outright in traces of native-free workloads; in
        // native workloads, pin the canonical unified order instead (a
        // data record before a switch can never appear).
        let forbid = if w.native {
            vec!["CS".to_owned(), "NS".to_owned()]
        } else {
            vec!["N".to_owned()]
        };
        let events = (trace.switches.len() + trace.data.len()) as u64;
        let policy = Policy {
            workload: name.to_owned(),
            seed,
            expected_fingerprint: rec.fingerprint,
            expected_state_digest: rec.state_digest,
            max_trace_bytes: bytes.len() as u64 + bytes.len() as u64 / 4 + 64,
            max_seek_events: measured_seek.map_or(events, |e| e * 2 + 16),
            forbid,
            strict,
        };
        let stem = format!("{name}_s{seed}");
        std::fs::write(dir.join(format!("{stem}.djvb")), &bytes)
            .map_err(|e| format!("write {stem}.djvb: {e}"))?;
        let mut text = policy.to_canonical_string();
        text.push('\n');
        std::fs::write(dir.join(format!("{stem}.policy.json")), text)
            .map_err(|e| format!("write {stem}.policy.json: {e}"))?;
        stems.push(stem);
    }
    Ok(stems)
}

// ---------------------------------------------------------------------------
// Divergence shrinking
// ---------------------------------------------------------------------------

/// A workload spec in shrinkable form: everything that selects one
/// record/replay experiment, drawable from a qc [`Gen`] tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproSpec {
    pub workload: String,
    pub seed: u64,
    pub timer_base: u64,
    pub timer_jitter: u64,
    pub clock_noise: i64,
}

/// Draw ranges: tape entries are offsets from each range's floor, so the
/// qc shrinker drives every parameter toward its minimum.
const SEED_MAX: u64 = 1_000;
const TIMER_BASE_MIN: u64 = 40;
const TIMER_BASE_MAX: u64 = 400;
const TIMER_JITTER_MAX: u64 = 120;
const CLOCK_NOISE_MAX: i64 = 8;

impl ReproSpec {
    /// Draw a spec from a generator (the qc property's input).
    pub fn draw(g: &mut Gen) -> ReproSpec {
        let names: Vec<_> = workloads::registry().iter().map(|w| w.name).collect();
        let idx = g.usize_in(0, names.len() - 1);
        ReproSpec {
            workload: names[idx].to_owned(),
            seed: g.u64_in(0, SEED_MAX),
            timer_base: g.u64_in(TIMER_BASE_MIN, TIMER_BASE_MAX),
            timer_jitter: g.u64_in(0, TIMER_JITTER_MAX),
            clock_noise: g.i64_in(0, CLOCK_NOISE_MAX),
        }
    }

    /// The canonical tape that replays to exactly this spec — the shrink
    /// starting point for a corpus failure (whose spec is known, not
    /// drawn). Inverse of [`ReproSpec::draw`].
    pub fn tape(&self) -> Option<Vec<u64>> {
        let idx = workloads::registry()
            .iter()
            .position(|w| w.name == self.workload)? as u64;
        Some(vec![
            idx,
            self.seed.min(SEED_MAX),
            self.timer_base.clamp(TIMER_BASE_MIN, TIMER_BASE_MAX) - TIMER_BASE_MIN,
            self.timer_jitter.min(TIMER_JITTER_MAX),
            self.clock_noise.clamp(0, CLOCK_NOISE_MAX) as u64,
        ])
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("clock_noise", Json::Int(self.clock_noise)),
            ("seed", Json::UInt(self.seed)),
            ("timer_base", Json::UInt(self.timer_base)),
            ("timer_jitter", Json::UInt(self.timer_jitter)),
            ("workload", Json::Str(self.workload.clone())),
        ])
    }

    fn exec_spec(&self, w: &workloads::Workload) -> ExecSpec {
        let mut spec = corpus_spec(w, self.seed);
        spec.timer_base = self.timer_base;
        spec.timer_jitter = self.timer_jitter;
        spec.clock_noise = self.clock_noise;
        spec
    }
}

/// Record-then-replay the spec under `sym`; `Err` describes the
/// divergence (the qc property the shrinker re-runs).
pub fn run_repro(spec: &ReproSpec, sym: SymmetryConfig) -> Result<(), String> {
    let Some(w) = workloads::registry()
        .into_iter()
        .find(|w| w.name == spec.workload)
    else {
        // An undrawable workload cannot diverge; treat as passing so the
        // shrinker never walks out of the registry.
        return Ok(());
    };
    let exec = spec.exec_spec(&w);
    let (rec, trace) = record_run(&exec, w.natives, sym, true);
    let (rep, desyncs) = replay_run(&exec, trace, sym);
    if rec.matches(&rep) && desyncs.is_empty() {
        return Ok(());
    }
    Err(format!(
        "diverged: record fp {:016x} vs replay fp {:016x}, {} desyncs",
        rec.fingerprint,
        rep.fingerprint,
        desyncs.len()
    ))
}

/// A minimized divergence reproducer.
#[derive(Debug, Clone)]
pub struct Repro {
    pub spec: ReproSpec,
    /// The minimal qc tape (replayable with `Gen::replaying`).
    pub tape: Vec<u64>,
    /// The divergence message of the minimal spec.
    pub msg: String,
}

impl Repro {
    /// The canonical-JSON repro blob `dejavu-cli check` prints: the
    /// smallest still-diverging spec plus its tape and failure.
    pub fn to_blob(&self) -> String {
        let mut j = Json::obj(vec![
            ("divergence", Json::Str(self.msg.clone())),
            ("spec", self.spec.to_json()),
            (
                "tape",
                Json::Arr(self.tape.iter().map(|&v| Json::UInt(v)).collect()),
            ),
        ]);
        j.canonicalize();
        j.to_canonical_string()
    }
}

/// Minimize a diverging workload spec under `sym` with the qc tape
/// shrinker. Returns `None` when `start` does not actually diverge (the
/// shrinker needs a failing starting point). Cost: up to the qc shrink
/// budget (2000) record/replay runs — the expensive path runs only on an
/// already-failing corpus.
pub fn shrink_divergence(start: &ReproSpec, sym: SymmetryConfig) -> Option<Repro> {
    let tape = start.tape()?;
    let mut prop = move |g: &mut Gen| {
        let spec = ReproSpec::draw(g);
        run_repro(&spec, sym)
    };
    // Confirm the starting point fails under the *drawn* form (the draw
    // clamps out-of-range parameters).
    let mut g = Gen::replaying(tape.clone());
    let msg = match prop(&mut g) {
        Err(m) => m,
        Ok(()) => return None,
    };
    let (min_tape, msg) = shrink_tape(&mut prop, tape, msg);
    let mut g = Gen::replaying(min_tape.clone());
    let spec = ReproSpec::draw(&mut g);
    Some(Repro {
        spec,
        tape: min_tape,
        msg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_round_trips_canonically() {
        let p = Policy {
            workload: "clock_spin".into(),
            seed: 7,
            expected_fingerprint: 0xDEAD_BEEF,
            expected_state_digest: 42,
            max_trace_bytes: 9000,
            max_seek_events: 512,
            forbid: vec!["N".into()],
            strict: true,
        };
        let text = p.to_canonical_string();
        let q = Policy::parse(&text).unwrap();
        assert_eq!(p, q);
        // Canonical: parsing + re-serializing is the identity.
        assert_eq!(q.to_canonical_string(), text);
    }

    #[test]
    fn policy_rejects_bad_mode_and_missing_fields() {
        let p = Policy {
            workload: "x".into(),
            seed: 0,
            expected_fingerprint: 0,
            expected_state_digest: 0,
            max_trace_bytes: 0,
            max_seek_events: 0,
            forbid: vec![],
            strict: true,
        };
        let bad_mode = p.to_canonical_string().replace("strict", "chaotic");
        assert!(Policy::parse(&bad_mode).is_err());
        assert!(Policy::parse("{}").is_err());
        assert!(Policy::parse("not json").is_err());
    }

    #[test]
    fn repro_tape_round_trips() {
        let spec = ReproSpec {
            workload: "clock_spin".into(),
            seed: 7,
            timer_base: 211,
            timer_jitter: 60,
            clock_noise: 3,
        };
        let tape = spec.tape().unwrap();
        let mut g = Gen::replaying(tape);
        assert_eq!(ReproSpec::draw(&mut g), spec);
    }

    #[test]
    fn kind_string_orders_switches_first() {
        let trace = Trace {
            paranoid: false,
            switches: vec![dejavu::SwitchRec {
                nyp: 3,
                check_tid: u32::MAX,
            }],
            data: vec![
                DataRec::Clock(5),
                DataRec::Native {
                    ret: 1,
                    callbacks: vec![],
                },
            ],
        };
        assert_eq!(kind_string(&trace), "SCN");
    }
}
