//! Baseline-scheme experiments: the E5 trace-size ordering, E7 replay
//! costs, and E14 checkpoint time travel — the quantified versions of the
//! paper's §5 qualitative claims.

use baselines::{
    ir_record, ir_replay, rc_record, rc_replay, readlog_record, readlog_replay,
    trace_size_comparison, TimeTravel,
};
use dejavu::{ExecSpec, SymmetryConfig};
use djvm::{Vm, VmStatus};

fn spec(name: &str, seed: u64) -> (ExecSpec, fn(&mut Vm)) {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("no workload {name}"));
    let mut s = ExecSpec::new((w.build)()).with_seed(seed);
    s.timer_base = 53;
    s.timer_jitter = 19;
    (s, w.natives)
}

#[test]
fn e5_trace_size_ordering_holds_across_workloads() {
    // The paper's claim: DejaVu's switch-only trace is far smaller than
    // schemes that capture critical events; content logging is the worst.
    // A realistic preemption quantum (thousands of instructions, vs the
    // paper's ~10ms timer) — the stress tests elsewhere use absurdly short
    // quanta to exercise replay, which would skew a size comparison.
    for name in [
        "racy_counter",
        "producer_consumer",
        "gc_churn",
        "bank_transfer",
    ] {
        let (mut s, natives) = spec(name, 5);
        s.timer_base = 2001;
        s.timer_jitter = 500;
        let row = trace_size_comparison(name, &s, natives);
        assert!(
            row.dejavu_bytes < row.rc_bytes,
            "{name}: dejavu {} !< rc {}",
            row.dejavu_bytes,
            row.rc_bytes
        );
        assert!(
            row.rc_bytes < row.ir_bytes,
            "{name}: rc {} !< ir {}",
            row.rc_bytes,
            row.ir_bytes
        );
        // Content logging and access logging are both an order of magnitude
        // beyond DejaVu's switch-only trace. (Their order relative to each
        // other depends on the read/write mix; IR additionally logs every
        // write and synchronization operation, so its *event count* always
        // dominates the read log's.)
        assert!(row.readlog_bytes > row.dejavu_bytes * 10, "{name}: {row:?}");
        assert!(row.ir_bytes > row.dejavu_bytes * 10, "{name}: {row:?}");
        assert!(
            row.ir_accesses > row.readlog_reads,
            "{name}: accesses {} !> reads {}",
            row.ir_accesses,
            row.readlog_reads
        );
    }
}

#[test]
fn e5_dejavu_logs_no_deterministic_switches() {
    // RC logs every dispatch; DejaVu logs only preemptive ones. On a
    // synchronization-heavy workload the difference is dramatic.
    let (mut s, natives) = spec("producer_consumer", 3);
    s.timer_base = 2001;
    s.timer_jitter = 500;
    let row = trace_size_comparison("producer_consumer", &s, natives);
    assert!(
        row.rc_dispatches > row.dejavu_switches,
        "dispatches {} vs preemptive switches {}",
        row.rc_dispatches,
        row.dejavu_switches
    );
    assert!(
        row.rc_bytes as f64 > row.dejavu_bytes as f64 * 1.5,
        "rc {} vs dejavu {} bytes",
        row.rc_bytes,
        row.dejavu_bytes
    );
}

#[test]
fn e7_rc_replay_reproduces_output_but_pays_mapping_lookups() {
    for seed in [1u64, 9] {
        let (s, natives) = spec("racy_counter", seed);
        let (rec, trace) = rc_record(&s, natives);
        let dispatches = trace.dispatches.len() as u64;
        let (rep, lookups, mismatches) = rc_replay(&s, trace);
        assert_eq!(rec.output, rep.output, "seed {seed}");
        assert_eq!(rec.status, rep.status);
        assert_eq!(mismatches, 0, "seed {seed}");
        // the cost DejaVu avoids: one map lookup per dispatch
        assert!(lookups >= dispatches, "lookups {lookups} < {dispatches}");
    }
}

#[test]
fn e7_instant_replay_reproduces_shared_data_via_access_order() {
    for seed in [2u64, 8] {
        let (s, natives) = spec("racy_counter", seed);
        let (rec, trace) = ir_record(&s, natives);
        assert!(!trace.accesses.is_empty());
        let (rep, _delays, violations) = ir_replay(&s, trace);
        assert_eq!(
            rec.output, rep.output,
            "seed {seed}: CREW order must reproduce the racy result"
        );
        assert_eq!(rep.status, VmStatus::Halted);
        assert_eq!(violations, 0, "seed {seed}");
    }
}

#[test]
fn e7_instant_replay_handles_monitor_workloads() {
    let (s, natives) = spec("producer_consumer", 4);
    let (rec, trace) = ir_record(&s, natives);
    let (rep, delays, violations) = ir_replay(&s, trace);
    assert_eq!(rec.output, rep.output);
    assert_eq!(violations, 0);
    // enforcement usually has to delay someone at least once
    let _ = delays;
}

#[test]
fn e7_readlog_reproduces_thread_dataflow() {
    let (s, natives) = spec("racy_counter", 6);
    let (rec, trace) = readlog_record(&s, natives);
    assert!(trace.total_reads() > 100);
    let (rep, substituted, _underruns) = readlog_replay(&s, trace);
    assert!(substituted > 0);
    // Per-thread dataflow determinism: the racy final value is pinned by
    // the substituted reads even though scheduling differs.
    assert_eq!(rec.output, rep.output);
}

#[test]
fn e14_time_travel_seeks_backward_and_forward() {
    let (s, natives) = spec("racy_counter", 11);
    let (rec, trace) = dejavu::record_run(&s, natives, SymmetryConfig::full(), true);

    let vm = djvm::Vm::boot(
        std::sync::Arc::clone(&s.program),
        s.vm.clone(),
        Box::new(djvm::FixedTimer::new(1_000_000)),
        Box::new(djvm::CycleClock::new(s.clock_origin, s.cycles_per_ms)),
    )
    .unwrap();
    let mut tt = TimeTravel::new(vm, trace, SymmetryConfig::full(), 2_000);

    // Forward to the middle.
    tt.seek(10_000);
    assert_eq!(tt.step, 10_000);
    let digest_mid = tt.vm().state_digest();

    // Onward to completion.
    while tt.status().is_running() {
        tt.advance(5_000);
    }
    assert_eq!(tt.vm().output, rec.output, "time-travel replay is accurate");

    // Backward to the very same middle step: state must be identical.
    tt.seek(10_000);
    assert_eq!(tt.step, 10_000);
    assert_eq!(
        tt.vm().state_digest(),
        digest_mid,
        "reverse execution lands on the same state"
    );
    assert!(tt.restores >= 1);
    assert!(tt.storage_bytes() > 0);

    // And forward again to completion with identical output.
    while tt.status().is_running() {
        tt.advance(5_000);
    }
    assert_eq!(tt.vm().output, rec.output);
}

#[test]
fn e14_checkpoint_interval_tradeoff() {
    let (s, natives) = spec("racy_counter", 13);
    let (_rec, trace) = dejavu::record_run(&s, natives, SymmetryConfig::full(), false);
    let boot = || {
        djvm::Vm::boot(
            std::sync::Arc::clone(&s.program),
            s.vm.clone(),
            Box::new(djvm::FixedTimer::new(1_000_000)),
            Box::new(djvm::CycleClock::new(s.clock_origin, s.cycles_per_ms)),
        )
        .unwrap()
    };
    // Denser checkpoints => more storage, less re-execution on seek.
    let mut dense = TimeTravel::new(boot(), trace.clone(), SymmetryConfig::full(), 1_000);
    dense.seek(20_000);
    dense.seek(10_500);
    let dense_storage = dense.storage_bytes();
    let dense_reexec = dense.reexecuted;

    let mut sparse = TimeTravel::new(boot(), trace, SymmetryConfig::full(), 10_000);
    sparse.seek(20_000);
    sparse.seek(10_500);
    assert!(dense_storage > sparse.storage_bytes());
    assert!(dense_reexec <= sparse.reexecuted);
}
