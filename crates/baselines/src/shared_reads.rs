//! Recap / PPD-style content logging (paper §5): capture "the effect of
//! every read of shared memory locations, which is quite expensive."
//!
//! Record logs, per thread, the value of every heap read (fields, statics,
//! array elements). Replay substitutes the logged values back, making each
//! thread's dataflow deterministic regardless of how the scheduler
//! interleaves them — the per-process replay model of Recap. The price is
//! the largest trace of any scheme in the comparison (E5), typically an
//! order of magnitude beyond even Instant Replay's per-access records.

use dejavu::trace::{DataRec, Trace};
use djvm::hook::{ExecHook, YieldAction};
use djvm::vm::Vm;
use djvm::{NativeId, NativeOutcome, Tid, Word};
use std::collections::{BTreeMap, VecDeque};

/// Per-thread read-value logs plus the shared data stream.
#[derive(Debug, Clone, Default)]
pub struct ReadTrace {
    pub reads: BTreeMap<Tid, Vec<i64>>,
    pub data: Vec<DataRec>,
}

impl ReadTrace {
    pub fn total_reads(&self) -> usize {
        self.reads.values().map(Vec::len).sum()
    }

    /// Encoded size. Content logs store raw word values (Recap captured
    /// "the effect of every read" at memory-word granularity; arbitrary
    /// word values do not varint-compress in general), so each read costs a
    /// full 8-byte word.
    pub fn encoded_len(&self) -> usize {
        fn varint_len(mut v: u64) -> usize {
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        }
        let mut total = 5;
        for (tid, vals) in &self.reads {
            total += varint_len(*tid as u64) + varint_len(vals.len() as u64);
            total += vals.len() * 8;
        }
        let data = Trace {
            paranoid: false,
            switches: vec![],
            data: self.data.clone(),
        };
        total + data.encoded().len() - 5
    }
}

/// Record mode: passthrough scheduling, log every read's value.
pub struct ReadLogRecorder {
    pub trace: ReadTrace,
}

impl ReadLogRecorder {
    pub fn new() -> Self {
        Self {
            trace: ReadTrace::default(),
        }
    }

    pub fn into_trace(self) -> ReadTrace {
        self.trace
    }
}

impl Default for ReadLogRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecHook for ReadLogRecorder {
    fn on_yield_point(&mut self, vm: &mut Vm) -> YieldAction {
        if vm.preempt_bit {
            vm.preempt_bit = false;
            YieldAction::switch()
        } else {
            YieldAction::NONE
        }
    }

    fn on_shared_read_value(&mut self, vm: &mut Vm, v: Word, is_ref: bool) -> Word {
        if !is_ref {
            self.trace
                .reads
                .entry(vm.sched.current)
                .or_default()
                .push(v as i64);
        }
        v
    }

    fn on_clock_read(&mut self, vm: &mut Vm) -> i64 {
        let v = vm.read_live_clock();
        self.trace.data.push(DataRec::Clock(v));
        v
    }

    fn on_native_call(&mut self, vm: &mut Vm, native: NativeId, args: &[i64]) -> NativeOutcome {
        let out = vm.call_native_live(native, args);
        self.trace.data.push(DataRec::Native {
            ret: out.ret,
            callbacks: out
                .callbacks
                .iter()
                .map(|c| (c.method, c.args.clone()))
                .collect(),
        });
        out
    }

    fn mode_name(&self) -> &'static str {
        "read-log-record"
    }
}

/// Replay mode: substitute each thread's logged read values, overriding
/// whatever the heap currently holds.
///
/// **Caution**: substituted reads only pin down *values*, not object
/// identity — so this scheme (like Recap) only replays workloads whose
/// control flow depends on read values, and reference reads are passed
/// through untouched (references are addresses, which the scheme cannot
/// substitute safely across runs).
pub struct ReadLogReplayer {
    reads: BTreeMap<Tid, VecDeque<i64>>,
    data: VecDeque<DataRec>,
    pub substituted: u64,
    pub underruns: u64,
}

impl ReadLogReplayer {
    pub fn new(trace: ReadTrace) -> Self {
        Self {
            reads: trace
                .reads
                .into_iter()
                .map(|(t, v)| (t, v.into()))
                .collect(),
            data: trace.data.into(),
            substituted: 0,
            underruns: 0,
        }
    }
}

impl ExecHook for ReadLogReplayer {
    fn on_yield_point(&mut self, _vm: &mut Vm) -> YieldAction {
        YieldAction::NONE // scheduling is irrelevant to per-thread dataflow
    }

    fn on_shared_read_value(&mut self, vm: &mut Vm, v: Word, is_ref: bool) -> Word {
        if is_ref {
            // Reference reads pass through: addresses cannot be substituted
            // across runs (see type docs).
            return v;
        }
        match self
            .reads
            .get_mut(&vm.sched.current)
            .and_then(VecDeque::pop_front)
        {
            Some(logged) => {
                self.substituted += 1;
                logged as Word
            }
            None => {
                self.underruns += 1;
                v
            }
        }
    }

    fn on_clock_read(&mut self, _vm: &mut Vm) -> i64 {
        match self.data.pop_front() {
            Some(DataRec::Clock(v)) => v,
            _ => 0,
        }
    }

    fn on_native_call(&mut self, _vm: &mut Vm, _native: NativeId, _args: &[i64]) -> NativeOutcome {
        match self.data.pop_front() {
            Some(DataRec::Native { ret, callbacks }) => NativeOutcome {
                ret,
                callbacks: callbacks
                    .into_iter()
                    .map(|(method, args)| djvm::CallbackReq { method, args })
                    .collect(),
            },
            _ => NativeOutcome::value(0),
        }
    }

    fn mode_name(&self) -> &'static str {
        "read-log-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_len_scales_with_reads() {
        let mut t = ReadTrace::default();
        let base = t.encoded_len();
        t.reads.entry(0).or_default().extend([1i64; 100]);
        let with = t.encoded_len();
        assert!(with >= base + 800, "eight bytes per read");
    }
}
