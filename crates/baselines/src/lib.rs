//! # baselines — the replay schemes DejaVu is compared against (paper §5)
//!
//! Every scheme is implemented against the same `djvm` substrate and the
//! same hook seams, so the comparison isolates *what is logged*:
//!
//! | Scheme | Logs | Module |
//! |---|---|---|
//! | **DejaVu** (crate `dejavu`) | preemptive switches (`nyp` deltas) + non-deterministic data | — |
//! | Russinovich–Cogswell | *every* dispatch + thread-id mapping at replay | [`thread_map`] |
//! | Instant Replay (CREW) | every shared-object access (object, version) | [`instant_replay`] |
//! | Recap / PPD | the *value* of every shared read | [`shared_reads`] |
//! | Igor / Boothe | periodic full-state checkpoints (time travel) | [`checkpoint`] |
//!
//! [`trace_size_comparison`] produces the E5 table row for a workload;
//! the `rc_record_replay` / `ir_record_replay` / `readlog_record_replay`
//! helpers run full record→replay cycles for accuracy and overhead
//! measurements (E7).

pub mod checkpoint;
pub mod instant_replay;
pub mod shared_reads;
pub mod thread_map;

use dejavu::{ExecSpec, SymmetryConfig};
use djvm::hook::ExecHook;
use djvm::{interp, Vm, VmStatus};
use std::time::{Duration, Instant};

pub use checkpoint::{SeekStats, TimeTravel};
pub use instant_replay::{IrRecorder, IrReplayer, IrTrace};
pub use shared_reads::{ReadLogRecorder, ReadLogReplayer, ReadTrace};
pub use thread_map::{RcRecorder, RcReplayer, RcTrace};

/// Outcome of a baseline run (weaker observables than
/// [`dejavu::RunReport`], matching each scheme's weaker guarantees).
#[derive(Debug, Clone)]
pub struct BaselineReport {
    pub status: VmStatus,
    pub output: String,
    pub steps: u64,
    pub wall_time: Duration,
}

fn build_live(spec: &ExecSpec, natives: impl FnOnce(&mut Vm)) -> Vm {
    // Reuse dejavu's construction path via a passthrough record (cheap):
    // ExecSpec holds everything needed; we just boot the same way.
    let mut vm = djvm::Vm::boot(
        std::sync::Arc::clone(&spec.program),
        spec.vm.clone(),
        Box::new(djvm::JitteredTimer::new(
            spec.seed,
            spec.timer_base,
            spec.timer_jitter,
        )),
        Box::new(djvm::JitteredClock::new(
            spec.seed,
            spec.clock_origin,
            spec.cycles_per_ms,
            spec.clock_noise,
        )),
    )
    .expect("boot");
    natives(&mut vm);
    vm
}

fn build_replay(spec: &ExecSpec) -> Vm {
    djvm::Vm::boot(
        std::sync::Arc::clone(&spec.program),
        spec.vm.clone(),
        Box::new(djvm::JitteredTimer::new(
            spec.seed,
            spec.timer_base,
            spec.timer_jitter,
        )),
        Box::new(djvm::CycleClock::new(spec.clock_origin, spec.cycles_per_ms)),
    )
    .expect("boot")
}

fn drive(vm: &mut Vm, hook: &mut dyn ExecHook, max_steps: u64) -> BaselineReport {
    hook.on_init(vm);
    let t0 = Instant::now();
    interp::run(vm, hook, max_steps);
    BaselineReport {
        status: vm.status,
        output: vm.output.clone(),
        steps: vm.counters.steps,
        wall_time: t0.elapsed(),
    }
}

/// Record with the Russinovich–Cogswell scheme.
pub fn rc_record(spec: &ExecSpec, natives: impl FnOnce(&mut Vm)) -> (BaselineReport, RcTrace) {
    let mut vm = build_live(spec, natives);
    let mut hook = RcRecorder::new();
    let rep = drive(&mut vm, &mut hook, spec.max_steps);
    (rep, hook.into_trace())
}

/// Replay a Russinovich–Cogswell trace; returns the report plus the
/// mapping-lookup count (the per-dispatch cost DejaVu avoids).
pub fn rc_replay(spec: &ExecSpec, trace: RcTrace) -> (BaselineReport, u64, u64) {
    let mut vm = build_replay(spec);
    let mut hook = RcReplayer::new(trace);
    let rep = drive(&mut vm, &mut hook, spec.max_steps);
    (rep, hook.lookups, hook.mismatches)
}

/// Record with Instant Replay (CREW access logging).
pub fn ir_record(spec: &ExecSpec, natives: impl FnOnce(&mut Vm)) -> (BaselineReport, IrTrace) {
    let mut vm = build_live(spec, natives);
    let mut hook = IrRecorder::new();
    let rep = drive(&mut vm, &mut hook, spec.max_steps);
    (rep, hook.into_trace())
}

/// Replay an Instant Replay trace (access-order enforcement).
pub fn ir_replay(spec: &ExecSpec, trace: IrTrace) -> (BaselineReport, u64, u64) {
    let mut vm = build_replay(spec);
    let mut hook = IrReplayer::new(trace);
    let rep = drive(&mut vm, &mut hook, spec.max_steps);
    (rep, hook.delays, hook.order_violations)
}

/// Record with Recap/PPD-style read-value logging.
pub fn readlog_record(
    spec: &ExecSpec,
    natives: impl FnOnce(&mut Vm),
) -> (BaselineReport, ReadTrace) {
    let mut vm = build_live(spec, natives);
    let mut hook = ReadLogRecorder::new();
    let rep = drive(&mut vm, &mut hook, spec.max_steps);
    (rep, hook.into_trace())
}

/// Replay with read-value substitution.
pub fn readlog_replay(spec: &ExecSpec, trace: ReadTrace) -> (BaselineReport, u64, u64) {
    let mut vm = build_replay(spec);
    let mut hook = ReadLogReplayer::new(trace);
    let rep = drive(&mut vm, &mut hook, spec.max_steps);
    (rep, hook.substituted, hook.underruns)
}

/// One row of the E5 trace-size table: bytes per scheme for the *same*
/// seeded execution of a workload.
#[derive(Debug, Clone)]
pub struct TraceSizeRow {
    pub workload: String,
    pub steps: u64,
    pub dejavu_bytes: usize,
    pub dejavu_switches: usize,
    pub rc_bytes: usize,
    pub rc_dispatches: usize,
    pub ir_bytes: usize,
    pub ir_accesses: usize,
    pub readlog_bytes: usize,
    pub readlog_reads: usize,
}

/// Run the same workload under all four recorders and report trace sizes.
pub fn trace_size_comparison(name: &str, spec: &ExecSpec, natives: fn(&mut Vm)) -> TraceSizeRow {
    let (dj_rep, dj_trace) = dejavu::record_run(spec, natives, SymmetryConfig::full(), false);
    let (_, rc_trace) = rc_record(spec, natives);
    let (_, ir_trace) = ir_record(spec, natives);
    let (_, rl_trace) = readlog_record(spec, natives);
    TraceSizeRow {
        workload: name.to_string(),
        steps: dj_rep.counters.steps,
        dejavu_bytes: dj_trace.stats().total_bytes,
        dejavu_switches: dj_trace.stats().switch_count,
        rc_bytes: rc_trace.encoded_len(),
        rc_dispatches: rc_trace.dispatches.len(),
        ir_bytes: ir_trace.encoded_len(),
        ir_accesses: ir_trace.accesses.len(),
        readlog_bytes: rl_trace.encoded_len(),
        readlog_reads: rl_trace.total_reads(),
    }
}
