//! Instant Replay (LeBlanc & Mellor-Crummey, paper §5): CREW
//! version-number logging on shared-object accesses.
//!
//! Instead of logging thread switches, Instant Replay logs the *order of
//! accesses to shared objects*: each object carries a version that writers
//! bump; every access appends a `(object, version)` record. During replay,
//! a thread may perform an access only when the object's current version
//! matches the recorded one — otherwise it relinquishes the processor and
//! retries. "A major drawback of such approaches is the overhead, in time
//! and particularly in space, of capturing critical events" — which is
//! exactly what the E5 trace-size experiment quantifies against DejaVu's
//! switch-only trace.
//!
//! The guarantee is also *weaker* than DejaVu's: the recorded access order
//! pins down shared-data values, not the instruction-level interleaving
//! (and the paper notes it "fails when critical events within CREW are
//! non-deterministic"). Accordingly, accuracy for this scheme is judged on
//! program output, not on the full execution fingerprint.

use dejavu::trace::{DataRec, Trace};
use djvm::hook::{AccessDecision, ExecHook, YieldAction};
use djvm::vm::Vm;
use djvm::{NativeId, NativeOutcome};
use std::collections::{BTreeMap, VecDeque};

/// One shared access record: which thread accessed which object (by
/// allocation serial), at which version, and whether it wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRec {
    pub tid: u32,
    pub serial: u64,
    pub version: u64,
    pub write: bool,
}

/// The Instant Replay trace: per-access records plus the data stream every
/// replay scheme needs (paper footnote 7).
#[derive(Debug, Clone, Default)]
pub struct IrTrace {
    pub accesses: Vec<AccessRec>,
    pub data: Vec<DataRec>,
}

impl IrTrace {
    /// Encoded size (varint model shared with the other traces).
    pub fn encoded_len(&self) -> usize {
        fn varint_len(mut v: u64) -> usize {
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        }
        let mut total = 5;
        let mut last_serial = 0u64;
        for a in &self.accesses {
            // delta-encode serials (favourable to IR, for fairness)
            let delta = a.serial.abs_diff(last_serial);
            total += varint_len(delta << 1) + varint_len(a.version) + varint_len(a.tid as u64) + 1;
            last_serial = a.serial;
        }
        let data = Trace {
            paranoid: false,
            switches: vec![],
            data: self.data.clone(),
        };
        total + data.encoded().len() - 5
    }
}

/// Record mode: passthrough scheduling + per-access version logging.
pub struct IrRecorder {
    versions: BTreeMap<u64, u64>,
    pub trace: IrTrace,
}

impl IrRecorder {
    pub fn new() -> Self {
        Self {
            versions: BTreeMap::new(),
            trace: IrTrace::default(),
        }
    }

    pub fn into_trace(self) -> IrTrace {
        self.trace
    }
}

impl Default for IrRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecHook for IrRecorder {
    fn on_yield_point(&mut self, vm: &mut Vm) -> YieldAction {
        if vm.preempt_bit {
            vm.preempt_bit = false;
            YieldAction::switch()
        } else {
            YieldAction::NONE
        }
    }

    fn on_shared_access(&mut self, vm: &mut Vm, serial: u64, write: bool) -> AccessDecision {
        let v = self.versions.entry(serial).or_insert(0);
        self.trace.accesses.push(AccessRec {
            tid: vm.sched.current,
            serial,
            version: *v,
            write,
        });
        if write {
            *v += 1;
        }
        AccessDecision::Proceed
    }

    fn on_clock_read(&mut self, vm: &mut Vm) -> i64 {
        let v = vm.read_live_clock();
        self.trace.data.push(DataRec::Clock(v));
        v
    }

    fn on_native_call(&mut self, vm: &mut Vm, native: NativeId, args: &[i64]) -> NativeOutcome {
        let out = vm.call_native_live(native, args);
        self.trace.data.push(DataRec::Native {
            ret: out.ret,
            callbacks: out
                .callbacks
                .iter()
                .map(|c| (c.method, c.args.clone()))
                .collect(),
        });
        out
    }

    fn mode_name(&self) -> &'static str {
        "instant-replay-record"
    }
}

/// Replay mode: enforce the per-object access order; a thread whose access
/// is premature yields and retries.
pub struct IrReplayer {
    /// Per-object queues of (tid, version, write) in recorded order.
    queues: BTreeMap<u64, VecDeque<(u32, u64, bool)>>,
    versions: BTreeMap<u64, u64>,
    data: VecDeque<DataRec>,
    /// Accesses delayed at least once (the scheme's enforcement overhead).
    pub delays: u64,
    pub order_violations: u64,
}

impl IrReplayer {
    pub fn new(trace: IrTrace) -> Self {
        let mut queues: BTreeMap<u64, VecDeque<(u32, u64, bool)>> = BTreeMap::new();
        for a in &trace.accesses {
            queues
                .entry(a.serial)
                .or_default()
                .push_back((a.tid, a.version, a.write));
        }
        Self {
            queues,
            versions: BTreeMap::new(),
            data: trace.data.into(),
            delays: 0,
            order_violations: 0,
        }
    }
}

impl ExecHook for IrReplayer {
    fn on_yield_point(&mut self, _vm: &mut Vm) -> YieldAction {
        // No preemption log: scheduling is driven entirely by access-order
        // enforcement (and natural blocking).
        YieldAction::NONE
    }

    fn on_shared_access(&mut self, vm: &mut Vm, serial: u64, write: bool) -> AccessDecision {
        let me = vm.sched.current;
        let cur = self.versions.entry(serial).or_insert(0);
        let Some(q) = self.queues.get_mut(&serial) else {
            self.order_violations += 1;
            return AccessDecision::Proceed;
        };
        match q.front() {
            Some(&(tid, ver, w)) if tid == me && ver == *cur && w == write => {
                q.pop_front();
                if write {
                    *cur += 1;
                }
                AccessDecision::Proceed
            }
            Some(_) => {
                self.delays += 1;
                AccessDecision::SwitchAndRetry
            }
            None => {
                self.order_violations += 1;
                AccessDecision::Proceed
            }
        }
    }

    fn on_clock_read(&mut self, _vm: &mut Vm) -> i64 {
        match self.data.pop_front() {
            Some(DataRec::Clock(v)) => v,
            _ => 0,
        }
    }

    fn on_native_call(&mut self, _vm: &mut Vm, _native: NativeId, _args: &[i64]) -> NativeOutcome {
        match self.data.pop_front() {
            Some(DataRec::Native { ret, callbacks }) => NativeOutcome {
                ret,
                callbacks: callbacks
                    .into_iter()
                    .map(|(method, args)| djvm::CallbackReq { method, args })
                    .collect(),
            },
            _ => NativeOutcome::value(0),
        }
    }

    fn mode_name(&self) -> &'static str {
        "instant-replay-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_trace_grows_per_access() {
        let mut t = IrTrace::default();
        let base = t.encoded_len();
        t.accesses.push(AccessRec {
            tid: 0,
            serial: 10,
            version: 0,
            write: true,
        });
        assert!(t.encoded_len() > base);
    }
}
