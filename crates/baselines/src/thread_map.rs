//! Russinovich & Cogswell's scheme (paper §5): log **every** thread switch
//! and steer the scheduler during replay through a record→replay thread-id
//! mapping.
//!
//! Because this scheme does *not* replay the thread package, it cannot rely
//! on deterministic switches falling out for free: the OS notifies it on
//! each dispatch, every one goes in the trace, and replay must translate
//! recorded thread ids to replay-run ids (threads may be created by a
//! different numbering authority) and tell the scheduler whom to run.
//! "This is a significant execution cost that DejaVu does not incur because
//! it replays the entire Jalapeño thread package."
//!
//! We reproduce the cost model faithfully: the trace carries one record per
//! dispatch (tid + yield-delta for preemptive ones), and the replayer
//! performs a map lookup + validation on every dispatch. Our preemptive
//! switch points reuse the yield-point counter (their implementation used a
//! Mach kernel hook; the identification mechanism is orthogonal).

use dejavu::trace::{DataRec, Trace};
use djvm::hook::{ExecHook, YieldAction};
use djvm::vm::Vm;
use djvm::{NativeId, NativeOutcome, Tid};
use std::collections::{BTreeMap, VecDeque};

/// One dispatch record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchRec {
    /// Thread granted the processor.
    pub to: Tid,
    /// Yield points since the previous *preemptive* switch if this dispatch
    /// was caused by preemption; `None` for deterministic dispatches
    /// (blocking operations) which this scheme logs but need not force.
    pub preempt_after: Option<u64>,
}

/// The full RC trace: every dispatch + the same data stream DejaVu needs
/// (footnote 7: data logging is required in all replay schemes).
#[derive(Debug, Clone, Default)]
pub struct RcTrace {
    pub dispatches: Vec<DispatchRec>,
    pub data: Vec<DataRec>,
}

impl RcTrace {
    /// Encoded size in bytes (varint model identical to the DejaVu trace
    /// encoder, for a fair E5 comparison).
    pub fn encoded_len(&self) -> usize {
        fn varint_len(mut v: u64) -> usize {
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        }
        let mut total = 5;
        for d in &self.dispatches {
            total += varint_len(d.to as u64) + 1;
            if let Some(nyp) = d.preempt_after {
                total += varint_len(nyp);
            }
        }
        // data stream: identical encoding to dejavu's
        let data_trace = Trace {
            paranoid: false,
            switches: vec![],
            data: self.data.clone(),
        };
        total += data_trace.encoded().len() - 5;
        total
    }
}

/// Record mode: like DejaVu's recorder for preemption, plus a dispatch
/// record for *every* switch.
pub struct RcRecorder {
    nyp: u64,
    preempt_pending: bool,
    pub trace: RcTrace,
}

impl RcRecorder {
    pub fn new() -> Self {
        Self {
            nyp: 0,
            preempt_pending: false,
            trace: RcTrace::default(),
        }
    }

    pub fn into_trace(self) -> RcTrace {
        self.trace
    }
}

impl Default for RcRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecHook for RcRecorder {
    fn on_yield_point(&mut self, vm: &mut Vm) -> YieldAction {
        self.nyp += 1;
        if vm.preempt_bit {
            vm.preempt_bit = false;
            self.preempt_pending = true;
            YieldAction::switch()
        } else {
            YieldAction::NONE
        }
    }

    fn on_thread_switch(&mut self, _vm: &mut Vm, to: Tid) {
        let preempt_after = if self.preempt_pending {
            self.preempt_pending = false;
            let d = self.nyp;
            self.nyp = 0;
            Some(d)
        } else {
            None
        };
        self.trace
            .dispatches
            .push(DispatchRec { to, preempt_after });
    }

    fn on_clock_read(&mut self, vm: &mut Vm) -> i64 {
        let v = vm.read_live_clock();
        self.trace.data.push(DataRec::Clock(v));
        v
    }

    fn on_native_call(&mut self, vm: &mut Vm, native: NativeId, args: &[i64]) -> NativeOutcome {
        let out = vm.call_native_live(native, args);
        self.trace.data.push(DataRec::Native {
            ret: out.ret,
            callbacks: out
                .callbacks
                .iter()
                .map(|c| (c.method, c.args.clone()))
                .collect(),
        });
        out
    }

    fn mode_name(&self) -> &'static str {
        "rc-record"
    }
}

/// Replay mode: forces preemptive switches from the log and, on *every*
/// dispatch, performs the record→replay thread-id translation + check that
/// RC's design requires (the mapping cost DejaVu avoids).
pub struct RcReplayer {
    dispatches: VecDeque<DispatchRec>,
    data: VecDeque<DataRec>,
    /// Remaining yield points until the next forced preemptive switch.
    pending: Option<u64>,
    /// record-tid -> replay-tid. In our setup the identity map, but RC must
    /// maintain and consult it per dispatch; we measure its lookups.
    map: BTreeMap<Tid, Tid>,
    pub lookups: u64,
    pub mismatches: u64,
}

impl RcReplayer {
    pub fn new(trace: RcTrace) -> Self {
        let mut dispatches: VecDeque<DispatchRec> = trace.dispatches.into();
        // Pre-scan to the first preemptive record.
        let pending = Self::next_preempt(&mut dispatches);
        Self {
            dispatches,
            data: trace.data.into(),
            pending,
            map: BTreeMap::new(),
            lookups: 0,
            mismatches: 0,
        }
    }

    fn next_preempt(d: &mut VecDeque<DispatchRec>) -> Option<u64> {
        // Find the yield-delta of the next preemptive dispatch without
        // consuming the deterministic ones in between (they are validated
        // as they happen).
        d.iter().find_map(|r| r.preempt_after)
    }
}

impl ExecHook for RcReplayer {
    fn on_yield_point(&mut self, _vm: &mut Vm) -> YieldAction {
        let Some(n) = self.pending.as_mut() else {
            return YieldAction::NONE;
        };
        *n -= 1;
        if *n > 0 {
            return YieldAction::NONE;
        }
        YieldAction::switch()
    }

    fn on_thread_switch(&mut self, vm: &mut Vm, to: Tid) {
        // The mapping maintenance + lookup RC pays on every dispatch.
        let mapped = *self.map.entry(to).or_insert(to);
        self.lookups += 1;
        if mapped != vm.sched.current {
            // (vm.sched.current == to at this point; a mismatch means the
            // map disagrees with reality.)
        }
        match self.dispatches.pop_front() {
            Some(rec) => {
                if rec.to != mapped {
                    self.mismatches += 1;
                }
                if rec.preempt_after.is_some() {
                    // consumed the preemptive record; arm the next one
                    self.pending = RcReplayer::next_preempt(&mut self.dispatches);
                }
            }
            None => {
                self.mismatches += 1;
            }
        }
    }

    fn on_clock_read(&mut self, _vm: &mut Vm) -> i64 {
        match self.data.pop_front() {
            Some(DataRec::Clock(v)) => v,
            _ => 0,
        }
    }

    fn on_native_call(&mut self, _vm: &mut Vm, _native: NativeId, _args: &[i64]) -> NativeOutcome {
        match self.data.pop_front() {
            Some(DataRec::Native { ret, callbacks }) => NativeOutcome {
                ret,
                callbacks: callbacks
                    .into_iter()
                    .map(|(method, args)| djvm::CallbackReq { method, args })
                    .collect(),
            },
            _ => NativeOutcome::value(0),
        }
    }

    fn mode_name(&self) -> &'static str {
        "rc-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_len_counts_dispatches() {
        let t = RcTrace {
            dispatches: vec![
                DispatchRec {
                    to: 1,
                    preempt_after: Some(300),
                },
                DispatchRec {
                    to: 2,
                    preempt_after: None,
                },
            ],
            data: vec![DataRec::Clock(5)],
        };
        let small = RcTrace::default().encoded_len();
        assert!(t.encoded_len() > small);
    }
}
