//! Igor / Recap / Boothe-style checkpointing (paper §5): periodic full
//! program-state snapshots enabling "reverse execution" by restoring a
//! checkpoint and re-executing forward.
//!
//! The paper's critique is the space/time cost of snapshots; combined with
//! a DejaVu trace, checkpoints buy *time travel*: restore the latest
//! snapshot at or before the target, then deterministically replay forward.
//! The debugger uses this for reverse-step.

use dejavu::{DejaVuReplayer, SymmetryConfig, Trace};
use djvm::hook::ExecHook;
use djvm::vm::VmSnapshot;
use djvm::{interp, Vm, VmStatus};

/// One checkpoint: guest state plus the replay cursor that goes with it.
pub struct Checkpoint {
    /// Steps executed when the snapshot was taken.
    pub at_step: u64,
    snapshot: VmSnapshot,
    replayer: DejaVuReplayer,
    /// Approximate serialized size (bytes).
    pub bytes: usize,
}

/// A replaying VM with periodic checkpoints and random access by step
/// index (forward and backward).
pub struct TimeTravel {
    vm: Vm,
    replayer: DejaVuReplayer,
    pub checkpoints: Vec<Checkpoint>,
    interval: u64,
    /// Steps executed since replay start.
    pub step: u64,
    /// Restores performed (experiment counter).
    pub restores: u64,
    /// Steps re-executed due to restores (experiment counter).
    pub reexecuted: u64,
}

impl TimeTravel {
    /// Wrap a freshly booted replay VM. `interval` = steps between
    /// checkpoints (the space/time knob the paper discusses).
    pub fn new(mut vm: Vm, trace: Trace, sym: SymmetryConfig, interval: u64) -> Self {
        assert!(interval > 0);
        let mut replayer = DejaVuReplayer::new(trace, sym);
        replayer.on_init(&mut vm);
        let mut tt = Self {
            vm,
            replayer,
            checkpoints: Vec::new(),
            interval,
            step: 0,
            restores: 0,
            reexecuted: 0,
        };
        tt.take_checkpoint();
        tt
    }

    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    pub fn status(&self) -> VmStatus {
        self.vm.status
    }

    fn take_checkpoint(&mut self) {
        let snapshot = self.vm.snapshot();
        let bytes = self.vm.snapshot_size_bytes();
        self.checkpoints.push(Checkpoint {
            at_step: self.step,
            snapshot,
            replayer: self.replayer.clone(),
            bytes,
        });
    }

    /// Execute exactly one replayed instruction (checkpointing on the
    /// configured cadence).
    pub fn step_once(&mut self) {
        if !self.vm.status.is_running() {
            return;
        }
        interp::step(&mut self.vm, &mut self.replayer);
        self.step += 1;
        if self.step % self.interval == 0 {
            self.take_checkpoint();
        }
    }

    /// Run forward `n` steps (or until the VM stops).
    pub fn advance(&mut self, n: u64) {
        for _ in 0..n {
            if !self.vm.status.is_running() {
                break;
            }
            self.step_once();
        }
    }

    /// Travel to an absolute step index — backward via checkpoint restore
    /// plus deterministic forward re-execution ("reverse execution" per
    /// Igor/Boothe).
    pub fn seek(&mut self, target: u64) {
        let mut restored = false;
        if target < self.step {
            // restore the newest checkpoint at or before target
            let idx = self
                .checkpoints
                .partition_point(|c| c.at_step <= target)
                .saturating_sub(1);
            let cp = &self.checkpoints[idx];
            self.vm.restore(&cp.snapshot);
            self.replayer = cp.replayer.clone();
            self.step = cp.at_step;
            self.restores += 1;
            restored = true;
            // drop checkpoints from the future
            self.checkpoints.truncate(idx + 1);
        }
        let before = self.step;
        while self.step < target && self.vm.status.is_running() {
            self.step_once();
        }
        if restored {
            // only restore-induced catch-up counts as re-execution
            self.reexecuted += self.step - before;
        }
    }

    /// Desyncs the underlying replayer has observed so far (empty while
    /// the replay is tracking the recorded execution accurately).
    pub fn desyncs(&self) -> &[dejavu::Desync] {
        self.replayer.desyncs()
    }

    /// Total checkpoint storage (bytes) currently held.
    pub fn storage_bytes(&self) -> usize {
        self.checkpoints.iter().map(|c| c.bytes).sum()
    }
}
