//! Igor / Recap / Boothe-style checkpointing (paper §5): periodic full
//! program-state snapshots enabling "reverse execution" by restoring a
//! checkpoint and re-executing forward.
//!
//! The paper's critique is the space/time cost of snapshots; combined with
//! a DejaVu trace, checkpoints buy *time travel*: restore the latest
//! snapshot at or before the target, then deterministically replay forward.
//! The debugger uses this for reverse-step.

use dejavu::{DejaVuReplayer, SymmetryConfig, Trace};
use djvm::hook::ExecHook;
use djvm::vm::VmSnapshot;
use djvm::{interp, Vm, VmStatus};

/// One checkpoint: guest state plus the replay cursor that goes with it.
pub struct Checkpoint {
    /// Steps executed when the snapshot was taken.
    pub at_step: u64,
    /// Logical time (counted yield points) when the snapshot was taken.
    pub at_logical: u64,
    snapshot: VmSnapshot,
    replayer: DejaVuReplayer,
    /// Approximate serialized size (bytes).
    pub bytes: usize,
}

/// What one [`TimeTravel::seek_logical`] actually did — the evidence that
/// a checkpoint-indexed seek replays O(block), not O(run).
#[derive(Debug, Clone, Copy, Default)]
pub struct SeekStats {
    /// Logical time the caller asked for.
    pub target_logical: u64,
    /// Whether a checkpoint restore happened (backward seeks only).
    pub restored: bool,
    /// Step / logical time of the checkpoint the seek started from
    /// (current position when no restore happened).
    pub checkpoint_step: u64,
    pub checkpoint_logical: u64,
    /// Interpreter steps executed to reach the target.
    pub steps_replayed: u64,
    /// Trace events (switches + clock reads + native calls) consumed
    /// while catching up — the "events in the target block span" number.
    pub events_replayed: u64,
    /// Where the seek landed (== target unless the program halted first).
    pub final_step: u64,
    pub final_logical: u64,
}

/// A replaying VM with periodic checkpoints and random access by step
/// index (forward and backward).
pub struct TimeTravel {
    vm: Vm,
    replayer: DejaVuReplayer,
    pub checkpoints: Vec<Checkpoint>,
    interval: u64,
    /// Extra checkpoint keys in logical time — block boundaries from a
    /// block-trace footer index ([`dejavu::BlockFile::boundaries`]). A
    /// snapshot is taken on the first step that enters each boundary, so
    /// a logical-time seek decodes/replays a single block span.
    boundaries: Vec<u64>,
    /// Cursor into `boundaries`: first boundary not yet checkpointed.
    next_boundary: usize,
    /// Steps executed since replay start.
    pub step: u64,
    /// Restores performed (experiment counter).
    pub restores: u64,
    /// Steps re-executed due to restores (experiment counter).
    pub reexecuted: u64,
}

impl TimeTravel {
    /// Wrap a freshly booted replay VM. `interval` = steps between
    /// checkpoints (the space/time knob the paper discusses).
    pub fn new(vm: Vm, trace: Trace, sym: SymmetryConfig, interval: u64) -> Self {
        Self::new_indexed(vm, trace, sym, interval, Vec::new())
    }

    /// Like [`TimeTravel::new`], additionally checkpointing at each given
    /// logical-time boundary (must be sorted ascending; block boundaries
    /// from a block-structured trace are).
    pub fn new_indexed(
        mut vm: Vm,
        trace: Trace,
        sym: SymmetryConfig,
        interval: u64,
        boundaries: Vec<u64>,
    ) -> Self {
        assert!(interval > 0);
        debug_assert!(boundaries.windows(2).all(|w| w[0] <= w[1]));
        let mut replayer = DejaVuReplayer::new(trace, sym);
        replayer.on_init(&mut vm);
        let mut tt = Self {
            vm,
            replayer,
            checkpoints: Vec::new(),
            interval,
            // the t=0 boundary is covered by the construction checkpoint
            next_boundary: boundaries.partition_point(|&b| b == 0),
            boundaries,
            step: 0,
            restores: 0,
            reexecuted: 0,
        };
        tt.take_checkpoint();
        tt
    }

    /// Logical time = counted yield points, the clock the trace's block
    /// index is keyed by (survives snapshot/restore with the counters).
    pub fn logical_time(&self) -> u64 {
        self.vm.counters.yield_points
    }

    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    pub fn status(&self) -> VmStatus {
        self.vm.status
    }

    fn take_checkpoint(&mut self) {
        let snapshot = self.vm.snapshot();
        let bytes = self.vm.snapshot_size_bytes();
        self.checkpoints.push(Checkpoint {
            at_step: self.step,
            at_logical: self.logical_time(),
            snapshot,
            replayer: self.replayer.clone(),
            bytes,
        });
    }

    /// Execute exactly one replayed instruction (checkpointing on the
    /// configured step cadence and at block boundaries).
    pub fn step_once(&mut self) {
        if !self.vm.status.is_running() {
            return;
        }
        interp::step(&mut self.vm, &mut self.replayer);
        self.step += 1;
        let lt = self.logical_time();
        let mut checkpoint = self.step % self.interval == 0;
        // First step at or past a block boundary anchors that block.
        while self.next_boundary < self.boundaries.len()
            && self.boundaries[self.next_boundary] <= lt
        {
            self.next_boundary += 1;
            checkpoint = true;
        }
        if checkpoint {
            self.take_checkpoint();
        }
    }

    /// Run forward `n` steps (or until the VM stops).
    pub fn advance(&mut self, n: u64) {
        for _ in 0..n {
            if !self.vm.status.is_running() {
                break;
            }
            self.step_once();
        }
    }

    /// Travel to an absolute step index — backward via checkpoint restore
    /// plus deterministic forward re-execution ("reverse execution" per
    /// Igor/Boothe).
    pub fn seek(&mut self, target: u64) {
        let mut restored = false;
        if target < self.step {
            let idx = self
                .checkpoints
                .partition_point(|c| c.at_step <= target)
                .saturating_sub(1);
            self.restore_checkpoint(idx);
            restored = true;
        }
        let before = self.step;
        while self.step < target && self.vm.status.is_running() {
            self.step_once();
        }
        if restored {
            // only restore-induced catch-up counts as re-execution
            self.reexecuted += self.step - before;
        }
    }

    /// Restore checkpoint `idx`, dropping checkpoints from its future and
    /// re-arming the boundary cursor so re-execution re-takes them.
    fn restore_checkpoint(&mut self, idx: usize) {
        let cp = &self.checkpoints[idx];
        self.vm.restore(&cp.snapshot);
        self.replayer = cp.replayer.clone();
        self.step = cp.at_step;
        self.restores += 1;
        self.checkpoints.truncate(idx + 1);
        let lt = self.logical_time();
        self.next_boundary = self.boundaries.partition_point(|&b| b <= lt);
    }

    /// Travel to an absolute *logical time* (counted yield points) — the
    /// block-trace seek path. Restores the newest checkpoint at or before
    /// `target` when seeking backward, then replays forward until the
    /// VM's logical clock reaches `target` (or the program stops).
    /// Returns what the seek cost; with block-boundary checkpoints
    /// ([`TimeTravel::new_indexed`]) `events_replayed` is bounded by one
    /// block span regardless of run length.
    pub fn seek_logical(&mut self, target: u64) -> SeekStats {
        let mut stats = SeekStats {
            target_logical: target,
            ..SeekStats::default()
        };
        if target < self.logical_time() {
            let idx = self
                .checkpoints
                .partition_point(|c| c.at_logical <= target)
                .saturating_sub(1);
            self.restore_checkpoint(idx);
            stats.restored = true;
        }
        stats.checkpoint_step = self.step;
        stats.checkpoint_logical = self.logical_time();
        let events_before = self.replayer.events_consumed();
        let before = self.step;
        while self.logical_time() < target && self.vm.status.is_running() {
            self.step_once();
        }
        if stats.restored {
            self.reexecuted += self.step - before;
        }
        stats.steps_replayed = self.step - before;
        stats.events_replayed = self.replayer.events_consumed() - events_before;
        stats.final_step = self.step;
        stats.final_logical = self.logical_time();
        stats
    }

    /// Desyncs the underlying replayer has observed so far (empty while
    /// the replay is tracking the recorded execution accurately).
    pub fn desyncs(&self) -> &[dejavu::Desync] {
        self.replayer.desyncs()
    }

    /// Total checkpoint storage (bytes) currently held.
    pub fn storage_bytes(&self) -> usize {
        self.checkpoints.iter().map(|c| c.bytes).sum()
    }
}
