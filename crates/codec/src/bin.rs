//! LEB128 varints and zigzag — the binary primitives of the trace format.
//!
//! A yield-point delta of a million still fits in three bytes, which is the
//! essence of the paper's switch-stream size advantage (§5); these helpers
//! were hoisted out of `dejavu::trace` so every crate shares one
//! implementation.

/// Append `v` as an LEB128 varint (7 bits per byte, high bit = continue).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Read an LEB128 varint at `*pos`, advancing it. `None` on truncation or
/// a continuation run past 64 bits.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Map a signed value to an unsigned one with small magnitudes staying
/// small (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_boundaries() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, 1 << 32, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_max_is_ten_bytes() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn truncated_varint_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None);
    }

    #[test]
    fn overlong_continuation_rejected() {
        // Eleven continuation bytes would shift past 64 bits.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 63, -64, 1 << 40, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        let mut buf = Vec::new();
        put_varint(&mut buf, zigzag(-3));
        assert_eq!(buf.len(), 1);
    }
}
