//! A small JSON value model with a strict parser and a deterministic writer.
//!
//! This is the wire layer of the debugger's tool↔GUI protocol (paper §4:
//! "transmitting small packets of data rather than large images") and the
//! format of `djvm` program dumps. It is deliberately minimal:
//!
//! * integers are kept exact ([`Json::Int`] / [`Json::UInt`] — a `u64`
//!   step index or address never goes through an `f64`),
//! * object keys keep insertion order, so encoding is a pure function of
//!   the value (deterministic output is the house discipline),
//! * the parser is strict: no trailing garbage, no unescaped control
//!   characters, bounded nesting depth.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number that fits in `i64` (all negative integers land here).
    Int(i64),
    /// A non-negative integer too large for `i64`.
    UInt(u64),
    /// A number with a fraction or exponent part.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in insertion order (duplicates rejected on parse).
    Obj(Vec<(String, Json)>),
}

/// Parse or conversion failure: what went wrong and (for parse errors)
/// the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub msg: String,
    pub at: usize,
}

impl JsonError {
    pub fn new(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            at: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Convert a value into its JSON representation.
pub trait ToJson {
    fn to_json(&self) -> Json;

    /// One-line encoding, ready for a line-delimited protocol.
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

/// Reconstruct a value from its JSON representation.
pub trait FromJson: Sized {
    fn from_json(j: &Json) -> Result<Self, JsonError>;

    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(s)?)
    }
}

// ---------------------------------------------------------------------
// Value accessors — the ergonomics hand-rolled decoders lean on.
// ---------------------------------------------------------------------

impl Json {
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other}"))),
        }
    }

    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Int(v) if *v >= 0 => Ok(*v as u64),
            Json::UInt(v) => Ok(*v),
            other => Err(JsonError::new(format!(
                "expected unsigned int, got {other}"
            ))),
        }
    }

    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Json::Int(v) => Ok(*v),
            Json::UInt(v) => {
                i64::try_from(*v).map_err(|_| JsonError::new(format!("integer {v} overflows i64")))
            }
            other => Err(JsonError::new(format!("expected int, got {other}"))),
        }
    }

    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other}"))),
        }
    }

    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(JsonError::new(format!("expected array, got {other}"))),
        }
    }

    pub fn as_obj(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(v) => Ok(v),
            other => Err(JsonError::new(format!("expected object, got {other}"))),
        }
    }

    /// Look up a key in an object; `None` if absent (or not an object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a required key in an object.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field \"{key}\"")))
    }

    /// Build an object value from pairs (keys keep the given order).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Recursively sort every object's keys, in place. Canonical form is
    /// the contract for telemetry output: two semantically equal values
    /// canonicalize to byte-identical encodings regardless of the order
    /// their fields were assembled in.
    pub fn canonicalize(&mut self) {
        match self {
            Json::Arr(items) => {
                for item in items {
                    item.canonicalize();
                }
            }
            Json::Obj(pairs) => {
                for (_, v) in pairs.iter_mut() {
                    v.canonicalize();
                }
                pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
            }
            _ => {}
        }
    }

    /// Canonical (sorted-keys) one-line encoding; see [`Json::canonicalize`].
    pub fn to_canonical_string(&self) -> String {
        let mut c = self.clone();
        c.canonicalize();
        c.to_string()
    }
}

// ---------------------------------------------------------------------
// Primitive conversions.
// ---------------------------------------------------------------------

macro_rules! uint_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let v = j.as_u64()?;
                <$t>::try_from(v)
                    .map_err(|_| JsonError::new(format!("{v} overflows {}", stringify!($t))))
            }
        }
    )*};
}
uint_json!(u8, u16, u32, u64, usize);

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}
impl FromJson for i64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_i64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(j.as_str()?.to_string())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else {
                    // JSON has no NaN/Infinity; null is the least-bad spelling.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

// ---------------------------------------------------------------------
// Parser — strict recursive descent over bytes.
// ---------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            msg: msg.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, val: Json) -> Result<Json, JsonError> {
        if self.buf[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err(format!("invalid literal (expected {lit})")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v = 0u16;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = (v << 4) | d as u16;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain ASCII/UTF-8 bytes verbatim.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.buf[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX for the low half.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let cp =
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                            char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            char::from_u32(hi as u32).ok_or_else(|| self.err("bad \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_digits = &self.buf[int_start..self.pos];
        if int_digits.is_empty() {
            return Err(self.err("expected digits"));
        }
        if int_digits.len() > 1 && int_digits[0] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.buf[start..self.pos]).unwrap();
        if is_float {
            return text
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("bad number"));
        }
        if neg {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer overflows i64"))
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(i64::try_from(v).map(Json::Int).unwrap_or(Json::UInt(v))),
                Err(_) => Err(self.err("integer overflows u64")),
            }
        }
    }
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            buf: s.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.buf.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(j: &Json) {
        let s = j.to_string();
        assert_eq!(&Json::parse(&s).unwrap(), j, "encoded as {s}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::Int(0));
        roundtrip(&Json::Int(-42));
        roundtrip(&Json::Int(i64::MIN));
        roundtrip(&Json::Int(i64::MAX));
        roundtrip(&Json::UInt(u64::MAX));
        roundtrip(&Json::Str("hello".into()));
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        for s in [
            "",
            "plain",
            "quote \" backslash \\ slash /",
            "newline\ntab\tcr\r",
            "control \u{01} \u{1f}",
            "unicode: déjà vu — 既視感 🦀",
        ] {
            roundtrip(&Json::Str(s.into()));
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        roundtrip(&Json::obj(vec![
            ("cmd", Json::Str("break".into())),
            ("args", Json::Arr(vec![Json::Int(1), Json::Null])),
            (
                "inner",
                Json::obj(vec![("deep", Json::Arr(vec![Json::Obj(vec![])]))]),
            ),
        ]));
    }

    #[test]
    fn u64_max_survives_exactly() {
        let j = Json::parse("18446744073709551615").unwrap();
        assert_eq!(j.as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn floats_parse() {
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("-2e3").unwrap(), Json::Num(-2000.0));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83e\\udd80\"").unwrap(),
            Json::Str("🦀".into())
        );
        assert!(Json::parse("\"\\ud83e\"").is_err());
        assert!(Json::parse("\"\\udd80\"").is_err());
    }

    #[test]
    fn whitespace_tolerated_between_tokens() {
        let j = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(j.field("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"unterminated",
            "\"bad \\x escape\"",
            "[1] trailing",
            "{\"a\":1,\"a\":2}",
            "nan",
            "--1",
            "18446744073709551616",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_bounded() {
        let s = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&s).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn object_key_order_is_stable() {
        let j = Json::obj(vec![("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(j.to_string(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn canonicalize_sorts_keys_recursively() {
        let j = Json::obj(vec![
            ("z", Json::Int(1)),
            (
                "a",
                Json::Arr(vec![Json::obj(vec![
                    ("m", Json::Null),
                    ("b", Json::Bool(true)),
                ])]),
            ),
        ]);
        assert_eq!(
            j.to_canonical_string(),
            "{\"a\":[{\"b\":true,\"m\":null}],\"z\":1}"
        );
        // Two assembly orders, one canonical encoding.
        let k = Json::obj(vec![
            (
                "a",
                Json::Arr(vec![Json::obj(vec![
                    ("b", Json::Bool(true)),
                    ("m", Json::Null),
                ])]),
            ),
            ("z", Json::Int(1)),
        ]);
        assert_eq!(j.to_canonical_string(), k.to_canonical_string());
    }

    #[test]
    fn field_accessors_report_errors() {
        let j = Json::obj(vec![("n", Json::Int(-1))]);
        assert!(j.field("missing").is_err());
        assert!(j.field("n").unwrap().as_u64().is_err());
        assert_eq!(j.field("n").unwrap().as_i64().unwrap(), -1);
    }
}
