//! Content digests for the block store: a 128-bit digest built from two
//! independently-keyed SipHash-2-4 streams.
//!
//! The trace store (`crates/store`) keys every block by the digest of its
//! raw (pre-compression) payload bytes, so identical blocks across runs
//! dedup to one stored copy. That keying must be shared with every tool
//! that talks about block identity (`dejavu-cli trace inspect` prints the
//! same digests the store uses as filenames), so it lives here at the
//! bottom of the dependency graph, hand-rolled like the rest of the
//! hermetic build: SipHash-2-4 is ~40 lines of shifts and adds, well
//! studied, and two independent 64-bit keys give a 128-bit identifier —
//! collision probability ~2⁻⁶⁴ even at a billion stored blocks, which is
//! storage-grade for a content-addressed database (the store still
//! re-verifies raw bytes against the digest on every read, so even an
//! astronomically unlikely collision is a typed error, not silent data
//! corruption).

/// Length of a [`Digest128`] in bytes.
pub const DIGEST_LEN: usize = 16;

/// A 128-bit content digest. Ordered and hashable so it can key maps and
/// sort deterministically; rendered as 32 lowercase hex digits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Digest128(pub [u8; DIGEST_LEN]);

impl Digest128 {
    /// Lowercase hex form — the store's block filename and the digest
    /// column `trace inspect` prints.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parse the 32-hex-digit form (lowercase or uppercase).
    pub fn parse(s: &str) -> Option<Digest128> {
        if s.len() != DIGEST_LEN * 2 || !s.is_ascii() {
            return None;
        }
        let bytes = s.as_bytes();
        let mut out = [0u8; DIGEST_LEN];
        for (i, slot) in out.iter_mut().enumerate() {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            *slot = ((hi << 4) | lo) as u8;
        }
        Some(Digest128(out))
    }
}

impl std::fmt::Display for Digest128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Digest arbitrary bytes: SipHash-2-4 under two fixed, independent keys,
/// concatenated little-endian. A pure function of the input bytes.
pub fn digest128(bytes: &[u8]) -> Digest128 {
    // Nothing-up-my-sleeve keys: digits of e and sqrt(2).
    let a = siphash24(0x2b7e151628aed2a6, 0xabf7158809cf4f3c, bytes);
    let b = siphash24(0x6a09e667f3bcc908, 0xbb67ae8584caa73b, bytes);
    let mut out = [0u8; DIGEST_LEN];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    Digest128(out)
}

/// Reference SipHash-2-4 (Aumasson & Bernstein), 64-bit output.
fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v0 = 0x736f6d6570736575u64 ^ k0;
    let mut v1 = 0x646f72616e646f6du64 ^ k1;
    let mut v2 = 0x6c7967656e657261u64 ^ k0;
    let mut v3 = 0x7465646279746573u64 ^ k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().unwrap());
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    let rem = chunks.remainder();
    let mut last = (data.len() as u64) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v3 ^= last;
    sipround!();
    sipround!();
    v0 ^= last;
    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siphash24_matches_reference_vectors() {
        // The reference test vector from the SipHash paper: key
        // 000102…0f, messages 00, 0001, 0002… — spot-check a few.
        let k0 = 0x0706050403020100u64;
        let k1 = 0x0f0e0d0c0b0a0908u64;
        let msg: Vec<u8> = (0u8..15).collect();
        let expect: [(usize, u64); 4] = [
            (0, 0x726fdb47dd0e0e31),
            (1, 0x74f839c593dc67fd),
            (8, 0x93f5f5799a932462),
            (15, 0xa129ca6149be45e5),
        ];
        for (len, want) in expect {
            assert_eq!(
                siphash24(k0, k1, &msg[..len]),
                want,
                "siphash vector at len {len}"
            );
        }
    }

    #[test]
    fn digest_is_deterministic_and_length_sensitive() {
        let a = digest128(b"hello");
        assert_eq!(a, digest128(b"hello"));
        assert_ne!(a, digest128(b"hello\0"));
        assert_ne!(a, digest128(b"hellp"));
        assert_ne!(digest128(b""), digest128(b"\0"));
    }

    #[test]
    fn hex_roundtrip() {
        for input in [&b""[..], b"x", b"block payload bytes"] {
            let d = digest128(input);
            let hex = d.hex();
            assert_eq!(hex.len(), 32);
            assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
            assert_eq!(Digest128::parse(&hex), Some(d));
            assert_eq!(Digest128::parse(&hex.to_uppercase()), Some(d));
        }
        assert_eq!(Digest128::parse("zz"), None);
        assert_eq!(Digest128::parse(&"a".repeat(31)), None);
        assert_eq!(Digest128::parse(&"g".repeat(32)), None);
    }
}
