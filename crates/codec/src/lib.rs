//! # codec — std-only serialization for the DejaVu reproduction
//!
//! The platform controls *all* of its own side effects (paper §3: pre-loaded
//! classes, pre-allocated buffers); the build-system analogue is owning our
//! serialization layers instead of pulling external crates the hermetic
//! build environment cannot fetch. This crate is the workspace's only
//! encode/decode machinery:
//!
//! * [`bin`] — LEB128 varints and zigzag, the primitives under the binary
//!   trace format ([`dejavu`'s two-stream trace]) and any other compact
//!   on-disk structure.
//! * [`block`] — CRC-32 and an LZ77-style block compressor, the storage
//!   layer under the block-structured trace format.
//! * [`json`] — a small JSON value model ([`json::Json`]) with a strict
//!   recursive-descent parser and a writer, plus the [`json::FromJson`] /
//!   [`json::ToJson`] traits the debugger protocol and the `djvm` program
//!   dump implement by hand.
//! * [`digest`] — 128-bit content digests (double-keyed SipHash-2-4), the
//!   keying under the content-addressed trace store and the digest column
//!   `trace inspect` prints.
//!
//! Everything here is `std`-only and deterministic: the writer emits object
//! keys in insertion order, so encoding is a pure function of the value.

pub mod bin;
pub mod block;
pub mod digest;
pub mod json;

pub use bin::{get_varint, put_varint, unzigzag, zigzag};
pub use block::{compress, crc32, decompress, entropy_compress, entropy_decompress};
pub use digest::{digest128, Digest128};
pub use json::{FromJson, Json, JsonError, ToJson};
