//! Block compression primitives: CRC-32 integrity and an LZ77-style
//! byte compressor.
//!
//! The block-structured trace format (see `dejavu::blocktrace`) stores
//! each block's payload either *raw* or run through [`compress`], and
//! guards every payload with a [`crc32`] over the raw bytes — a single
//! flipped or missing byte anywhere in a block is caught at decode time.
//! Hermetic-build discipline: no external compression crates; this is the
//! workspace's own LZ implementation, `std`-only and deterministic (the
//! same input always produces the same output bytes).
//!
//! ## Wire format of a compressed stream
//!
//! A sequence of *groups*; each group is
//!
//! ```text
//! varint(literal_len)  literal bytes…  [ varint(match_len) varint(offset) ]
//! ```
//!
//! The trailing match is omitted in the final group. Decompression stops
//! when exactly `raw_len` bytes (known from the block header) have been
//! produced; anything else — a short stream, an overlong stream, an
//! offset pointing before the start — is corruption. Matches may overlap
//! their own output (`offset == 1` encodes a run), which is what makes
//! delta-encoded trace columns — long stretches of identical small
//! deltas — collapse to a few bytes per block.

use crate::bin::{get_varint, put_varint};

/// Minimum match length worth encoding (shorter matches cost more than
/// their literals).
const MIN_MATCH: usize = 4;
/// Longest match we will emit (bounds decompress work per group).
const MAX_MATCH: usize = 1 << 16;
/// Hash-chain search depth: how many previous positions with the same
/// 4-byte hash are tried per position. Small = fast, large = tighter.
const MAX_CHAIN: usize = 32;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the classic
/// table-driven byte-at-a-time implementation.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[inline]
fn hash4(src: &[u8], i: usize) -> usize {
    // 4-byte Fibonacci hash into the table's index space.
    let v = u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> 18) as usize
}

const HASH_BITS: usize = 14;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Compress `src`. The output is self-delimiting only together with the
/// raw length, which callers must store alongside (the block header
/// does). Returns a stream that [`decompress`] inverts exactly.
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    if src.is_empty() {
        put_varint(&mut out, 0); // one empty literal group
        return out;
    }
    // head[h] = most recent position with hash h; prev[i] = previous
    // position in i's chain. usize::MAX = empty.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; src.len()];
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i < src.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= src.len() {
            let h = hash4(src, i) & (HASH_SIZE - 1);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && chain < MAX_CHAIN {
                // candidate must genuinely precede us
                debug_assert!(cand < i);
                let limit = (src.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && src[cand + l] == src[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l >= limit {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            // flush pending literals, then the match
            put_varint(&mut out, (i - lit_start) as u64);
            out.extend_from_slice(&src[lit_start..i]);
            put_varint(&mut out, best_len as u64);
            put_varint(&mut out, best_off as u64);
            // index the matched region (sparsely: every position keeps
            // chains exact; the cost is linear and small)
            let end = i + best_len;
            i += 1;
            while i < end && i + MIN_MATCH <= src.len() {
                let h = hash4(src, i) & (HASH_SIZE - 1);
                prev[i] = head[h];
                head[h] = i;
                i += 1;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    // final literal group (possibly empty), no trailing match
    put_varint(&mut out, (src.len() - lit_start) as u64);
    out.extend_from_slice(&src[lit_start..]);
    out
}

/// Decompress a [`compress`] stream into exactly `raw_len` bytes.
/// `None` on any corruption: truncated varints, bad offsets, or a stream
/// that produces the wrong number of bytes.
pub fn decompress(src: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    loop {
        let lit_len = get_varint(src, &mut pos)? as usize;
        if lit_len > src.len().saturating_sub(pos) || out.len() + lit_len > raw_len {
            return None;
        }
        out.extend_from_slice(&src[pos..pos + lit_len]);
        pos += lit_len;
        if out.len() == raw_len && pos == src.len() {
            return Some(out);
        }
        if pos == src.len() {
            // stream ended before producing raw_len bytes
            return None;
        }
        let match_len = get_varint(src, &mut pos)? as usize;
        let offset = get_varint(src, &mut pos)? as usize;
        if match_len < MIN_MATCH
            || match_len > MAX_MATCH
            || offset == 0
            || offset > out.len()
            || out.len() + match_len > raw_len
        {
            return None;
        }
        // byte-at-a-time copy: overlapping matches (offset < len) are
        // the run-length case and must self-reference the fresh output
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
}

// ---------------------------------------------------------------------
// Adaptive order-1 range coder
// ---------------------------------------------------------------------
//
// The LZ pass above exploits *repetition*; trace columns additionally
// have low *per-symbol entropy* (a recorded nyp delta spans a handful of
// distinct small values), which repetition-matching cannot reach. This
// is the classic binary range coder (the LZMA construction): each byte
// is coded bit by bit through a 255-node probability tree selected by
// the previous byte (order-1 context), probabilities adapting as they
// go. Everything is integer arithmetic — encoding is exactly
// deterministic, and the decoder mirrors the adaptation step for step.
//
// Truncation behaviour: a short stream decodes to *wrong* bytes rather
// than failing structurally (the coder cannot tell missing bytes from
// zeros). Callers needing tamper evidence must CRC the raw payload —
// the block trace format does.

/// Probability scale: 12-bit fixed point.
const RC_BITS: u32 = 12;
const RC_HALF: u16 = (1 << RC_BITS) / 2;
const RC_TOP: u32 = 1 << 24;

/// One adaptive binary probability. The update rate follows a fast-start
/// schedule: a freshly observed context moves in big steps (a block's
/// model must converge within a few hundred symbols), then settles to a
/// slower, more precise rate once it has evidence.
#[derive(Clone, Copy)]
struct Prob {
    p: u16,
    n: u8,
}

impl Prob {
    const FRESH: Prob = Prob { p: RC_HALF, n: 0 };

    #[inline]
    fn shift(&self) -> u32 {
        match self.n {
            0..=3 => 2,
            4..=15 => 3,
            _ => 4,
        }
    }

    #[inline]
    fn update(&mut self, bit: u32) {
        let sh = self.shift();
        self.n = self.n.saturating_add(1);
        if bit == 0 {
            self.p += ((1u16 << RC_BITS) - self.p) >> sh;
        } else {
            self.p -= self.p >> sh;
        }
    }
}

struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl RangeEncoder {
    fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low & 0x00FF_FFFF) << 8;
    }

    fn encode_bit(&mut self, p: &mut Prob, bit: u32) {
        let bound = (self.range >> RC_BITS) * (p.p as u32);
        if bit == 0 {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        p.update(bit);
        while self.range < RC_TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    src: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    fn new(src: &'a [u8]) -> Self {
        let mut d = Self {
            code: 0,
            range: u32::MAX,
            src,
            pos: 0,
        };
        // First byte is the encoder's initial zero cache.
        for _ in 0..5 {
            d.code = (d.code << 8) | d.next() as u32;
        }
        d
    }

    fn next(&mut self) -> u8 {
        let b = self.src.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn decode_bit(&mut self, p: &mut Prob) -> u32 {
        let bound = (self.range >> RC_BITS) * (p.p as u32);
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        p.update(bit);
        while self.range < RC_TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next() as u32;
        }
        bit
    }
}

/// Order-1 bit-tree model: one 255-probability tree per previous byte.
/// Allocated fresh per (de)compression so streams are independent.
fn rc_model() -> Vec<[Prob; 256]> {
    vec![[Prob::FRESH; 256]; 256]
}

/// Compress `src` with the adaptive order-1 range coder. Pair with
/// [`entropy_decompress`] and the raw length. Worst case (already-random
/// input) expands by a fraction of a percent plus a 5-byte tail.
pub fn entropy_compress(src: &[u8]) -> Vec<u8> {
    let mut model = rc_model();
    let mut enc = RangeEncoder::new();
    let mut prev: usize = 0;
    for &b in src {
        let tree = &mut model[prev];
        let mut node = 1usize;
        for i in (0..8).rev() {
            let bit = ((b >> i) & 1) as u32;
            enc.encode_bit(&mut tree[node], bit);
            node = (node << 1) | bit as usize;
        }
        prev = b as usize;
    }
    enc.finish()
}

/// Invert [`entropy_compress`], producing exactly `raw_len` bytes.
/// Structural corruption is *not* detectable here (see the module note);
/// `None` only when the stream is grossly oversized for its raw length.
pub fn entropy_decompress(src: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    // An honest stream never exceeds raw_len + tail by much; reject
    // obvious garbage so callers cannot be memory-bombed.
    if src.len() > raw_len.saturating_add(raw_len / 8) + 16 {
        return None;
    }
    let mut model = rc_model();
    let mut dec = RangeDecoder::new(src);
    let mut out = Vec::with_capacity(raw_len);
    let mut prev: usize = 0;
    for _ in 0..raw_len {
        let tree = &mut model[prev];
        let mut node = 1usize;
        for _ in 0..8 {
            let bit = dec.decode_bit(&mut tree[node]);
            node = (node << 1) | bit as usize;
        }
        let b = (node & 0xFF) as u8;
        out.push(b);
        prev = b as usize;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn roundtrip_runs_compress_hard() {
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(
            c.len() < 64,
            "run of 10k bytes must collapse, got {}",
            c.len()
        );
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn roundtrip_periodic_pattern() {
        let mut data = Vec::new();
        for i in 0..5_000u32 {
            data.extend_from_slice(&[(i % 7) as u8, 3, 1, (i % 5) as u8]);
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn roundtrip_incompressible() {
        // A SplitMix-ish stream: no long matches; output may exceed input
        // only by the group headers.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut data = Vec::new();
        for _ in 0..4_096 {
            x ^= x >> 27;
            x = x.wrapping_mul(0x2545F4914F6CDD1D);
            data.push((x >> 32) as u8);
        }
        let c = compress(&data);
        assert!(c.len() <= data.len() + 16);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn decompress_rejects_wrong_raw_len() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let c = compress(data);
        assert!(decompress(&c, data.len() + 1).is_none());
        assert!(decompress(&c, data.len() - 1).is_none());
    }

    #[test]
    fn decompress_rejects_truncation() {
        let data = vec![9u8; 300];
        let c = compress(&data);
        for cut in 1..c.len() {
            assert!(
                decompress(&c[..cut], data.len()).is_none(),
                "accepted a {cut}-byte prefix of a {}-byte stream",
                c.len()
            );
        }
    }

    #[test]
    fn decompress_rejects_bad_offset() {
        // group: 1 literal, then a match reaching before the start
        let mut bad = Vec::new();
        put_varint(&mut bad, 1);
        bad.push(b'x');
        put_varint(&mut bad, 4); // match_len
        put_varint(&mut bad, 9); // offset > produced
        assert!(decompress(&bad, 5).is_none());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn crc32_catches_single_bit_flip() {
        let data = vec![0x5Au8; 1024];
        let base = crc32(&data);
        let mut mutated = data.clone();
        mutated[517] ^= 0x10;
        assert_ne!(crc32(&mutated), base);
    }

    #[test]
    fn compression_is_deterministic() {
        let mut data = Vec::new();
        for i in 0..2_000u32 {
            data.push((i % 11) as u8);
        }
        assert_eq!(compress(&data), compress(&data));
    }

    fn rc_roundtrip(data: &[u8]) {
        let c = entropy_compress(data);
        let d = entropy_decompress(&c, data.len()).expect("plausible stream");
        assert_eq!(d, data, "range-coder roundtrip of {} bytes", data.len());
    }

    #[test]
    fn rc_roundtrips_edge_cases() {
        rc_roundtrip(b"");
        rc_roundtrip(b"a");
        rc_roundtrip(&[0x00]);
        rc_roundtrip(&[0xFF; 3]);
        rc_roundtrip(b"hello range coder");
        rc_roundtrip(&vec![0xABu8; 10_000]);
    }

    #[test]
    fn rc_roundtrips_pseudorandom_and_structured() {
        // xorshift-style pseudorandom bytes (worst case for the model)
        // and a periodic sequence (best case) both roundtrip exactly.
        let mut x = 0x2545F491_4F6CDD1Du64;
        let mut rnd = Vec::new();
        let mut per = Vec::new();
        for i in 0..8_192u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            rnd.push(x as u8);
            per.push((200 + i % 17) as u8);
        }
        rc_roundtrip(&rnd);
        rc_roundtrip(&per);
        // Order-1 adaptation: a deterministic successor structure should
        // approach zero bits per symbol, far below the LZ matcher.
        let cper = entropy_compress(&per);
        assert!(
            cper.len() * 8 < per.len(),
            "periodic data: {} bytes coded in {} bytes",
            per.len(),
            cper.len()
        );
        // Random bytes must not blow up: tiny model overhead + 5-byte tail.
        let crnd = entropy_compress(&rnd);
        assert!(crnd.len() < rnd.len() + rnd.len() / 16 + 16);
    }

    #[test]
    fn rc_skewed_bytes_beat_one_bit_per_symbol() {
        // 97% zeros / 3% ones has ~0.19 bits of entropy per symbol; the
        // adaptive coder should land well under 1 bit.
        let mut data = vec![0u8; 20_000];
        for i in (0..data.len()).step_by(33) {
            data[i] = 1;
        }
        let c = entropy_compress(&data);
        assert!(
            c.len() * 8 < data.len(),
            "skewed data: {} bytes coded in {} bytes",
            data.len(),
            c.len()
        );
        rc_roundtrip(&data);
    }

    #[test]
    fn rc_is_deterministic() {
        let data: Vec<u8> = (0..4_096u32).map(|i| (i * 7 % 251) as u8).collect();
        assert_eq!(entropy_compress(&data), entropy_compress(&data));
    }

    #[test]
    fn rc_rejects_grossly_oversized_stream() {
        assert!(entropy_decompress(&[0u8; 1_000], 8).is_none());
    }
}
