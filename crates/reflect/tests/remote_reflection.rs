//! E8: remote reflection correctness and perturbation-freedom (paper §3,
//! Figure 3).

use dejavu::{record_run, replay_run, ExecSpec, SymmetryConfig};
use djvm::{interp, CycleClock, FixedTimer, Program, ProgramBuilder, Ty, Vm, VmConfig};
use reflect::{
    mirror, CountingMemory, LocalVmMemory, ProcessMemory, RemoteReflector, SnapshotMemory, TVal,
};
use std::sync::Arc;

/// Boot a paused "application VM" with some objects on its heap.
fn app_vm() -> (Vm, Program) {
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("box_", Ty::Ref)
        .static_field("arr", Ty::Ref)
        .build();
    let boxc = pb
        .class("Box")
        .field("value", Ty::Int)
        .field("next", Ty::Ref)
        .build();
    let m = pb.method("main", 0, 2).code(|a| {
        a.line(100);
        a.new(boxc).store(0);
        a.load(0).iconst(42).put_field(0);
        a.line(101);
        a.new(boxc).store(1);
        a.load(1).iconst(7).put_field(0);
        a.load(0).load(1).put_field_ref(1); // box.next = second
        a.load(0).put_static(g, 0);
        a.line(102);
        a.iconst(5).new_array_int().put_static(g, 1);
        a.get_static(g, 1).iconst(3).iconst(99).astore();
        a.line(103);
        a.halt();
    });
    let p = pb.finish(m).unwrap();
    let vm = Vm::boot(
        Arc::new(p.clone()),
        VmConfig::default(),
        Box::new(FixedTimer::new(100_000)),
        Box::new(CycleClock::new(0, 100)),
    )
    .unwrap();
    (vm, p)
}

fn run_to_halt(vm: &mut Vm) {
    let mut hook = djvm::Passthrough;
    interp::run(vm, &mut hook, 1_000_000);
}

#[test]
fn fig3_line_number_query_against_remote_space() {
    let (mut vm, p) = app_vm();
    run_to_halt(&mut vm);
    // Ground truth: in-process (local) line table.
    let main = p.entry;
    let truth: Vec<u32> = p.method(main).lines.clone();

    let mem = LocalVmMemory::new(&vm);
    let mut refl = RemoteReflector::new(Arc::new(p.clone()), &mem);
    refl.map_boot_method_table(vm.boot_image.method_table);
    for offset in 0..truth.len() as u32 {
        let got = refl.line_number_of(main, offset).unwrap();
        assert_eq!(got, truth[offset as usize] as i64, "offset {offset}");
    }
    // Out-of-range offset returns 0 per Fig. 3's code.
    assert_eq!(refl.line_number_of(main, truth.len() as u32).unwrap(), 0);
    assert!(refl.steps > 0, "the query is interpreted bytecode");
}

#[test]
fn mapped_method_is_intercepted_not_executed() {
    let (mut vm, p) = app_vm();
    run_to_halt(&mut vm);
    let mem = LocalVmMemory::new(&vm);
    let program = Arc::new(p);
    let mut refl = RemoteReflector::new(Arc::clone(&program), &mem);
    // Unmapped, sys$getMethods executes its stub body and returns null.
    let raw = refl
        .invoke(program.builtins.get_methods, &[])
        .unwrap()
        .unwrap();
    assert_eq!(raw, TVal::Null);
    // Mapped, the same invocation returns the remote object instead.
    refl.map_boot_method_table(vm.boot_image.method_table);
    let mapped = refl
        .invoke(program.builtins.get_methods, &[])
        .unwrap()
        .unwrap();
    assert_eq!(mapped, TVal::Remote(vm.boot_image.method_table));
}

#[test]
fn remote_object_graph_navigation_and_mirrors() {
    let (mut vm, p) = app_vm();
    run_to_halt(&mut vm);
    let program = Arc::new(p);
    let mem = LocalVmMemory::new(&vm);

    // Navigate: class object of G -> box_ -> next -> value.
    let g = program.class_id_by_name("G").unwrap();
    let gobj = vm.class_objects[g as usize].expect("G loaded");
    let box_addr = mem.read_word(gobj + 1).unwrap(); // static 0
    assert_ne!(box_addr, 0);
    assert_eq!(
        mirror::class_name(&mem, &program, box_addr).as_deref(),
        Some("Box")
    );
    let fields = mirror::read_fields(&mem, &program, box_addr).unwrap();
    assert_eq!(fields[0], ("value".to_string(), "42".to_string()));
    assert!(fields[1].1.starts_with("Box@"), "{:?}", fields[1]);

    // Arrays clone correctly.
    let arr_addr = mem.read_word(gobj + 2).unwrap();
    let arr = mirror::read_int_array(&mem, arr_addr).unwrap();
    assert_eq!(arr, vec![0, 0, 0, 99, 0]);

    // Strings (reflection metadata method names) clone correctly.
    let table = vm.boot_image.method_table;
    let vm_method0 = mem.read_word(table + 2).unwrap();
    let name_obj = mem.read_word(vm_method0 + 2).unwrap(); // field 1 = name
    let name = mirror::read_string(&mem, &program, name_obj).unwrap();
    assert!(!name.is_empty());
}

#[test]
fn snapshot_memory_gives_same_answers() {
    let (mut vm, p) = app_vm();
    run_to_halt(&mut vm);
    let program = Arc::new(p);
    let live = LocalVmMemory::new(&vm);
    let snap = SnapshotMemory::from_vm(&vm);
    let mut r1 = RemoteReflector::new(Arc::clone(&program), &live);
    let mut r2 = RemoteReflector::new(Arc::clone(&program), &snap);
    r1.map_boot_method_table(vm.boot_image.method_table);
    r2.map_boot_method_table(vm.boot_image.method_table);
    for off in 0..6 {
        assert_eq!(
            r1.line_number_of(program.entry, off).unwrap(),
            r2.line_number_of(program.entry, off).unwrap()
        );
    }
}

#[test]
fn mutation_bytecodes_rejected() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").field("x", Ty::Int).build();
    let bad = pb.method_typed("bad", vec![Ty::Ref], 1, None).code(|a| {
        a.load(0).iconst(1).put_field(0);
        a.ret();
    });
    let m = pb.method("main", 0, 1).code(|a| {
        a.new(c).store(0);
        a.halt();
    });
    let p = pb.finish(m).unwrap();
    let mut vm = Vm::boot(
        Arc::new(p.clone()),
        VmConfig::default(),
        Box::new(FixedTimer::new(100_000)),
        Box::new(CycleClock::new(0, 100)),
    )
    .unwrap();
    run_to_halt(&mut vm);
    let mem = LocalVmMemory::new(&vm);
    let mut refl = RemoteReflector::new(Arc::new(p), &mem);
    // find any remote object: the thread object will do
    let tobj = vm.threads[0].thread_obj;
    let err = refl.invoke(bad, &[TVal::Remote(tobj)]).unwrap_err();
    assert!(matches!(
        err,
        reflect::ReflectError::Unsupported("mutation")
    ));
}

#[test]
fn e8_queries_do_not_perturb_a_replay() {
    // The perturbation-free property: stop a replay mid-flight, run a pile
    // of reflective queries, resume — the replay still matches the record
    // exactly. (An in-process query would break the symmetry and diverge,
    // shown in the companion test below.)
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "racy_counter")
        .unwrap();
    let mut spec = ExecSpec::new((w.build)()).with_seed(5);
    spec.timer_base = 37;
    spec.timer_jitter = 13;
    let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);

    // Replay manually so we can pause in the middle.
    let program = Arc::clone(&spec.program);
    let mut vm = Vm::boot(
        program.clone(),
        spec.vm.clone(),
        Box::new(FixedTimer::new(1_000_000)),
        Box::new(CycleClock::new(spec.clock_origin, spec.cycles_per_ms)),
    )
    .unwrap();
    let mut replayer = dejavu::DejaVuReplayer::new(trace, SymmetryConfig::full());
    {
        use djvm::hook::ExecHook;
        replayer.on_init(&mut vm);
    }
    interp::run(&mut vm, &mut replayer, 15_000); // pause mid-execution
    assert!(vm.status.is_running());

    let digest_before = vm.state_digest();
    {
        // The tool inspects the paused VM through remote reflection only.
        let mem = CountingMemory::new(LocalVmMemory::new(&vm));
        let mut refl = RemoteReflector::new(program.clone(), &mem);
        refl.map_boot_method_table(vm.boot_image.method_table);
        for mid in 0..program.methods.len() as u32 {
            for off in 0..3 {
                let _ = refl.line_number_of(mid, off);
            }
        }
        for t in &vm.threads {
            let _ = mirror::describe(&mem, &program, t.thread_obj);
        }
        assert!(mem.reads() > 100, "the tool really did work remotely");
    }
    assert_eq!(
        vm.state_digest(),
        digest_before,
        "remote reflection must not perturb the application VM"
    );

    // Resume to completion: replay still exactly matches the record.
    interp::run(&mut vm, &mut replayer, u64::MAX >> 1);
    assert_eq!(vm.output, rec.output);
    assert_eq!(vm.fingerprint.digest(), rec.fingerprint);
    assert_eq!(vm.state_digest(), rec.state_digest);
    assert!(replayer.desyncs().is_empty());
}

#[test]
fn e8_in_process_reflection_breaks_replay() {
    // The paper's motivating failure (§3): if the *application* VM executes
    // the reflective query mid-replay, its state changes (frames, yield
    // points, possibly allocation) and deterministic replay is lost.
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == "racy_counter")
        .unwrap();
    let mut spec = ExecSpec::new((w.build)()).with_seed(5);
    spec.timer_base = 37;
    spec.timer_jitter = 13;
    let (rec, trace) = record_run(&spec, w.natives, SymmetryConfig::full(), true);

    let program = Arc::clone(&spec.program);
    let mut vm = Vm::boot(
        program.clone(),
        spec.vm.clone(),
        Box::new(FixedTimer::new(1_000_000)),
        Box::new(CycleClock::new(spec.clock_origin, spec.cycles_per_ms)),
    )
    .unwrap();
    let mut replayer = dejavu::DejaVuReplayer::new(trace, SymmetryConfig::full());
    {
        use djvm::hook::ExecHook;
        replayer.on_init(&mut vm);
    }
    interp::run(&mut vm, &mut replayer, 15_000);
    assert!(vm.status.is_running());

    // In-process query: make the application VM itself run
    // sys$lineNumberOf... which executes yield points inside the app VM,
    // desynchronizing the logical clock.
    let q = program.builtins.get_line_number_at;
    let _ = q;
    let ln = program.builtins.line_number_of;
    // Push a frame on the *application* VM (the in-process debugger) and
    // let it run to produce the answer.
    vm.push_frame_public(ln, &[0, 1]).unwrap();
    interp::run(&mut vm, &mut replayer, 200); // the query executes in-process

    // Resume: the replay no longer matches the record.
    interp::run(&mut vm, &mut replayer, u64::MAX >> 1);
    let diverged = vm.fingerprint.digest() != rec.fingerprint
        || vm.output != rec.output
        || !replayer.desyncs().is_empty()
        || vm.state_digest() != rec.state_digest;
    assert!(diverged, "in-process reflection must break replay");
}

#[test]
fn tcp_remote_memory_round_trips() {
    let (mut vm, p) = app_vm();
    run_to_halt(&mut vm);
    let program = Arc::new(p);
    let truth: Vec<u32> = program.method(program.entry).lines.clone();
    let table = vm.boot_image.method_table;
    let entry = program.entry;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || reflect::serve_one(vm, listener).unwrap());

    {
        let mem = reflect::TcpMemory::connect(&addr.to_string()).unwrap();
        let mut refl = RemoteReflector::new(Arc::clone(&program), &mem);
        refl.map_boot_method_table(table);
        let got = refl.line_number_of(entry, 2).unwrap();
        assert_eq!(got, truth[2] as i64);
        assert!(mem.round_trips() > 3, "words were fetched over TCP");
    } // drop closes the connection; server returns
    let _vm = server.join().unwrap();
}
