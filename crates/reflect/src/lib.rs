//! # reflect — remote reflection (paper §3)
//!
//! A perturbation-free way for an out-of-process tool to run the
//! application VM's *own* reflection methods against the application VM's
//! *address space*:
//!
//! * [`memory`] — the `ptrace` contract: read a word at an address without
//!   the remote VM executing anything (in-process, snapshot, or TCP via
//!   [`tcpmem`]);
//! * [`remote`] — the tool-side interpreter with remote objects and mapped
//!   methods (the 23-bytecode extension of §3.4);
//! * [`mirror`] — cloned typed views (strings, arrays, field maps) for
//!   display, per §3.3.
//!
//! The flagship demonstration is the paper's Figure-3 query,
//! [`remote::RemoteReflector::line_number_of`]: `Debugger.lineNumberOf`
//! invokes the mapped `VM_Dictionary.getMethods()`, indexes the remote
//! `VM_Method[]`, and virtually dispatches `getLineNumberAt` — all in the
//! tool, all against remote data, with the application VM never running a
//! single instruction.

pub mod memory;
pub mod mirror;
pub mod remote;
pub mod tcpmem;

pub use memory::{CountingMemory, LocalVmMemory, ProcessMemory, SnapshotMemory};
pub use remote::{ReflectError, RemoteReflector, TVal};
pub use tcpmem::{serve_one, TcpMemory};
