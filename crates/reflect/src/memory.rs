//! Cross-address-space word reads: the `ptrace` analogue.
//!
//! Remote reflection's whole operating-system requirement is "access across
//! processes ... typically provided by the system debugging interface,
//! which in the Jalapeño implementation is the Unix ptrace facility" (§3.2)
//! — i.e., the ability to read a word at an address in the remote process
//! **without the remote process executing any code**. [`ProcessMemory`]
//! captures exactly that contract; three implementations cover in-process
//! inspection of a paused VM, snapshot files, and a live TCP channel (see
//! [`crate::tcpmem`]).

use djvm::heap::{Addr, Word};
use djvm::Vm;

/// Read-only access to the application VM's address space.
pub trait ProcessMemory {
    /// Read one word; `None` if the address is outside the space.
    fn read_word(&self, addr: Addr) -> Option<Word>;
}

/// Direct reads of a (paused) VM in the same process — what a debugger gets
/// from ptrace after stopping the target. Holding `&Vm` guarantees at the
/// type level that the application cannot run (and hence cannot be
/// perturbed) while the tool inspects it.
pub struct LocalVmMemory<'a> {
    vm: &'a Vm,
}

impl<'a> LocalVmMemory<'a> {
    pub fn new(vm: &'a Vm) -> Self {
        Self { vm }
    }
}

impl ProcessMemory for LocalVmMemory<'_> {
    fn read_word(&self, addr: Addr) -> Option<Word> {
        self.vm.heap.read_word(addr)
    }
}

/// Reads from a captured heap image (core-dump style debugging).
pub struct SnapshotMemory {
    words: Vec<Word>,
}

impl SnapshotMemory {
    pub fn from_vm(vm: &Vm) -> Self {
        Self {
            words: vm.heap.mem_snapshot(),
        }
    }

    pub fn from_words(words: Vec<Word>) -> Self {
        Self { words }
    }
}

impl ProcessMemory for SnapshotMemory {
    fn read_word(&self, addr: Addr) -> Option<Word> {
        self.words.get(addr as usize).copied()
    }
}

/// Counts reads (experiment instrumentation: reflection query cost in
/// remote-read operations).
pub struct CountingMemory<M> {
    inner: M,
    reads: std::cell::Cell<u64>,
}

impl<M: ProcessMemory> CountingMemory<M> {
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            reads: std::cell::Cell::new(0),
        }
    }

    pub fn reads(&self) -> u64 {
        self.reads.get()
    }
}

impl<M: ProcessMemory> ProcessMemory for CountingMemory<M> {
    fn read_word(&self, addr: Addr) -> Option<Word> {
        self.reads.set(self.reads.get() + 1);
        self.inner.read_word(addr)
    }
}
