//! Remote memory over TCP: genuinely cross-process `ptrace`-style reads.
//!
//! The wire protocol is intentionally minimal — one word per round trip —
//! because that is the contract remote reflection needs (§3.2): the remote
//! side runs a dumb read server that executes **no application or VM
//! code** on behalf of the tool; it just copies words out of the paused
//! VM's address space.
//!
//! Frame format: request = 8-byte little-endian address; response = 1
//! status byte (1 = ok) + 8-byte little-endian word.

use crate::memory::ProcessMemory;
use djvm::heap::{Addr, Word};
use djvm::Vm;
use std::cell::RefCell;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// Serve one tool connection against a paused VM, then return the VM
/// untouched. Run this on a thread that owns the application VM while it
/// is stopped at a breakpoint.
pub fn serve_one(vm: Vm, listener: TcpListener) -> std::io::Result<Vm> {
    let (mut conn, _) = listener.accept()?;
    let mut req = [0u8; 8];
    loop {
        match conn.read_exact(&mut req) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let addr = Addr::from_le_bytes(req);
        let mut resp = [0u8; 9];
        match vm.heap.read_word(addr) {
            Some(w) => {
                resp[0] = 1;
                resp[1..].copy_from_slice(&w.to_le_bytes());
            }
            None => {
                resp[0] = 0;
            }
        }
        conn.write_all(&resp)?;
    }
    Ok(vm)
}

/// Tool-side remote memory: each read is one TCP round trip.
pub struct TcpMemory {
    stream: RefCell<TcpStream>,
    reads: std::cell::Cell<u64>,
}

impl TcpMemory {
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream: RefCell::new(stream),
            reads: std::cell::Cell::new(0),
        })
    }

    /// Round trips performed so far.
    pub fn round_trips(&self) -> u64 {
        self.reads.get()
    }
}

impl ProcessMemory for TcpMemory {
    fn read_word(&self, addr: Addr) -> Option<Word> {
        let mut s = self.stream.borrow_mut();
        self.reads.set(self.reads.get() + 1);
        s.write_all(&addr.to_le_bytes()).ok()?;
        let mut resp = [0u8; 9];
        s.read_exact(&mut resp).ok()?;
        if resp[0] != 1 {
            return None;
        }
        Some(Word::from_le_bytes(resp[1..].try_into().unwrap()))
    }
}
