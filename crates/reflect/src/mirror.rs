//! Typed convenience mirrors over the remote space.
//!
//! §3.3: "For our debugger, however, it proved sufficient to clone the
//! remote objects and the remote arrays of primitives." These helpers do
//! exactly that — materialize tool-local copies of remote strings, arrays,
//! and object field maps for display.

use crate::memory::ProcessMemory;
use djvm::heap::{Addr, Header};
use djvm::{Program, Ty};

/// Read the remote object's decoded header.
pub fn header_of(mem: &dyn ProcessMemory, addr: Addr) -> Option<Header> {
    mem.read_word(addr).map(Header::decode)
}

/// Class name of a remote object (arrays and class objects included).
pub fn class_name(mem: &dyn ProcessMemory, program: &Program, addr: Addr) -> Option<String> {
    let h = header_of(mem, addr)?;
    if h.is_stack {
        return Some("[stack]".into());
    }
    if h.is_array {
        return Some(if h.ref_elems { "Object[]" } else { "int[]" }.into());
    }
    let name = &program.class(h.class_id).name;
    Some(if h.is_classobj {
        format!("<class {name}>")
    } else {
        name.clone()
    })
}

/// Clone a remote int array.
pub fn read_int_array(mem: &dyn ProcessMemory, addr: Addr) -> Option<Vec<i64>> {
    let h = header_of(mem, addr)?;
    if !h.is_array || h.ref_elems || h.is_stack {
        return None;
    }
    let len = mem.read_word(addr + 1)? as usize;
    (0..len)
        .map(|i| mem.read_word(addr + 2 + i as u64).map(|w| w as i64))
        .collect()
}

/// Clone a remote String object (builtin `String { chars }` layout).
pub fn read_string(mem: &dyn ProcessMemory, program: &Program, addr: Addr) -> Option<String> {
    let h = header_of(mem, addr)?;
    if h.is_array || h.class_id != program.builtins.string_class {
        return None;
    }
    let chars = mem.read_word(addr + 1)?;
    let bytes: Vec<u8> = read_int_array(mem, chars)?
        .into_iter()
        .map(|v| v as u8)
        .collect();
    String::from_utf8(bytes).ok()
}

/// A cloned view of one remote scalar object: `(field name, rendered value)`.
pub fn read_fields(
    mem: &dyn ProcessMemory,
    program: &Program,
    addr: Addr,
) -> Option<Vec<(String, String)>> {
    let h = header_of(mem, addr)?;
    if h.is_array || h.is_stack {
        return None;
    }
    let decls = if h.is_classobj {
        program.class(h.class_id).statics.clone()
    } else {
        program.flattened_fields(h.class_id)
    };
    let mut out = Vec::with_capacity(decls.len());
    for (i, d) in decls.iter().enumerate() {
        let raw = mem.read_word(addr + 1 + i as u64)?;
        let rendered = match d.ty {
            Ty::Int => format!("{}", raw as i64),
            Ty::Ref => {
                if raw == 0 {
                    "null".to_string()
                } else {
                    let cname = class_name(mem, program, raw).unwrap_or_else(|| "?".into());
                    format!("{cname}@{raw}")
                }
            }
        };
        out.push((d.name.clone(), rendered));
    }
    Some(out)
}

/// Render a one-line description of any remote object.
pub fn describe(mem: &dyn ProcessMemory, program: &Program, addr: Addr) -> String {
    if addr == 0 {
        return "null".into();
    }
    let Some(h) = header_of(mem, addr) else {
        return format!("<bad address {addr}>");
    };
    let name = class_name(mem, program, addr).unwrap_or_else(|| "?".into());
    if h.is_array {
        let len = mem.read_word(addr + 1).unwrap_or(0);
        format!("{name}(len={len})@{addr} #{}", h.serial)
    } else if let Some(s) = read_string(mem, program, addr) {
        format!("String({s:?})@{addr} #{}", h.serial)
    } else {
        let fields = read_fields(mem, program, addr)
            .map(|fs| {
                fs.iter()
                    .map(|(n, v)| format!("{n}={v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default();
        format!("{name}{{{fields}}}@{addr} #{}", h.serial)
    }
}
