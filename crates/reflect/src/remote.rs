//! The tool-side reflection interpreter with **remote objects** (§3).
//!
//! "Remote reflection solves this problem by decoupling the data and its
//! reflection code, thus allowing a program in one JVM to execute a
//! reflection method that operates directly on an object residing in
//! another JVM."
//!
//! The tool loads the *same* program (classes, methods, vtables — the boot
//! image) as the application and interprets reflection methods as
//! bytecode. Two extensions, exactly as §3.4 describes:
//!
//! 1. **Mapped methods** — `invokestatic`/`invokevirtual` of a method on
//!    the mapping list is intercepted: the actual invocation is not made;
//!    a *remote object* (type + address in the remote space) is returned.
//! 2. **Reference-touching bytecodes** — field loads, array loads, array
//!    length, virtual dispatch, identity hash, `instanceof`, reference
//!    equality — operate on remote objects by reading words from the
//!    remote address space ([`crate::memory::ProcessMemory`]) and pushing
//!    either a primitive value or a new remote object.
//!
//! The interpreter is read-only: bytecodes that would *mutate* the remote
//! space (stores, allocation, synchronization) are rejected — "the
//! debugger only makes queries and does not modify the state of the
//! application JVM" (§3.2).

use crate::memory::ProcessMemory;
use djvm::heap::{Addr, Header};
use djvm::{MethodId, Op, Program, Ty};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A tool-side value: a primitive, or a proxy for an object in the remote
/// JVM. "To implement the remote object, it was sufficient to record the
/// type of the object and its real address" (§3.3) — we defer the type to
/// the remote header word, read on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TVal {
    Int(i64),
    Null,
    Remote(Addr),
}

impl TVal {
    pub fn as_int(self) -> Option<i64> {
        match self {
            TVal::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_remote(self) -> Option<Addr> {
        match self {
            TVal::Remote(a) => Some(a),
            _ => None,
        }
    }
}

/// Reflection-interpretation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReflectError {
    /// Bytecode that cannot be executed against a remote space (mutation,
    /// allocation, threading, I/O).
    Unsupported(&'static str),
    /// A remote read fell outside the application's address space.
    BadAddress(Addr),
    NullDeref,
    TypeConfusion,
    IndexOutOfBounds,
    StackUnderflow,
    CallDepthExceeded,
    /// The interpreted method misbehaved (verifier should prevent this).
    Internal(&'static str),
}

const MAX_DEPTH: usize = 64;

/// The remote-reflection interpreter.
pub struct RemoteReflector<'m> {
    program: Arc<Program>,
    mem: &'m dyn ProcessMemory,
    mapped: BTreeMap<MethodId, TVal>,
    /// Interpreted bytecodes (experiment counter).
    pub steps: u64,
}

impl<'m> RemoteReflector<'m> {
    /// `program` must be the same program the remote VM booted (the shared
    /// boot image); `mem` is the remote address space.
    pub fn new(program: Arc<Program>, mem: &'m dyn ProcessMemory) -> Self {
        Self {
            program,
            mem,
            mapped: BTreeMap::new(),
            steps: 0,
        }
    }

    /// Register a mapped method: invoking it returns `root` instead of
    /// executing its body (§3.1 "the user specifies a list of reflection
    /// methods that are said to be mapped").
    pub fn map_method(&mut self, method: MethodId, root: TVal) {
        self.mapped.insert(method, root);
    }

    /// Convenience: map the builtin `sys$getMethods` to the remote boot
    /// image's method table.
    pub fn map_boot_method_table(&mut self, remote_method_table: Addr) {
        let m = self.program.builtins.get_methods;
        self.map_method(m, TVal::Remote(remote_method_table));
    }

    fn read(&self, addr: Addr) -> Result<u64, ReflectError> {
        self.mem
            .read_word(addr)
            .ok_or(ReflectError::BadAddress(addr))
    }

    fn remote_header(&self, addr: Addr) -> Result<Header, ReflectError> {
        Ok(Header::decode(self.read(addr)?))
    }

    /// Invoke a method of the shared program against the remote space.
    pub fn invoke(
        &mut self,
        method: MethodId,
        args: &[TVal],
    ) -> Result<Option<TVal>, ReflectError> {
        self.invoke_depth(method, args, 0)
    }

    fn invoke_depth(
        &mut self,
        method: MethodId,
        args: &[TVal],
        depth: usize,
    ) -> Result<Option<TVal>, ReflectError> {
        if depth > MAX_DEPTH {
            return Err(ReflectError::CallDepthExceeded);
        }
        if let Some(&root) = self.mapped.get(&method) {
            // Mapped: "intercepted so that the actual invocation is not
            // made" (§3.4).
            return Ok(Some(root));
        }
        let program = Arc::clone(&self.program);
        let m = program.method(method);
        if args.len() != m.nargs as usize {
            return Err(ReflectError::Internal("arity"));
        }
        let mut locals = vec![TVal::Null; m.nlocals as usize];
        locals[..args.len()].copy_from_slice(args);
        let mut stack: Vec<TVal> = Vec::with_capacity(16);
        let mut pc = 0usize;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(ReflectError::StackUnderflow)?
            };
        }
        macro_rules! pop_int {
            () => {
                pop!().as_int().ok_or(ReflectError::TypeConfusion)?
            };
        }

        loop {
            let op = m.ops[pc];
            self.steps += 1;
            match op {
                Op::Const(v) => stack.push(TVal::Int(v)),
                Op::Null => stack.push(TVal::Null),
                Op::Load(i) => stack.push(locals[i as usize]),
                Op::Store(i) => locals[i as usize] = pop!(),
                Op::Dup => {
                    let v = *stack.last().ok_or(ReflectError::StackUnderflow)?;
                    stack.push(v);
                }
                Op::Pop => {
                    pop!();
                }
                Op::Swap => {
                    let a = pop!();
                    let b = pop!();
                    stack.push(a);
                    stack.push(b);
                }
                Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Div
                | Op::Rem
                | Op::BitAnd
                | Op::BitOr
                | Op::BitXor
                | Op::Shl
                | Op::Shr
                | Op::Eq
                | Op::Ne
                | Op::Lt
                | Op::Le
                | Op::Gt
                | Op::Ge => {
                    let b = pop_int!();
                    let a = pop_int!();
                    let r = match op {
                        Op::Add => a.wrapping_add(b),
                        Op::Sub => a.wrapping_sub(b),
                        Op::Mul => a.wrapping_mul(b),
                        Op::Div => {
                            if b == 0 {
                                return Err(ReflectError::Internal("div0"));
                            }
                            a.wrapping_div(b)
                        }
                        Op::Rem => {
                            if b == 0 {
                                return Err(ReflectError::Internal("rem0"));
                            }
                            a.wrapping_rem(b)
                        }
                        Op::BitAnd => a & b,
                        Op::BitOr => a | b,
                        Op::BitXor => a ^ b,
                        Op::Shl => a.wrapping_shl(b as u32 & 63),
                        Op::Shr => a.wrapping_shr(b as u32 & 63),
                        Op::Eq => (a == b) as i64,
                        Op::Ne => (a != b) as i64,
                        Op::Lt => (a < b) as i64,
                        Op::Le => (a <= b) as i64,
                        Op::Gt => (a > b) as i64,
                        Op::Ge => (a >= b) as i64,
                        _ => unreachable!(),
                    };
                    stack.push(TVal::Int(r));
                }
                Op::Neg => {
                    let a = pop_int!();
                    stack.push(TVal::Int(a.wrapping_neg()));
                }
                Op::RefEq => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(TVal::Int((a == b) as i64));
                }
                Op::Goto(t) => {
                    pc = t as usize;
                    continue;
                }
                Op::If(t) => {
                    if pop_int!() != 0 {
                        pc = t as usize;
                        continue;
                    }
                }
                Op::IfZ(t) => {
                    if pop_int!() == 0 {
                        pc = t as usize;
                        continue;
                    }
                }
                // ---- the extended reference bytecodes (§3.4) ----
                Op::GetField { idx, ty } => {
                    let obj = pop!();
                    let addr = match obj {
                        TVal::Remote(a) => a,
                        TVal::Null => return Err(ReflectError::NullDeref),
                        TVal::Int(_) => return Err(ReflectError::TypeConfusion),
                    };
                    let v = self.read(addr + 1 + idx as u64)?;
                    stack.push(lift(v, ty));
                }
                Op::ALoad(ty) => {
                    let i = pop_int!();
                    let arr = pop!().as_remote().ok_or(ReflectError::NullDeref)?;
                    let len = self.read(arr + 1)? as i64;
                    if i < 0 || i >= len {
                        return Err(ReflectError::IndexOutOfBounds);
                    }
                    let v = self.read(arr + 2 + i as u64)?;
                    stack.push(lift(v, ty));
                }
                Op::ArrayLen => {
                    let arr = pop!().as_remote().ok_or(ReflectError::NullDeref)?;
                    stack.push(TVal::Int(self.read(arr + 1)? as i64));
                }
                Op::IdentityHash => {
                    let obj = pop!().as_remote().ok_or(ReflectError::NullDeref)?;
                    let h = self.remote_header(obj)?;
                    stack.push(TVal::Int(h.serial as i64));
                }
                Op::InstanceOf(class) => {
                    let v = pop!();
                    let r = match v {
                        TVal::Remote(a) => {
                            let h = self.remote_header(a)?;
                            !h.is_array
                                && !h.is_classobj
                                && self.program.is_subclass(h.class_id, class)
                        }
                        _ => false,
                    };
                    stack.push(TVal::Int(r as i64));
                }
                Op::Call(callee) => {
                    let n = self.program.method(callee).nargs as usize;
                    if stack.len() < n {
                        return Err(ReflectError::StackUnderflow);
                    }
                    let a: Vec<TVal> = stack.split_off(stack.len() - n);
                    let ret = self.invoke_depth(callee, &a, depth + 1)?;
                    if let Some(v) = ret {
                        stack.push(v);
                    }
                }
                Op::CallVirtual { class, slot } => {
                    // Dispatch through the *remote* object's header: read
                    // its class id from the remote space, then use the
                    // locally loaded vtable (same boot image).
                    let static_callee = self.program.class(class).vtable[slot as usize];
                    let n = self.program.method(static_callee).nargs as usize;
                    if stack.len() < n {
                        return Err(ReflectError::StackUnderflow);
                    }
                    let a: Vec<TVal> = stack.split_off(stack.len() - n);
                    let recv = a[0].as_remote().ok_or(ReflectError::NullDeref)?;
                    let h = self.remote_header(recv)?;
                    if h.is_array || h.is_classobj || !self.program.is_subclass(h.class_id, class) {
                        return Err(ReflectError::TypeConfusion);
                    }
                    let callee = self.program.class(h.class_id).vtable[slot as usize];
                    let ret = self.invoke_depth(callee, &a, depth + 1)?;
                    if let Some(v) = ret {
                        stack.push(v);
                    }
                }
                Op::Ret => return Ok(None),
                Op::RetVal => return Ok(Some(pop!())),
                // ---- everything that would perturb the remote JVM ----
                Op::PutField { .. } | Op::PutStatic(..) | Op::AStore(_) => {
                    return Err(ReflectError::Unsupported("mutation"))
                }
                Op::New(_) | Op::NewArray(_) | Op::Str(_) => {
                    return Err(ReflectError::Unsupported("allocation"))
                }
                Op::GetStatic(..) => {
                    // Statics live in lazily loaded class objects whose
                    // addresses the tool does not know a priori; expose them
                    // via mapped methods instead.
                    return Err(ReflectError::Unsupported("static (use a mapped method)"));
                }
                Op::MonitorEnter
                | Op::MonitorExit
                | Op::Wait
                | Op::TimedWait
                | Op::Notify
                | Op::NotifyAll
                | Op::Spawn { .. }
                | Op::Join
                | Op::Interrupt
                | Op::YieldNow
                | Op::Sleep
                | Op::CurrentThread => return Err(ReflectError::Unsupported("threading")),
                Op::Now | Op::NativeCall { .. } | Op::Print | Op::PrintStr(_) | Op::Halt => {
                    return Err(ReflectError::Unsupported("environment"))
                }
            }
            pc += 1;
        }
    }

    /// Execute the paper's Figure-3 query end to end: the line number of
    /// `method` at bytecode offset `offset`, resolved entirely from the
    /// remote address space.
    pub fn line_number_of(&mut self, method: MethodId, offset: u32) -> Result<i64, ReflectError> {
        let q = self.program.builtins.line_number_of;
        let r = self.invoke(q, &[TVal::Int(method as i64), TVal::Int(offset as i64)])?;
        r.and_then(TVal::as_int)
            .ok_or(ReflectError::Internal("no result"))
    }
}

fn lift(raw: u64, ty: Ty) -> TVal {
    match ty {
        Ty::Int => TVal::Int(raw as i64),
        Ty::Ref => {
            if raw == 0 {
                TVal::Null
            } else {
                TVal::Remote(raw)
            }
        }
    }
}
