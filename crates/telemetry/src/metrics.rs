//! The metrics registry: named counters, gauges and log2-bucketed
//! histograms with stable ordering and deterministic JSON export.
//!
//! Determinism discipline: `BTreeMap` keys give sorted iteration, every
//! exported value is an exact integer (no floats, no wall-clock
//! timestamps), so two identical runs serialize to byte-identical JSON.

use codec::Json;
use std::collections::BTreeMap;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k` (for
/// `k >= 1`) holds values whose bit length is `k`, i.e. the half-open
/// range `[2^(k-1), 2^k)`. `u64::MAX` has bit length 64, so 65 buckets
/// cover the whole domain.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram over `u64` samples.
///
/// Exact `count`/`sum`/`min`/`max` ride along so coarse bucketing never
/// loses the headline statistics. `sum` saturates rather than wrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a sample: 0 for the value 0, otherwise the bit
/// length of the value (1 for 1, 2 for 2..=3, ..., 64 for the top half
/// of the domain including `u64::MAX`).
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lo(b: usize) -> u64 {
    match b {
        0 => 0,
        1 => 1,
        b => 1u64 << (b - 1),
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Occupancy of one bucket.
    pub fn bucket(&self, b: usize) -> u64 {
        self.buckets[b]
    }

    /// Deterministic quantile estimate at `permille` (500 = p50,
    /// 990 = p99); `None` when empty.
    ///
    /// The estimate locates the sample of 0-indexed rank
    /// `(count-1)*permille/1000` in the bucket array, then interpolates
    /// linearly across the bucket's value range in pure integer
    /// arithmetic (`u128` intermediates, no floats), clamping to the
    /// exact observed `[min, max]`. Error is bounded by the bucket width
    /// — a factor of 2 — which is the precision the log2 sketch pays for
    /// its fixed size.
    pub fn quantile(&self, permille: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count - 1) as u128 * permille.min(1000) as u128 / 1000) as u64;
        let mut seen = 0u64;
        for b in 0..BUCKETS {
            let n = self.buckets[b];
            if n == 0 {
                continue;
            }
            if rank < seen + n {
                let lo = bucket_lo(b);
                let hi = if b + 1 < BUCKETS {
                    bucket_lo(b + 1) - 1
                } else {
                    u64::MAX
                };
                let i = rank - seen;
                let est = lo as u128 + (hi - lo) as u128 * i as u128 / n as u128;
                return Some((est as u64).clamp(self.min, self.max));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// Fold another histogram into this one. The merge is exact for
    /// every exported statistic except `sum` saturation: bucket counts,
    /// `count`, `min` and `max` of the merge equal those of observing
    /// both sample streams into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for b in 0..BUCKETS {
            self.buckets[b] += other.buckets[b];
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Deterministic JSON: non-empty buckets as `[index, count]` pairs in
    /// ascending index order, plus the exact aggregates.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| Json::Arr(vec![Json::UInt(b as u64), Json::UInt(n)]))
            .collect();
        Json::obj(vec![
            ("buckets", Json::Arr(buckets)),
            ("count", Json::UInt(self.count)),
            ("max", Json::UInt(if self.count > 0 { self.max } else { 0 })),
            ("min", Json::UInt(if self.count > 0 { self.min } else { 0 })),
            ("p50", Json::UInt(self.quantile(500).unwrap_or(0))),
            ("p95", Json::UInt(self.quantile(950).unwrap_or(0))),
            ("p99", Json::UInt(self.quantile(990).unwrap_or(0))),
            ("sum", Json::UInt(self.sum)),
        ])
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A registry of named metrics. Names are `&'static str` by convention
/// (call sites name their metric once); `BTreeMap` keeps export order
/// stable regardless of registration order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to a counter (creating it at 0).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increment a counter by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Set a gauge to an instantaneous value.
    pub fn set_gauge(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Observe a sample into a named histogram (creating it empty).
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Fold another registry into this one: counters and histograms
    /// accumulate, gauges take the other's value (last writer wins, the
    /// gauge contract). This is how per-shard registries aggregate into
    /// one fleet-wide snapshot without a global metrics lock.
    pub fn merge(&mut self, other: &Registry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            self.gauges.insert(k, v);
        }
        for (&k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// Deterministic JSON export: three sorted-key objects.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), Json::UInt(v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), Json::Int(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), h.to_json()))
                .collect(),
        );
        Json::obj(vec![
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_zero_one_max() {
        // The satellite-mandated edge cases: 0, 1, u64::MAX.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Interior edges: powers of two open a new bucket.
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1 << 63), 64);
        assert_eq!(bucket_of((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for b in 0..BUCKETS {
            let lo = bucket_lo(b);
            assert_eq!(bucket_of(lo), b, "lower bound of bucket {b}");
            if b + 1 < BUCKETS {
                let hi = bucket_lo(b + 1) - 1;
                assert_eq!(bucket_of(hi), b, "upper bound of bucket {b}");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_observes_edge_values() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(64), 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        // Sum saturates instead of wrapping past u64::MAX.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn empty_histogram_has_no_min_max() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let j = h.to_json();
        assert_eq!(j.field("count").unwrap().as_u64().unwrap(), 0);
        assert!(j.field("buckets").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn histogram_json_lists_only_occupied_buckets() {
        let mut h = Histogram::new();
        h.observe(5); // bucket 3
        h.observe(5);
        h.observe(1); // bucket 1
        let j = h.to_json();
        let buckets = j.field("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].as_arr().unwrap()[0].as_u64().unwrap(), 1);
        assert_eq!(buckets[1].as_arr().unwrap()[0].as_u64().unwrap(), 3);
        assert_eq!(buckets[1].as_arr().unwrap()[1].as_u64().unwrap(), 2);
    }

    #[test]
    fn quantiles_on_single_value_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.observe(7);
        }
        // All mass in one bucket, clamped to [min, max] = [7, 7].
        assert_eq!(h.quantile(500), Some(7));
        assert_eq!(h.quantile(950), Some(7));
        assert_eq!(h.quantile(990), Some(7));
        assert_eq!(h.quantile(0), Some(7));
        assert_eq!(h.quantile(1000), Some(7));
    }

    #[test]
    fn quantiles_pick_the_right_bucket() {
        let mut h = Histogram::new();
        // 90 small samples, 10 large: p50 lands in the small bucket,
        // p95/p99 in the large one.
        for _ in 0..90 {
            h.observe(3); // bucket 2: [2, 3]
        }
        for _ in 0..10 {
            h.observe(1000); // bucket 10: [512, 1023]
        }
        let p50 = h.quantile(500).unwrap();
        assert!((2..=3).contains(&p50), "p50 = {p50}");
        let p95 = h.quantile(950).unwrap();
        assert!((512..=1000).contains(&p95), "p95 = {p95}");
        let p99 = h.quantile(990).unwrap();
        assert!((512..=1000).contains(&p99), "p99 = {p99}");
        // Monotone in permille.
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn quantiles_clamp_to_observed_extremes() {
        let mut h = Histogram::new();
        h.observe(5); // bucket 3 spans [4, 7]; interpolation must not
        h.observe(6); // wander outside the observed [5, 6].
        for p in [0, 500, 950, 990, 1000] {
            let q = h.quantile(p).unwrap();
            assert!((5..=6).contains(&q), "q({p}) = {q}");
        }
        assert_eq!(Histogram::new().quantile(500), None);
    }

    #[test]
    fn quantiles_survive_top_bucket() {
        let mut h = Histogram::new();
        h.observe(u64::MAX); // bucket 64: interpolation must not overflow
        h.observe(u64::MAX - 1);
        let q = h.quantile(990).unwrap();
        assert!(q >= u64::MAX - 1);
    }

    #[test]
    fn histogram_json_includes_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.observe(64);
        }
        let j = h.to_json();
        assert_eq!(j.field("p50").unwrap().as_u64().unwrap(), 64);
        assert_eq!(j.field("p95").unwrap().as_u64().unwrap(), 64);
        assert_eq!(j.field("p99").unwrap().as_u64().unwrap(), 64);
        // Empty histograms export 0 (consistent with min/max handling).
        let e = Histogram::new().to_json();
        assert_eq!(e.field("p50").unwrap().as_u64().unwrap(), 0);
    }

    #[test]
    fn histogram_merge_equals_joint_observation() {
        let (mut a, mut b, mut joint) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [0u64, 1, 7, 1000, u64::MAX] {
            a.observe(v);
            joint.observe(v);
        }
        for v in [3u64, 3, 1 << 40] {
            b.observe(v);
            joint.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, joint);
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn registry_merge_accumulates() {
        let (mut a, mut b) = (Registry::new(), Registry::new());
        a.add("reqs", 2);
        a.observe("lat", 8);
        a.set_gauge("active", 1);
        b.add("reqs", 3);
        b.add("evictions", 1);
        b.observe("lat", 64);
        b.set_gauge("active", 5);
        a.merge(&b);
        assert_eq!(a.counter("reqs"), 5);
        assert_eq!(a.counter("evictions"), 1);
        assert_eq!(a.gauge("active"), Some(5));
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn registry_export_is_sorted_and_stable() {
        let mut r = Registry::new();
        r.incr("zeta");
        r.add("alpha", 3);
        r.set_gauge("ready_threads", 2);
        r.observe("latency", 9);
        let s = r.to_json().to_string();
        // "alpha" must precede "zeta" regardless of registration order.
        assert!(s.find("alpha").unwrap() < s.find("zeta").unwrap());
        // Two identical registries export byte-identical JSON.
        let mut r2 = Registry::new();
        r2.observe("latency", 9);
        r2.set_gauge("ready_threads", 2);
        r2.add("alpha", 3);
        r2.incr("zeta");
        assert_eq!(s, r2.to_json().to_string());
        assert!(codec::Json::parse(&s).is_ok());
    }
}
