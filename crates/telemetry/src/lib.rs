//! Perturbation-free observability for the replay platform.
//!
//! The paper's defining constraint (§2.4) is that *observing* an execution
//! must not *change* it: record and replay stay symmetric only if every
//! byte the observer touches lives outside the guest-visible machine —
//! outside the logical clock (yield-point counting), outside the guest
//! heap and allocator, and outside the execution fingerprint. This crate
//! is that observer. It owns three pieces:
//!
//! * [`metrics`] — a registry of counters, gauges and log2-bucketed
//!   histograms with stable (sorted) ordering and deterministic JSON
//!   export through `codec`,
//! * [`ring`] — a bounded event ring recording the last N scheduler /
//!   instrumentation events (thread switches with their logical-clock
//!   value, clock reads, native calls, GCs, stack growths, compiles,
//!   class loads) with absolute sequence numbers,
//! * [`forensics`] — ring alignment: given the record-side and
//!   replay-side rings, find the first sequence number at which they
//!   disagree, which localizes a divergence to an event index and kind.
//!
//! Neutrality is enforced two ways: by construction (nothing here is
//! reachable from the guest heap, the scheduler, or the fingerprint),
//! and by test (`dejavu`'s telemetry-neutrality suite proves fingerprints
//! are bit-identical with telemetry on vs. off for every symmetry
//! ablation).

pub mod forensics;
pub mod metrics;
pub mod profile;
pub mod ring;

pub use forensics::{first_mismatch, RingMismatch};
pub use metrics::{Histogram, Registry};
pub use profile::{ProfEvent, ProfKind, ProfileModel, Profiler};
pub use ring::{Event, EventKind, EventRing};

/// Default ring capacity: enough to hold the tail of any divergence
/// window without growing per-run memory unboundedly.
pub const DEFAULT_RING_CAP: usize = 64;

/// The per-VM telemetry sink: an event ring plus the histograms fed from
/// hot paths. Owned by the VM as plain observer state — never reachable
/// from the guest heap, never hashed into the fingerprint or the state
/// digest, never part of a snapshot.
#[derive(Debug, Clone)]
pub struct VmTelemetry {
    enabled: bool,
    /// Bounded trace of the most recent instrumentation events.
    pub ring: EventRing,
    /// Distribution of timer interrupt intervals (cycles between ticks).
    pub timer_intervals: Histogram,
    /// Distribution of allocation sizes in words.
    pub alloc_words: Histogram,
    /// Distribution of compiled method sizes in code words.
    pub compile_words: Histogram,
    /// The replay-time profiler, when armed (see [`profile`]). Like the
    /// rest of this struct it is pure observer state: the VM appends
    /// span/switch events and QOp cycle counts here, and nothing here is
    /// ever read back by execution, fingerprinting, or snapshots.
    pub profile: Option<Box<Profiler>>,
}

impl VmTelemetry {
    /// The default state: telemetry off, zero-capacity ring, no overhead
    /// beyond one branch per instrumentation site.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ring: EventRing::new(0),
            timer_intervals: Histogram::new(),
            alloc_words: Histogram::new(),
            compile_words: Histogram::new(),
            profile: None,
        }
    }

    /// Telemetry on, with a ring of the given capacity.
    pub fn enabled(ring_cap: usize) -> Self {
        Self {
            enabled: true,
            ring: EventRing::new(ring_cap),
            timer_intervals: Histogram::new(),
            alloc_words: Histogram::new(),
            compile_words: Histogram::new(),
            profile: None,
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event on thread `tid`. No-op when disabled.
    #[inline]
    pub fn event(&mut self, tid: u32, kind: EventKind) {
        if self.enabled {
            self.ring.push(tid, kind);
        }
    }

    /// Observe one timer interrupt interval. No-op when disabled.
    #[inline]
    pub fn timer_interval(&mut self, cycles: u64) {
        if self.enabled {
            self.timer_intervals.observe(cycles);
        }
    }

    /// Observe one allocation of `words` words. No-op when disabled.
    #[inline]
    pub fn alloc(&mut self, words: u64) {
        if self.enabled {
            self.alloc_words.observe(words);
        }
    }

    /// Observe one method compilation of `words` code words. No-op when
    /// disabled.
    #[inline]
    pub fn compile(&mut self, words: u64) {
        if self.enabled {
            self.compile_words.observe(words);
        }
    }

    /// Called when the VM is restored from a snapshot (time-travel seek):
    /// the ring would otherwise mix events from abandoned timelines, so
    /// it is cleared — after a restore the ring holds "events since the
    /// last restore". Histograms keep accumulating; they describe the
    /// whole session, not one timeline.
    pub fn on_restore(&mut self) {
        self.ring.clear();
    }
}

impl Default for VmTelemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut t = VmTelemetry::disabled();
        t.event(0, EventKind::Gc { collection: 1 });
        t.timer_interval(100);
        t.alloc(8);
        t.compile(32);
        assert!(!t.is_enabled());
        assert_eq!(t.ring.len(), 0);
        assert_eq!(t.ring.next_seq(), 0);
        assert_eq!(t.timer_intervals.count(), 0);
        assert_eq!(t.alloc_words.count(), 0);
        assert_eq!(t.compile_words.count(), 0);
    }

    #[test]
    fn enabled_sink_records_and_restore_clears_ring_only() {
        let mut t = VmTelemetry::enabled(4);
        t.event(1, EventKind::ClockRead { value: 7 });
        t.event(2, EventKind::Gc { collection: 1 });
        t.alloc(16);
        assert_eq!(t.ring.len(), 2);
        t.on_restore();
        assert_eq!(t.ring.len(), 0, "restore clears the ring");
        assert_eq!(t.ring.next_seq(), 2, "sequence numbers keep advancing");
        assert_eq!(t.alloc_words.count(), 1, "histograms survive restore");
    }
}
