//! The replay-time profiler: a deterministic flight recorder attributing
//! logical cycles to per-thread span stacks.
//!
//! The paper's posture is "record lightly, analyze heavily during replay":
//! since a replayed execution is bit-identical to the recorded one, any
//! analysis too expensive for the recorder can be paid for at replay time
//! instead. This module is that analysis layer. The VM appends
//! [`ProfEvent`]s — method-span opens/closes from the interpreter's
//! call/return sites, zero-width phase spans (gc/compile/native) from the
//! runtime-service sites, thread switches from the scheduler — and keeps
//! per-QOp cycle counters fed from the quickened dispatch loop. Everything
//! downstream (exclusive/inclusive attribution, folded stacks, Chrome
//! trace events) is derived offline by [`ProfileModel::build`].
//!
//! Two disciplines, inherited from the rest of this crate:
//!
//! * **Neutrality** — the profiler is plain observer state owned by
//!   [`crate::VmTelemetry`]: never reachable from the guest heap, never
//!   hashed into the fingerprint or state digest, never snapshotted.
//!   Fingerprints are bit-identical with profiling on or off.
//! * **Determinism** — every quantity is an exact integer in *logical*
//!   units (cycles, yield points, words); wall time never enters. Two
//!   replays of the same trace emit byte-identical artifacts on any host.

use codec::Json;
use std::collections::BTreeMap;

/// Phase indices for [`ProfKind::PhaseBegin`]/[`ProfKind::PhaseEnd`].
pub const PHASE_INTERP: u8 = 0;
pub const PHASE_SCHED: u8 = 1;
pub const PHASE_GC: u8 = 2;
pub const PHASE_COMPILE: u8 = 3;
pub const PHASE_NATIVE: u8 = 4;
/// Number of phases.
pub const PHASES: usize = 5;
/// Phase names, indexed by the `PHASE_*` constants.
pub const PHASE_NAMES: [&str; PHASES] = ["interp", "sched", "gc", "compile", "native"];

/// One profiler event, stamped with the logical cycle it occurred at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfEvent {
    /// Logical time (executed-instruction count) of the event.
    pub cycles: u64,
    /// Thread the event belongs to.
    pub tid: u32,
    pub kind: ProfKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfKind {
    /// A method frame was pushed on `tid`'s stack.
    Enter { method: u32 },
    /// A method frame was popped (non-root return).
    Exit { method: u32 },
    /// A runtime-service phase opened. `arg` is phase-specific input
    /// (gc: collection number, compile/native: method id).
    PhaseBegin { phase: u8, arg: u64 },
    /// The matching close. `arg` is phase-specific output (gc: words
    /// copied or swept, compile: code words).
    PhaseEnd { phase: u8, arg: u64 },
    /// The scheduler dispatched `to` (its logical clock was `nyp`).
    Switch { to: u32, nyp: u64 },
    /// The thread terminated; all of its open spans close here.
    ThreadEnd,
}

/// The in-VM flight recorder: an append-only event log plus per-QOp-kind
/// cycle counters. Runtime work per event is one `Vec::push`; per
/// quickened dispatch, one indexed add. All aggregation happens offline.
#[derive(Debug, Clone)]
pub struct Profiler {
    pub events: Vec<ProfEvent>,
    /// Cycles attributed to each quickened-op kind (indexed by the VM's
    /// QOp attribution table). Populated only under quickened dispatch.
    pub qop_cycles: Vec<u64>,
    /// Dispatch counts per quickened-op kind.
    pub qop_dispatches: Vec<u64>,
    /// `(tid, name)` for every thread the profiler saw, in creation order.
    pub threads: Vec<(u32, String)>,
}

impl Profiler {
    pub fn new(qop_kinds: usize) -> Self {
        Self {
            events: Vec::new(),
            qop_cycles: vec![0; qop_kinds],
            qop_dispatches: vec![0; qop_kinds],
            threads: Vec::new(),
        }
    }

    #[inline]
    fn push(&mut self, cycles: u64, tid: u32, kind: ProfKind) {
        self.events.push(ProfEvent { cycles, tid, kind });
    }

    /// Record a thread's name (once, at creation/seeding).
    pub fn thread_name(&mut self, tid: u32, name: &str) {
        if !self.threads.iter().any(|(t, _)| *t == tid) {
            self.threads.push((tid, name.to_string()));
        }
    }

    #[inline]
    pub fn enter(&mut self, tid: u32, method: u32, cycles: u64) {
        self.push(cycles, tid, ProfKind::Enter { method });
    }

    #[inline]
    pub fn exit(&mut self, tid: u32, method: u32, cycles: u64) {
        self.push(cycles, tid, ProfKind::Exit { method });
    }

    #[inline]
    pub fn phase_begin(&mut self, tid: u32, phase: u8, arg: u64, cycles: u64) {
        self.push(cycles, tid, ProfKind::PhaseBegin { phase, arg });
    }

    #[inline]
    pub fn phase_end(&mut self, tid: u32, phase: u8, arg: u64, cycles: u64) {
        self.push(cycles, tid, ProfKind::PhaseEnd { phase, arg });
    }

    #[inline]
    pub fn switch_to(&mut self, to: u32, nyp: u64, cycles: u64) {
        self.push(cycles, to, ProfKind::Switch { to, nyp });
    }

    #[inline]
    pub fn thread_end(&mut self, tid: u32, cycles: u64) {
        self.push(cycles, tid, ProfKind::ThreadEnd);
    }

    /// Attribute `k` cycles to quickened-op kind `kind` (one dispatch).
    #[inline]
    pub fn qop(&mut self, kind: usize, k: u64) {
        self.qop_cycles[kind] += k;
        self.qop_dispatches[kind] += 1;
    }
}

/// Aggregates for one method.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodStat {
    /// Frame pushes observed (calls), including seeded boot frames.
    pub calls: u64,
    /// Cycles attributed while this method was the stack top.
    pub cycles_excl: u64,
    /// Cycles between the outermost enter and exit (recursion counted
    /// once).
    pub cycles_incl: u64,
}

/// Aggregates for one runtime-service phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    pub count: u64,
    pub cycles: u64,
    /// Sum of the phase-end `arg` values (gc: words copied or swept,
    /// compile: code words).
    pub arg_total: u64,
}

#[derive(Debug, Clone)]
struct OpenFrame {
    method: u32,
    entered: u64,
}

/// The offline aggregation of a [`Profiler`] log.
///
/// # Cycle-attribution rules (DESIGN §4c)
///
/// * The event log divides logical time into intervals; each interval is
///   charged to the *running* thread's current stack (exclusive time to
///   the stack top) — the running thread is established by `Switch`
///   events, starting from tid 0.
/// * Cycles charged while the running thread has no open frame (between
///   `ThreadEnd` and the next `Switch`) belong to the `sched` phase.
/// * `gc`/`compile`/`native` phase spans are zero-width in logical time
///   (the triggering instruction's single cycle stays with its method);
///   their cost is reported via `count` and `arg_total`.
/// * Open frames at the end of the log are closed at `final_cycles`.
#[derive(Debug, Clone)]
pub struct ProfileModel {
    /// Logical-time window the log covers (first event → `final_cycles`).
    pub total_cycles: u64,
    pub methods: BTreeMap<u32, MethodStat>,
    /// `(tid, stack of method ids)` → exclusive cycles.
    pub folded: BTreeMap<(u32, Vec<u32>), u64>,
    pub phases: [PhaseStat; PHASES],
    /// Exclusive cycles charged per thread.
    pub thread_cycles: BTreeMap<u32, u64>,
    pub switches: u64,
}

impl ProfileModel {
    pub fn build(p: &Profiler, final_cycles: u64) -> Self {
        let mut stacks: BTreeMap<u32, Vec<OpenFrame>> = BTreeMap::new();
        let mut active: BTreeMap<u32, u64> = BTreeMap::new(); // method → open frames
        let mut methods: BTreeMap<u32, MethodStat> = BTreeMap::new();
        let mut folded: BTreeMap<(u32, Vec<u32>), u64> = BTreeMap::new();
        let mut thread_cycles: BTreeMap<u32, u64> = BTreeMap::new();
        let mut phases = [PhaseStat::default(); PHASES];
        let mut switches = 0u64;
        let mut cur: u32 = 0;
        let first = p.events.first().map(|e| e.cycles).unwrap_or(final_cycles);
        let mut last = first;

        let charge = |stacks: &BTreeMap<u32, Vec<OpenFrame>>,
                      folded: &mut BTreeMap<(u32, Vec<u32>), u64>,
                      methods: &mut BTreeMap<u32, MethodStat>,
                      thread_cycles: &mut BTreeMap<u32, u64>,
                      phases: &mut [PhaseStat; PHASES],
                      cur: u32,
                      delta: u64| {
            if delta == 0 {
                return;
            }
            let stack = stacks.get(&cur).map(|s| s.as_slice()).unwrap_or(&[]);
            let key: Vec<u32> = stack.iter().map(|f| f.method).collect();
            if let Some(top) = key.last() {
                methods.entry(*top).or_default().cycles_excl += delta;
            } else {
                // No frame open on the running thread: scheduler time.
                phases[PHASE_SCHED as usize].cycles += delta;
            }
            *folded.entry((cur, key)).or_insert(0) += delta;
            *thread_cycles.entry(cur).or_insert(0) += delta;
        };

        let close_frame = |active: &mut BTreeMap<u32, u64>,
                           methods: &mut BTreeMap<u32, MethodStat>,
                           f: &OpenFrame,
                           now: u64| {
            let n = active.entry(f.method).or_insert(0);
            *n = n.saturating_sub(1);
            if *n == 0 {
                methods.entry(f.method).or_default().cycles_incl += now.saturating_sub(f.entered);
            }
        };

        for e in &p.events {
            charge(
                &stacks,
                &mut folded,
                &mut methods,
                &mut thread_cycles,
                &mut phases,
                cur,
                e.cycles.saturating_sub(last),
            );
            last = last.max(e.cycles);
            match e.kind {
                ProfKind::Enter { method } => {
                    stacks.entry(e.tid).or_default().push(OpenFrame {
                        method,
                        entered: e.cycles,
                    });
                    *active.entry(method).or_insert(0) += 1;
                    methods.entry(method).or_default().calls += 1;
                }
                ProfKind::Exit { method } => {
                    // Tolerant unwind: pop until the named frame closes
                    // (exits always match in practice; this keeps the
                    // model total even on a truncated log).
                    let stack = stacks.entry(e.tid).or_default();
                    while let Some(f) = stack.pop() {
                        close_frame(&mut active, &mut methods, &f, e.cycles);
                        if f.method == method {
                            break;
                        }
                    }
                }
                ProfKind::PhaseBegin { phase, .. } => {
                    phases[phase as usize].count += 1;
                }
                ProfKind::PhaseEnd { phase, arg } => {
                    phases[phase as usize].arg_total += arg;
                }
                ProfKind::Switch { to, .. } => {
                    switches += 1;
                    cur = to;
                }
                ProfKind::ThreadEnd => {
                    let stack = stacks.entry(e.tid).or_default();
                    while let Some(f) = stack.pop() {
                        close_frame(&mut active, &mut methods, &f, e.cycles);
                    }
                }
            }
        }
        // Tail: charge the remaining window and close surviving frames.
        charge(
            &stacks,
            &mut folded,
            &mut methods,
            &mut thread_cycles,
            &mut phases,
            cur,
            final_cycles.saturating_sub(last),
        );
        for (_, stack) in stacks.iter_mut() {
            while let Some(f) = stack.pop() {
                close_frame(&mut active, &mut methods, &f, final_cycles);
            }
        }
        let total_cycles = final_cycles.saturating_sub(first);
        // Every cycle not charged to scheduler idle time ran interpreter
        // work (gc/compile/native spans are zero-width in logical time).
        phases[PHASE_INTERP as usize].cycles =
            total_cycles.saturating_sub(phases[PHASE_SCHED as usize].cycles);
        phases[PHASE_SCHED as usize].count = switches;
        Self {
            total_cycles,
            methods,
            folded,
            phases,
            thread_cycles,
            switches,
        }
    }

    /// The `n` hottest methods by exclusive cycles (ties broken by method
    /// id, so the order is deterministic).
    pub fn top_methods(&self, n: usize) -> Vec<(u32, MethodStat)> {
        let mut v: Vec<(u32, MethodStat)> = self.methods.iter().map(|(&m, &s)| (m, s)).collect();
        v.sort_by(|a, b| b.1.cycles_excl.cmp(&a.1.cycles_excl).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

fn name_of(method_names: &[String], m: u32) -> String {
    method_names
        .get(m as usize)
        .cloned()
        .unwrap_or_else(|| format!("m{m}"))
}

/// Export the event log as Chrome trace-event JSON (the format Perfetto
/// and `chrome://tracing` load). The timebase is *logical cycles* reported
/// as microseconds, so the artifact is byte-deterministic across hosts.
/// Open spans are closed at `final_cycles` so every `B` has its `E`.
pub fn chrome_trace(p: &Profiler, final_cycles: u64, method_names: &[String]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let dur_event = |ph: &str, tid: u32, ts: u64, name: String, cat: &str, args: Option<Json>| {
        let mut pairs = vec![
            ("cat", Json::Str(cat.into())),
            ("name", Json::Str(name)),
            ("ph", Json::Str(ph.into())),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(tid as u64)),
            ("ts", Json::UInt(ts)),
        ];
        if let Some(a) = args {
            pairs.push(("args", a));
        }
        Json::obj(pairs)
    };
    for (tid, name) in &p.threads {
        events.push(dur_event(
            "M",
            *tid,
            0,
            "thread_name".into(),
            "__metadata",
            Some(Json::obj(vec![("name", Json::Str(name.clone()))])),
        ));
    }
    // Track open spans so the export can close them at the end (halt or
    // deadlock leaves frames open; Perfetto requires balanced B/E).
    let mut open: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for e in &p.events {
        match e.kind {
            ProfKind::Enter { method } => {
                open.entry(e.tid).or_default().push(method);
                events.push(dur_event(
                    "B",
                    e.tid,
                    e.cycles,
                    name_of(method_names, method),
                    "method",
                    None,
                ));
            }
            ProfKind::Exit { method } => {
                let stack = open.entry(e.tid).or_default();
                while let Some(m) = stack.pop() {
                    events.push(dur_event(
                        "E",
                        e.tid,
                        e.cycles,
                        name_of(method_names, m),
                        "method",
                        None,
                    ));
                    if m == method {
                        break;
                    }
                }
            }
            ProfKind::PhaseBegin { phase, arg } => {
                events.push(dur_event(
                    "B",
                    e.tid,
                    e.cycles,
                    PHASE_NAMES[phase as usize].into(),
                    "phase",
                    Some(Json::obj(vec![("arg", Json::UInt(arg))])),
                ));
            }
            ProfKind::PhaseEnd { phase, arg } => {
                events.push(dur_event(
                    "E",
                    e.tid,
                    e.cycles,
                    PHASE_NAMES[phase as usize].into(),
                    "phase",
                    Some(Json::obj(vec![("arg", Json::UInt(arg))])),
                ));
            }
            ProfKind::Switch { to, nyp } => {
                events.push(dur_event(
                    "i",
                    e.tid,
                    e.cycles,
                    "switch".into(),
                    "sched",
                    Some(Json::obj(vec![
                        ("nyp", Json::UInt(nyp)),
                        ("to", Json::UInt(to as u64)),
                    ])),
                ));
            }
            ProfKind::ThreadEnd => {
                let stack = open.entry(e.tid).or_default();
                while let Some(m) = stack.pop() {
                    events.push(dur_event(
                        "E",
                        e.tid,
                        e.cycles,
                        name_of(method_names, m),
                        "method",
                        None,
                    ));
                }
            }
        }
    }
    for (tid, stack) in open.iter_mut() {
        while let Some(m) = stack.pop() {
            events.push(dur_event(
                "E",
                *tid,
                final_cycles,
                name_of(method_names, m),
                "method",
                None,
            ));
        }
    }
    let mut j = Json::obj(vec![
        ("displayTimeUnit", Json::Str("ms".into())),
        (
            "otherData",
            Json::obj(vec![
                ("timebase", Json::Str("logical-cycles".into())),
                ("final_cycles", Json::UInt(final_cycles)),
            ]),
        ),
        ("traceEvents", Json::Arr(events)),
    ]);
    j.canonicalize();
    j
}

/// Export the exclusive-cycle attribution as folded-stacks flamegraph
/// text: one `t<tid>;outer;...;inner <cycles>` line per distinct stack,
/// in deterministic (tid, stack) order.
pub fn folded_stacks(model: &ProfileModel, method_names: &[String]) -> String {
    let mut out = String::new();
    for ((tid, stack), cycles) in &model.folded {
        out.push_str(&format!("t{tid}"));
        for m in stack {
            out.push(';');
            out.push_str(&name_of(method_names, *m));
        }
        out.push(' ');
        out.push_str(&cycles.to_string());
        out.push('\n');
    }
    out
}

/// Canonical-JSON profile summary: top-`top` hot methods, phase table,
/// per-QOp cycle counters (`qop_names` indexes the VM's attribution
/// table), per-thread cycles.
pub fn summary_json(
    p: &Profiler,
    model: &ProfileModel,
    method_names: &[String],
    qop_names: &[&str],
    top: usize,
) -> Json {
    let hot = Json::Arr(
        model
            .top_methods(top)
            .iter()
            .map(|(m, s)| {
                Json::obj(vec![
                    ("calls", Json::UInt(s.calls)),
                    ("cycles_excl", Json::UInt(s.cycles_excl)),
                    ("cycles_incl", Json::UInt(s.cycles_incl)),
                    ("method", Json::UInt(*m as u64)),
                    ("name", Json::Str(name_of(method_names, *m))),
                ])
            })
            .collect(),
    );
    let phases = Json::Obj(
        (0..PHASES)
            .map(|i| {
                (
                    PHASE_NAMES[i].to_string(),
                    Json::obj(vec![
                        ("arg_total", Json::UInt(model.phases[i].arg_total)),
                        ("count", Json::UInt(model.phases[i].count)),
                        ("cycles", Json::UInt(model.phases[i].cycles)),
                    ]),
                )
            })
            .collect(),
    );
    let qops = Json::Obj(
        p.qop_cycles
            .iter()
            .zip(p.qop_dispatches.iter())
            .enumerate()
            .filter(|(_, (&c, &d))| c > 0 || d > 0)
            .map(|(i, (&c, &d))| {
                let name = qop_names.get(i).copied().unwrap_or("unknown").to_string();
                (
                    name,
                    Json::obj(vec![
                        ("cycles", Json::UInt(c)),
                        ("dispatches", Json::UInt(d)),
                    ]),
                )
            })
            .collect(),
    );
    let threads = Json::Arr(
        model
            .thread_cycles
            .iter()
            .map(|(&tid, &c)| {
                Json::obj(vec![
                    ("cycles", Json::UInt(c)),
                    ("tid", Json::UInt(tid as u64)),
                ])
            })
            .collect(),
    );
    let mut j = Json::obj(vec![
        ("events", Json::UInt(p.events.len() as u64)),
        ("hot_methods", hot),
        ("phases", phases),
        ("qops", qops),
        ("switches", Json::UInt(model.switches)),
        ("threads", threads),
        ("total_cycles", Json::UInt(model.total_cycles)),
    ]);
    j.canonicalize();
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["main".into(), "foo".into(), "bar".into()]
    }

    /// main enters at 0, calls foo at 10 (runs to 30), main resumes to 40.
    fn simple_log() -> Profiler {
        let mut p = Profiler::new(4);
        p.thread_name(0, "main");
        p.enter(0, 0, 0);
        p.switch_to(0, 0, 0);
        p.enter(0, 1, 10);
        p.exit(0, 1, 30);
        p.thread_end(0, 40);
        p
    }

    #[test]
    fn exclusive_and_inclusive_attribution() {
        let p = simple_log();
        let m = ProfileModel::build(&p, 40);
        assert_eq!(m.total_cycles, 40);
        let main = m.methods[&0];
        let foo = m.methods[&1];
        // main: [0,10) + [30,40) exclusive; inclusive the whole window.
        assert_eq!(main.cycles_excl, 20);
        assert_eq!(main.cycles_incl, 40);
        assert_eq!(main.calls, 1);
        // foo: [10,30) both ways.
        assert_eq!(foo.cycles_excl, 20);
        assert_eq!(foo.cycles_incl, 20);
        // Folded stacks cover every charged cycle.
        let total: u64 = m.folded.values().sum();
        assert_eq!(total, 40);
        assert_eq!(m.folded[&(0, vec![0])], 20);
        assert_eq!(m.folded[&(0, vec![0, 1])], 20);
    }

    #[test]
    fn recursion_counts_inclusive_once() {
        let mut p = Profiler::new(4);
        p.enter(0, 1, 0);
        p.switch_to(0, 0, 0);
        p.enter(0, 1, 5); // foo calls itself
        p.exit(0, 1, 15);
        p.exit(0, 1, 20);
        let m = ProfileModel::build(&p, 20);
        let foo = m.methods[&1];
        assert_eq!(foo.calls, 2);
        assert_eq!(foo.cycles_excl, 20, "all cycles are foo's");
        assert_eq!(foo.cycles_incl, 20, "recursion not double-counted");
    }

    #[test]
    fn switch_changes_charging_thread() {
        let mut p = Profiler::new(4);
        p.enter(0, 0, 0);
        p.enter(1, 2, 0); // spawned, not yet running
        p.switch_to(0, 0, 0);
        p.switch_to(1, 1, 10); // t1 runs [10,25)
        p.switch_to(0, 1, 25); // t0 runs [25,30)
        let m = ProfileModel::build(&p, 30);
        assert_eq!(m.thread_cycles[&0], 15);
        assert_eq!(m.thread_cycles[&1], 15);
        assert_eq!(m.switches, 3);
        assert_eq!(m.methods[&0].cycles_excl, 15);
        assert_eq!(m.methods[&2].cycles_excl, 15);
    }

    #[test]
    fn idle_running_thread_charges_sched_phase() {
        let mut p = Profiler::new(4);
        p.enter(0, 0, 0);
        p.switch_to(0, 0, 0);
        p.thread_end(0, 10);
        p.switch_to(1, 0, 16); // 6 cycles with no open frame on t0
        p.enter(1, 2, 16);
        let m = ProfileModel::build(&p, 20);
        assert_eq!(m.phases[PHASE_SCHED as usize].cycles, 6);
        assert_eq!(m.phases[PHASE_INTERP as usize].cycles, m.total_cycles - 6);
    }

    #[test]
    fn phase_spans_count_and_accumulate_args() {
        let mut p = Profiler::new(4);
        p.enter(0, 0, 0);
        p.phase_begin(0, PHASE_GC, 1, 7);
        p.phase_end(0, PHASE_GC, 128, 7);
        p.phase_begin(0, PHASE_COMPILE, 2, 9);
        p.phase_end(0, PHASE_COMPILE, 33, 9);
        let m = ProfileModel::build(&p, 10);
        assert_eq!(m.phases[PHASE_GC as usize].count, 1);
        assert_eq!(m.phases[PHASE_GC as usize].arg_total, 128);
        assert_eq!(m.phases[PHASE_GC as usize].cycles, 0, "zero-width");
        assert_eq!(m.phases[PHASE_COMPILE as usize].arg_total, 33);
    }

    #[test]
    fn chrome_trace_is_balanced_and_canonical() {
        let p = simple_log();
        let j = chrome_trace(&p, 40, &names());
        let s = j.to_string();
        assert_eq!(s, j.to_canonical_string(), "already canonical");
        let parsed = Json::parse(&s).unwrap();
        let evs = parsed.field("traceEvents").unwrap().as_arr().unwrap();
        let b = evs
            .iter()
            .filter(|e| e.field("ph").unwrap().as_str().unwrap() == "B")
            .count();
        let e = evs
            .iter()
            .filter(|e| e.field("ph").unwrap().as_str().unwrap() == "E")
            .count();
        assert_eq!(b, e, "every B has its E");
        assert!(s.contains("\"thread_name\""));
        assert!(s.contains("\"timebase\":\"logical-cycles\""));
    }

    #[test]
    fn chrome_trace_closes_open_spans_at_final_cycles() {
        let mut p = Profiler::new(4);
        p.enter(0, 0, 0);
        p.enter(0, 1, 5); // never exits (deadlock/halt mid-frame)
        let j = chrome_trace(&p, 77, &names());
        let s = j.to_string();
        let evs = Json::parse(&s)
            .unwrap()
            .field("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .len();
        // 2 B + 2 synthesized E (no metadata: no thread_name calls).
        assert_eq!(evs, 4);
        assert!(s.contains("\"ts\":77"));
    }

    #[test]
    fn folded_stacks_deterministic_lines() {
        let p = simple_log();
        let m = ProfileModel::build(&p, 40);
        let f = folded_stacks(&m, &names());
        assert_eq!(f, "t0;main 20\nt0;main;foo 20\n");
    }

    #[test]
    fn summary_json_shape() {
        let mut p = simple_log();
        p.qop(1, 5);
        p.qop(1, 2);
        let m = ProfileModel::build(&p, 40);
        let j = summary_json(&p, &m, &names(), &["gen", "const"], 10);
        let s = j.to_string();
        assert_eq!(s, j.to_canonical_string());
        assert!(s.contains("\"hot_methods\""));
        assert!(s.contains("\"const\":{\"cycles\":7,\"dispatches\":2}"));
        assert!(s.contains("\"total_cycles\":40"));
        // Hottest first; main and foo tie at 20 excl, id breaks the tie.
        let hot = j.field("hot_methods").unwrap().as_arr().unwrap();
        assert_eq!(hot[0].field("method").unwrap().as_u64().unwrap(), 0);
    }

    #[test]
    fn top_methods_orders_by_exclusive_desc() {
        let mut p = Profiler::new(2);
        p.enter(0, 2, 0);
        p.switch_to(0, 0, 0);
        p.exit(0, 2, 30);
        p.enter(0, 1, 30);
        p.exit(0, 1, 40);
        let m = ProfileModel::build(&p, 40);
        let top = m.top_methods(5);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 1);
        let one = m.top_methods(1);
        assert_eq!(one.len(), 1);
    }
}
