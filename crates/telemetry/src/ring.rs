//! The bounded event ring: a trace of the last N scheduler and
//! instrumentation events, stamped with absolute sequence numbers.
//!
//! Sequence numbers are the alignment key for divergence forensics: the
//! record-side and replay-side VMs both number their events from zero in
//! logical order, so event `seq=k` on one side corresponds to event
//! `seq=k` on the other — in an accurate replay they are *equal*, and the
//! first `seq` where they differ localizes the divergence. The ring is
//! bounded (old events are dropped, counted in [`EventRing::dropped`])
//! so tracing never grows per-run memory unboundedly.

use codec::Json;
use std::collections::VecDeque;

/// One kind of instrumented event. Every variant carries the values the
/// deterministic replay contract depends on, so an event compares equal
/// across record/replay exactly when the execution agreed at that point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The scheduler dispatched thread `to`; `nyp` is that thread's
    /// logical clock (yield points executed) at dispatch.
    Switch { to: u32, nyp: u64 },
    /// A wall-clock read returned `value` (recorded value on replay).
    ClockRead { value: i64 },
    /// A native call to method id `method`.
    NativeCall { method: u32 },
    /// Garbage collection number `collection` ran.
    Gc { collection: u64 },
    /// A thread stack grew to `new_words` words.
    StackGrowth { new_words: u64 },
    /// Method id `method` was (lazily) compiled.
    Compile { method: u32 },
    /// Class id `class` was (lazily) loaded.
    ClassLoad { class: u32 },
    /// The loop headed at `loop_pc` in `method` crossed the tier-2 hotness
    /// threshold (`trip_count` taken backedges) and was compiled into a
    /// megablock of `block_width` accounted cycles per iteration. Emitted
    /// at the threshold crossing, which happens at the same logical instant
    /// in every mode — tier-up is deterministic even though per-block entry
    /// counts are not.
    MegaCompile {
        method: u32,
        loop_pc: u32,
        trip_count: u64,
        block_width: u64,
    },
}

impl EventKind {
    /// Stable lowercase name, used in JSON and forensic reports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Switch { .. } => "switch",
            EventKind::ClockRead { .. } => "clock_read",
            EventKind::NativeCall { .. } => "native_call",
            EventKind::Gc { .. } => "gc",
            EventKind::StackGrowth { .. } => "stack_growth",
            EventKind::Compile { .. } => "compile",
            EventKind::ClassLoad { .. } => "class_load",
            EventKind::MegaCompile { .. } => "compile.mega",
        }
    }
}

/// One ring entry: an event kind, the thread it happened on, and its
/// absolute sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub seq: u64,
    pub tid: u32,
    pub kind: EventKind,
}

impl Event {
    /// Deterministic JSON (keys pre-sorted within each shape).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = Vec::with_capacity(7);
        match self.kind {
            EventKind::MegaCompile { block_width, .. } => {
                pairs.push(("block_width", Json::UInt(block_width)));
            }
            EventKind::ClassLoad { class } => {
                pairs.push(("class", Json::UInt(class as u64)));
            }
            EventKind::Gc { collection } => {
                pairs.push(("collection", Json::UInt(collection)));
            }
            _ => {}
        }
        pairs.push(("kind", Json::Str(self.kind.name().into())));
        match self.kind {
            EventKind::MegaCompile {
                loop_pc, method, ..
            } => {
                pairs.push(("loop_pc", Json::UInt(loop_pc as u64)));
                pairs.push(("method", Json::UInt(method as u64)));
            }
            EventKind::NativeCall { method } | EventKind::Compile { method } => {
                pairs.push(("method", Json::UInt(method as u64)));
            }
            EventKind::StackGrowth { new_words } => {
                pairs.push(("new_words", Json::UInt(new_words)));
            }
            EventKind::Switch { nyp, .. } => {
                pairs.push(("nyp", Json::UInt(nyp)));
            }
            _ => {}
        }
        pairs.push(("seq", Json::UInt(self.seq)));
        pairs.push(("tid", Json::UInt(self.tid as u64)));
        match self.kind {
            EventKind::Switch { to, .. } => pairs.push(("to", Json::UInt(to as u64))),
            EventKind::MegaCompile { trip_count, .. } => {
                pairs.push(("trip_count", Json::UInt(trip_count)));
            }
            EventKind::ClockRead { value } => pairs.push(("value", Json::Int(value))),
            _ => {}
        }
        Json::obj(pairs)
    }

    /// Human-oriented one-line rendering for CLI / debugger output.
    pub fn describe(&self) -> String {
        match self.kind {
            EventKind::Switch { to, nyp } => {
                format!(
                    "#{} tid {} switch to={} nyp={}",
                    self.seq, self.tid, to, nyp
                )
            }
            EventKind::ClockRead { value } => {
                format!("#{} tid {} clock_read value={}", self.seq, self.tid, value)
            }
            EventKind::NativeCall { method } => {
                format!(
                    "#{} tid {} native_call method={}",
                    self.seq, self.tid, method
                )
            }
            EventKind::Gc { collection } => {
                format!(
                    "#{} tid {} gc collection={}",
                    self.seq, self.tid, collection
                )
            }
            EventKind::StackGrowth { new_words } => format!(
                "#{} tid {} stack_growth new_words={}",
                self.seq, self.tid, new_words
            ),
            EventKind::Compile { method } => {
                format!("#{} tid {} compile method={}", self.seq, self.tid, method)
            }
            EventKind::ClassLoad { class } => {
                format!("#{} tid {} class_load class={}", self.seq, self.tid, class)
            }
            EventKind::MegaCompile {
                method,
                loop_pc,
                trip_count,
                block_width,
            } => format!(
                "#{} tid {} compile.mega method={} loop_pc={} trip_count={} block_width={}",
                self.seq, self.tid, method, loop_pc, trip_count, block_width
            ),
        }
    }
}

/// A bounded ring of [`Event`]s. Pushing past capacity drops the oldest
/// event (and counts it); sequence numbers are absolute, so the ring
/// always holds the contiguous window `[next_seq - len, next_seq)`.
#[derive(Debug, Clone, Default)]
pub struct EventRing {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<Event>,
}

impl EventRing {
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            next_seq: 0,
            dropped: 0,
            buf: VecDeque::with_capacity(cap),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (== the next event's sequence number).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, tid: u32, kind: EventKind) {
        let ev = Event {
            seq: self.next_seq,
            tid,
            kind,
        };
        self.next_seq += 1;
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Drop all buffered events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.dropped += self.buf.len() as u64;
        self.buf.clear();
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.iter().copied().collect()
    }

    /// Deterministic JSON: the retained window plus its bookkeeping.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("capacity", Json::UInt(self.cap as u64)),
            ("dropped", Json::UInt(self.dropped)),
            (
                "events",
                Json::Arr(self.buf.iter().map(|e| e.to_json()).collect()),
            ),
            ("next_seq", Json::UInt(self.next_seq)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_n_with_absolute_seqs() {
        let mut r = EventRing::new(3);
        for i in 0..5u64 {
            r.push(0, EventKind::Gc { collection: i });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.next_seq(), 5);
        let evs = r.events();
        assert_eq!(evs[0].seq, 2, "oldest retained event");
        assert_eq!(evs[2].seq, 4, "newest retained event");
    }

    #[test]
    fn zero_capacity_ring_counts_but_stores_nothing() {
        let mut r = EventRing::new(0);
        r.push(1, EventKind::ClockRead { value: -3 });
        assert_eq!(r.len(), 0);
        assert_eq!(r.next_seq(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn event_json_is_valid_and_distinct_per_kind() {
        let kinds = [
            EventKind::Switch { to: 2, nyp: 40 },
            EventKind::ClockRead { value: -7 },
            EventKind::NativeCall { method: 9 },
            EventKind::Gc { collection: 3 },
            EventKind::StackGrowth { new_words: 512 },
            EventKind::Compile { method: 4 },
            EventKind::ClassLoad { class: 1 },
            EventKind::MegaCompile {
                method: 6,
                loop_pc: 11,
                trip_count: 64,
                block_width: 9,
            },
        ];
        for (i, k) in kinds.iter().enumerate() {
            let ev = Event {
                seq: i as u64,
                tid: 7,
                kind: *k,
            };
            let s = ev.to_json().to_string();
            assert!(codec::Json::parse(&s).is_ok(), "invalid json: {s}");
            assert!(s.contains(k.name()), "{s} missing kind name");
            assert!(!ev.describe().is_empty());
        }
    }

    #[test]
    fn clear_preserves_sequence_numbering() {
        let mut r = EventRing::new(8);
        r.push(0, EventKind::ClassLoad { class: 0 });
        r.push(0, EventKind::Compile { method: 0 });
        r.clear();
        assert_eq!(r.len(), 0);
        r.push(0, EventKind::Gc { collection: 0 });
        assert_eq!(r.events()[0].seq, 2);
    }
}
