//! Ring alignment: localize the first divergence between the record-side
//! and replay-side event rings.
//!
//! Both rings number events absolutely from zero, so each holds one
//! contiguous window of the logical event sequence. Alignment compares
//! the overlapping part of the two windows event-by-event; the first
//! sequence number where the sides disagree — different kind, thread, or
//! payload (e.g. a switch at a different `nyp`) — is where the replayed
//! execution left the recorded one. If the overlap agrees but one side
//! ran longer, the first event past the shorter side's end is reported
//! with the missing side as `None`.

use crate::ring::Event;
use codec::Json;

/// The first aligned position where the two rings disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingMismatch {
    /// The event index (absolute sequence number) of the divergence.
    pub seq: u64,
    /// The record side's event at `seq`, if its ring retained it.
    pub record: Option<Event>,
    /// The replay side's event at `seq`, if its ring retained it.
    pub replay: Option<Event>,
}

impl RingMismatch {
    /// The divergent event's kind name, preferring the replay side (the
    /// side that went wrong), falling back to the record side.
    pub fn kind_name(&self) -> &'static str {
        self.replay
            .or(self.record)
            .map(|e| e.kind.name())
            .unwrap_or("unknown")
    }

    pub fn to_json(&self) -> Json {
        let side = |e: &Option<Event>| e.map(|e| e.to_json()).unwrap_or(Json::Null);
        Json::obj(vec![
            ("kind", Json::Str(self.kind_name().into())),
            ("record", side(&self.record)),
            ("replay", side(&self.replay)),
            ("seq", Json::UInt(self.seq)),
        ])
    }

    pub fn describe(&self) -> String {
        let side = |e: &Option<Event>| {
            e.map(|e| e.describe())
                .unwrap_or_else(|| "<not present>".into())
        };
        format!(
            "first divergence at event #{} ({}):\n  record: {}\n  replay: {}",
            self.seq,
            self.kind_name(),
            side(&self.record),
            side(&self.replay),
        )
    }
}

/// Seq window `[first, last+1)` of a contiguous event slice.
fn window(events: &[Event]) -> Option<(u64, u64)> {
    let first = events.first()?.seq;
    let last = events.last()?.seq;
    debug_assert_eq!(last - first + 1, events.len() as u64, "ring not contiguous");
    Some((first, last + 1))
}

/// Event at absolute sequence `seq` within a contiguous slice.
fn at(events: &[Event], seq: u64) -> Option<Event> {
    let (lo, hi) = window(events)?;
    if seq < lo || seq >= hi {
        return None;
    }
    Some(events[(seq - lo) as usize])
}

/// Align two contiguous event windows and return the first position
/// where they disagree, or `None` if they are indistinguishable (equal
/// over the overlap and ending at the same sequence number).
pub fn first_mismatch(record: &[Event], replay: &[Event]) -> Option<RingMismatch> {
    let (rec_w, rep_w) = match (window(record), window(replay)) {
        (Some(a), Some(b)) => (a, b),
        (None, None) => return None,
        // One side has events, the other has none at all: diverged at the
        // non-empty side's first retained event.
        (Some((lo, _)), None) => {
            return Some(RingMismatch {
                seq: lo,
                record: at(record, lo),
                replay: None,
            })
        }
        (None, Some((lo, _))) => {
            return Some(RingMismatch {
                seq: lo,
                record: None,
                replay: at(replay, lo),
            })
        }
    };
    let start = rec_w.0.max(rep_w.0);
    let end = rec_w.1.min(rep_w.1);
    for seq in start..end.max(start) {
        let r = at(record, seq);
        let p = at(replay, seq);
        if r != p {
            return Some(RingMismatch {
                seq,
                record: r,
                replay: p,
            });
        }
    }
    // Overlap (possibly empty) agrees; a tail-length difference is still
    // a divergence — one side saw events the other never produced.
    if rec_w.1 != rep_w.1 {
        let seq = rec_w.1.min(rep_w.1);
        return Some(RingMismatch {
            seq,
            record: at(record, seq),
            replay: at(replay, seq),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{EventKind, EventRing};

    fn ring_of(kinds: &[(u32, EventKind)], cap: usize) -> EventRing {
        let mut r = EventRing::new(cap);
        for &(tid, k) in kinds {
            r.push(tid, k);
        }
        r
    }

    #[test]
    fn identical_rings_have_no_mismatch() {
        let evs = [
            (0, EventKind::Switch { to: 1, nyp: 10 }),
            (1, EventKind::ClockRead { value: 5 }),
            (1, EventKind::Gc { collection: 1 }),
        ];
        let a = ring_of(&evs, 8);
        let b = ring_of(&evs, 8);
        assert_eq!(first_mismatch(&a.events(), &b.events()), None);
    }

    #[test]
    fn payload_difference_is_localized() {
        let a = ring_of(
            &[
                (0, EventKind::Switch { to: 1, nyp: 10 }),
                (1, EventKind::Switch { to: 0, nyp: 20 }),
            ],
            8,
        );
        let b = ring_of(
            &[
                (0, EventKind::Switch { to: 1, nyp: 10 }),
                (1, EventKind::Switch { to: 0, nyp: 21 }),
            ],
            8,
        );
        let m = first_mismatch(&a.events(), &b.events()).unwrap();
        assert_eq!(m.seq, 1);
        assert_eq!(m.kind_name(), "switch");
        assert!(m.record.is_some() && m.replay.is_some());
        assert!(m.describe().contains("event #1"));
    }

    #[test]
    fn different_capacities_still_align_on_overlap() {
        // Record ring kept everything; replay ring dropped its oldest.
        let evs: Vec<(u32, EventKind)> = (0..6)
            .map(|i| (0, EventKind::Gc { collection: i }))
            .collect();
        let mut bad = evs.clone();
        bad[4] = (0, EventKind::Gc { collection: 99 });
        let a = ring_of(&evs, 16);
        let b = ring_of(&bad, 3); // retains seqs 3..6
        let m = first_mismatch(&a.events(), &b.events()).unwrap();
        assert_eq!(m.seq, 4);
    }

    #[test]
    fn tail_length_difference_is_a_divergence() {
        let evs = [
            (0, EventKind::ClockRead { value: 1 }),
            (0, EventKind::ClockRead { value: 2 }),
        ];
        let a = ring_of(&evs, 8);
        let mut b = ring_of(&evs, 8);
        b.push(0, EventKind::ClockRead { value: 3 });
        let m = first_mismatch(&a.events(), &b.events()).unwrap();
        assert_eq!(m.seq, 2);
        assert_eq!(m.record, None);
        assert!(m.replay.is_some());
        assert_eq!(m.kind_name(), "clock_read");
    }

    #[test]
    fn one_empty_side_diverges_at_first_event() {
        let a = ring_of(&[(0, EventKind::Gc { collection: 0 })], 8);
        let b = EventRing::new(8);
        let m = first_mismatch(&a.events(), &b.events()).unwrap();
        assert_eq!(m.seq, 0);
        assert!(m.replay.is_none());
        assert_eq!(first_mismatch(&b.events(), &b.events()), None);
    }

    #[test]
    fn mismatch_json_is_valid() {
        let a = ring_of(&[(0, EventKind::Compile { method: 1 })], 4);
        let b = ring_of(&[(0, EventKind::Compile { method: 2 })], 4);
        let m = first_mismatch(&a.events(), &b.events()).unwrap();
        assert!(codec::Json::parse(&m.to_json().to_string()).is_ok());
    }
}
