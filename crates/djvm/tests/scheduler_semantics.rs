//! Edge-case semantics of the thread package — the deterministic machinery
//! DejaVu replays for free (§2.2). Each test pins a behaviour that, if it
//! changed, would silently alter every trace's meaning.

use djvm::{
    interp, CycleClock, FixedTimer, Passthrough, Program, ProgramBuilder, Ty, Vm, VmConfig,
    VmStatus,
};
use std::sync::Arc;

fn run(p: Program) -> Vm {
    run_cfg(p, VmConfig::default(), 10_000)
}

fn run_cfg(p: Program, cfg: VmConfig, timer: u64) -> Vm {
    let mut vm = Vm::boot(
        Arc::new(p),
        cfg,
        Box::new(FixedTimer::new(timer)),
        Box::new(CycleClock::new(0, 100)),
    )
    .unwrap();
    let mut hook = Passthrough;
    interp::run(&mut vm, &mut hook, 20_000_000);
    vm
}

#[test]
fn monitors_are_recursive() {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("lock", Ty::Ref).build();
    let lock = pb.class("Lock").build();
    let m = pb.method("main", 0, 0).code(|a| {
        a.new(lock).put_static(g, 0);
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 0).monitor_enter(); // re-enter
        a.get_static(g, 0).monitor_exit();
        a.get_static(g, 0).monitor_exit();
        a.iconst(1).print();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.output, "1\n");
    assert_eq!(vm.status, VmStatus::Halted);
}

#[test]
fn monitor_exit_without_enter_is_an_error() {
    let mut pb = ProgramBuilder::new();
    let lock = pb.class("Lock").build();
    let m = pb.method("main", 0, 1).code(|a| {
        a.new(lock).store(0);
        a.load(0).monitor_exit();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert!(
        matches!(vm.status, VmStatus::Error(e) if e.kind == djvm::ErrKind::IllegalMonitorState)
    );
}

#[test]
fn wait_without_ownership_is_an_error() {
    let mut pb = ProgramBuilder::new();
    let lock = pb.class("Lock").build();
    let m = pb.method("main", 0, 1).code(|a| {
        a.new(lock).store(0);
        a.load(0).wait().pop();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert!(
        matches!(vm.status, VmStatus::Error(e) if e.kind == djvm::ErrKind::IllegalMonitorState)
    );
}

#[test]
fn notify_wakes_waiters_in_fifo_order() {
    // Three waiters enqueue in spawn order; three notifies release them in
    // the same order — the deterministic FIFO discipline replay relies on.
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("lock", Ty::Ref)
        .static_field("gate", Ty::Int)
        .build();
    let lock = pb.class("Lock").build();
    let waiter = pb.method("waiter", 1, 1).code(|a| {
        a.get_static(g, 0).monitor_enter();
        a.label("chk");
        a.get_static(g, 1).if_nz("go");
        a.get_static(g, 0).wait().pop();
        a.goto("chk");
        a.label("go");
        a.load(0).print(); // print my id in wake order
        a.get_static(g, 0).monitor_exit();
        a.ret();
    });
    let m = pb.method("main", 0, 3).code(|a| {
        a.new(lock).put_static(g, 0);
        a.iconst(0).put_static(g, 1);
        a.iconst(1).spawn(waiter, 1).store(0);
        a.yield_now(); // let waiter 1 block first
        a.iconst(2).spawn(waiter, 1).store(1);
        a.yield_now();
        a.iconst(3).spawn(waiter, 1).store(2);
        a.yield_now();
        a.get_static(g, 0).monitor_enter();
        a.iconst(1).put_static(g, 1);
        a.get_static(g, 0).notify_all();
        a.get_static(g, 0).monitor_exit();
        a.load(0).join();
        a.load(1).join();
        a.load(2).join();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.output, "1\n2\n3\n", "FIFO wake order");
}

#[test]
fn notify_without_waiters_is_a_silent_noop() {
    let mut pb = ProgramBuilder::new();
    let lock = pb.class("Lock").build();
    let m = pb.method("main", 0, 1).code(|a| {
        a.new(lock).store(0);
        a.load(0).monitor_enter();
        a.load(0).notify();
        a.load(0).notify_all();
        a.load(0).monitor_exit();
        a.iconst(7).print();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.output, "7\n");
}

#[test]
fn join_on_terminated_thread_returns_immediately() {
    let mut pb = ProgramBuilder::new();
    let worker = pb.method("w", 0, 0).code(|a| {
        a.ret();
    });
    let m = pb.method("main", 0, 1).code(|a| {
        a.spawn(worker, 0).store(0);
        a.load(0).join();
        a.load(0).join(); // second join on a dead thread
        a.iconst(1).print();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.output, "1\n");
}

#[test]
fn join_chain_and_many_joiners() {
    // Several threads join the same target; all wake on its termination.
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("n", Ty::Int).build();
    let slow = pb.method("slow", 0, 1).code(|a| {
        a.iconst(20).sleep().pop();
        a.ret();
    });
    let joiner = pb.method_typed("joiner", vec![Ty::Ref], 1, None).code(|a| {
        a.load(0).join();
        a.get_static(g, 0).iconst(1).add().put_static(g, 0);
        a.ret();
    });
    let m = pb.method("main", 0, 4).code(|a| {
        a.iconst(0).put_static(g, 0);
        a.spawn(slow, 0).store(0);
        a.load(0).spawn(joiner, 1).store(1);
        a.load(0).spawn(joiner, 1).store(2);
        a.load(0).spawn(joiner, 1).store(3);
        a.load(1).join();
        a.load(2).join();
        a.load(3).join();
        a.get_static(g, 0).print();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.output, "3\n");
}

#[test]
fn interrupt_flag_is_sticky_until_consumed() {
    // Interrupting a running thread sets the flag; the *next* sleep
    // returns immediately with status 1.
    let mut pb = ProgramBuilder::new();
    let worker = pb.method("w", 0, 1).code(|a| {
        // spin a little so main can interrupt us while running
        a.iconst(0).store(0);
        a.label("spin");
        a.load(0).iconst(60).ge().if_nz("s");
        a.load(0).iconst(1).add().store(0);
        a.goto("spin");
        a.label("s");
        a.iconst(1_000_000).sleep().print(); // should be 1 (interrupted)
        a.ret();
    });
    let m = pb.method("main", 0, 1).code(|a| {
        a.spawn(worker, 0).store(0);
        a.load(0).interrupt(); // worker not sleeping yet: flag only
        a.load(0).join();
        a.halt();
    });
    let vm = run_cfg(pb.finish(m).unwrap(), VmConfig::default(), 23);
    assert_eq!(vm.output, "1\n");
}

#[test]
fn interrupt_waiting_thread_delivers_status_1() {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("lock", Ty::Ref).build();
    let lock = pb.class("Lock").build();
    let waiter = pb.method("w", 0, 0).code(|a| {
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 0).wait().print(); // 1 = interrupted
        a.get_static(g, 0).monitor_exit();
        a.ret();
    });
    let m = pb.method("main", 0, 1).code(|a| {
        a.new(lock).put_static(g, 0);
        a.spawn(waiter, 0).store(0);
        a.yield_now();
        a.load(0).interrupt();
        a.load(0).join();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.output, "1\n");
}

#[test]
fn timed_wait_notified_before_timeout_gets_status_0() {
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("lock", Ty::Ref).build();
    let lock = pb.class("Lock").build();
    let waiter = pb.method("w", 0, 0).code(|a| {
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 0).iconst(1_000_000).timed_wait().print(); // 0
        a.get_static(g, 0).monitor_exit();
        a.ret();
    });
    let m = pb.method("main", 0, 1).code(|a| {
        a.new(lock).put_static(g, 0);
        a.spawn(waiter, 0).store(0);
        a.yield_now();
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 0).notify();
        a.get_static(g, 0).monitor_exit();
        a.load(0).join();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.output, "0\n");
}

#[test]
fn wait_restores_monitor_recursion_depth() {
    // Enter twice, wait, get notified: the waiter must again hold the
    // monitor at depth 2 (both exits must succeed).
    let mut pb = ProgramBuilder::new();
    let g = pb.class("G").static_field("lock", Ty::Ref).build();
    let lock = pb.class("Lock").build();
    let waiter = pb.method("w", 0, 0).code(|a| {
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 0).wait().pop();
        a.get_static(g, 0).monitor_exit();
        a.get_static(g, 0).monitor_exit();
        a.iconst(9).print();
        a.ret();
    });
    let m = pb.method("main", 0, 1).code(|a| {
        a.new(lock).put_static(g, 0);
        a.spawn(waiter, 0).store(0);
        a.yield_now();
        a.get_static(g, 0).monitor_enter();
        a.get_static(g, 0).notify();
        a.get_static(g, 0).monitor_exit();
        a.load(0).join();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.output, "9\n");
    assert_eq!(vm.status, VmStatus::Halted);
}

#[test]
fn two_thread_monitor_deadlock_detected() {
    // Classic AB/BA deadlock — detected deterministically, not hung.
    let mut pb = ProgramBuilder::new();
    let g = pb
        .class("G")
        .static_field("a", Ty::Ref)
        .static_field("b", Ty::Ref)
        .build();
    let lock = pb.class("Lock").build();
    let t1 = pb.method("t1", 0, 1).code(|a| {
        a.get_static(g, 0).monitor_enter();
        // delay so t2 can grab B
        a.iconst(0).store(0);
        a.label("d");
        a.load(0).iconst(50).ge().if_nz("dd");
        a.load(0).iconst(1).add().store(0);
        a.goto("d");
        a.label("dd");
        a.get_static(g, 1).monitor_enter(); // blocks forever
        a.ret();
    });
    let t2 = pb.method("t2", 0, 1).code(|a| {
        a.get_static(g, 1).monitor_enter();
        a.iconst(0).store(0);
        a.label("d");
        a.load(0).iconst(50).ge().if_nz("dd");
        a.load(0).iconst(1).add().store(0);
        a.goto("d");
        a.label("dd");
        a.get_static(g, 0).monitor_enter(); // blocks forever
        a.ret();
    });
    let m = pb.method("main", 0, 2).code(|a| {
        a.new(lock).put_static(g, 0);
        a.new(lock).put_static(g, 1);
        a.spawn(t1, 0).store(0);
        a.spawn(t2, 0).store(1);
        a.load(0).join();
        a.load(1).join();
        a.halt();
    });
    let vm = run_cfg(pb.finish(m).unwrap(), VmConfig::default(), 13);
    assert_eq!(vm.status, VmStatus::Deadlocked);
}

#[test]
fn sleep_ordering_respects_deadlines_not_spawn_order() {
    let mut pb = ProgramBuilder::new();
    let sleeper = pb.method("s", 2, 2).code(|a| {
        a.load(0).sleep().pop();
        a.load(1).print(); // id, printed in wake order
        a.ret();
    });
    let m = pb.method("main", 0, 3).code(|a| {
        a.iconst(30).iconst(1).spawn(sleeper, 2).store(0);
        a.iconst(10).iconst(2).spawn(sleeper, 2).store(1);
        a.iconst(20).iconst(3).spawn(sleeper, 2).store(2);
        a.load(0).join();
        a.load(1).join();
        a.load(2).join();
        a.halt();
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.output, "2\n3\n1\n", "wake in deadline order");
}

#[test]
fn yield_rotates_fifo() {
    // Three spinners that yield voluntarily: output is strict round-robin.
    let mut pb = ProgramBuilder::new();
    let worker = pb.method("w", 1, 2).code(|a| {
        a.iconst(0).store(1);
        a.label("top");
        a.load(1).iconst(3).ge().if_nz("done");
        a.load(0).print();
        a.load(1).iconst(1).add().store(1);
        a.yield_now();
        a.goto("top");
        a.label("done");
        a.ret();
    });
    let m = pb.method("main", 0, 3).code(|a| {
        a.iconst(1).spawn(worker, 1).store(0);
        a.iconst(2).spawn(worker, 1).store(1);
        a.iconst(3).spawn(worker, 1).store(2);
        a.load(0).join();
        a.load(1).join();
        a.load(2).join();
        a.halt();
    });
    // Huge timer quantum: no preemption, only voluntary yields.
    let vm = run_cfg(pb.finish(m).unwrap(), VmConfig::default(), 1 << 20);
    assert_eq!(vm.output, "1\n2\n3\n1\n2\n3\n1\n2\n3\n");
}

#[test]
fn main_termination_does_not_kill_other_threads() {
    // Our threads are non-daemon: the VM halts when ALL terminate.
    let mut pb = ProgramBuilder::new();
    let worker = pb.method("w", 0, 0).code(|a| {
        a.iconst(5).sleep().pop();
        a.iconst(77).print();
        a.ret();
    });
    let m = pb.method("main", 0, 1).code(|a| {
        a.spawn(worker, 0).store(0);
        a.ret(); // main returns without joining
    });
    let vm = run(pb.finish(m).unwrap());
    assert_eq!(vm.status, VmStatus::Halted);
    assert_eq!(vm.output, "77\n", "worker finished after main died");
}
