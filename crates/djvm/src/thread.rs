//! Green threads with heap-resident activation stacks.
//!
//! As in Jalapeño, each thread's activation stack is an ordinary (but
//! specially flagged) heap array that the VM **grows by allocating a larger
//! array and rebasing** when a frame no longer fits — which is why
//! instrumentation-induced stack growth is a perturbation channel the
//! paper's "symmetry in stack overflow" must close (§2.4).
//!
//! ## Frame layout (absolute heap addresses)
//!
//! ```text
//! fp+0  saved fp of caller (0 for a thread's root frame)
//! fp+1  method id
//! fp+2  saved caller pc | flags   (see [`SavedPc`])
//! fp+3 .. fp+3+nlocals-1          locals
//! fp+3+nlocals ..                 operand stack; sp = one past the top
//! ```

use crate::bytecode::MethodId;
use crate::heap::Addr;

/// Thread identifier (index into the VM's thread table).
pub type Tid = u32;

/// What a thread is doing, scheduler-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// In the ready queue (or current).
    Ready,
    /// The (single) running thread — we are a uniprocessor.
    Running,
    /// Blocked entering the monitor of the object at the address.
    BlockedMonitor(Addr),
    /// In the wait set of the monitor (untimed `wait`).
    Waiting(Addr),
    /// In the wait set with a timeout pending.
    TimedWaiting(Addr),
    /// In `sleep`.
    Sleeping,
    /// Blocked in `join` on the given thread.
    JoinWaiting(Tid),
    /// Finished.
    Terminated,
}

/// Decoded `fp+2` word: the caller's pc at its call instruction, plus frame
/// flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedPc {
    /// The pc of the `Call`/`CallVirtual` in the caller (resume at +1).
    pub caller_pc: u32,
    /// Discard this frame's return value (native-callback frames).
    pub discard_result: bool,
    /// This frame belongs to interpreted *instrumentation* (a DejaVu helper
    /// method): when it pops, the VM leaves instrumentation mode and a
    /// deferred thread switch may fire. Yield points inside such frames are
    /// invisible to the logical clock (the `liveClock` rule of §2.4).
    pub instrumentation: bool,
}

const DISCARD_BIT: u64 = 1 << 62;
const INSTR_BIT: u64 = 1 << 61;

impl SavedPc {
    pub fn encode(self) -> u64 {
        let mut w = self.caller_pc as u64;
        if self.discard_result {
            w |= DISCARD_BIT;
        }
        if self.instrumentation {
            w |= INSTR_BIT;
        }
        w
    }

    pub fn decode(w: u64) -> SavedPc {
        SavedPc {
            caller_pc: (w & 0xFFFF_FFFF) as u32,
            discard_result: w & DISCARD_BIT != 0,
            instrumentation: w & INSTR_BIT != 0,
        }
    }
}

/// Per-thread state. The register file (`fp`, `sp`, `pc`, `method`) is
/// authoritative here at all times, so the GC and the debugger can walk any
/// thread's frames without cooperation from the interpreter.
#[derive(Debug, Clone)]
pub struct ThreadState {
    pub tid: Tid,
    /// The guest-visible Thread object.
    pub thread_obj: Addr,
    /// The activation-stack array (0 once terminated).
    pub stack_obj: Addr,
    /// Current frame base (absolute heap address).
    pub fp: Addr,
    /// One past the top of the operand stack (absolute heap address).
    pub sp: Addr,
    /// Next instruction to execute in `method`.
    pub pc: u32,
    pub method: MethodId,
    pub status: ThreadStatus,
    /// Value to push on the operand stack when next resumed (wait/sleep
    /// status codes).
    pub pending_push: Option<i64>,
    /// Java-style interrupt flag.
    pub interrupted: bool,
    /// Yield points executed by this thread while *not* in instrumentation:
    /// the thread's logical clock (diagnostics; DejaVu keeps its own).
    pub yield_points: u64,
    pub name: String,
}

impl ThreadState {
    /// Operand-stack depth of the current frame, given its locals count.
    pub fn stack_depth(&self, nlocals: u16) -> usize {
        (self.sp - (self.fp + 3 + nlocals as u64)) as usize
    }

    pub fn is_blocked(&self) -> bool {
        matches!(
            self.status,
            ThreadStatus::BlockedMonitor(_)
                | ThreadStatus::Waiting(_)
                | ThreadStatus::TimedWaiting(_)
                | ThreadStatus::Sleeping
                | ThreadStatus::JoinWaiting(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saved_pc_roundtrip() {
        for pc in [0u32, 1, 12345, u32::MAX] {
            for discard in [false, true] {
                for instr in [false, true] {
                    let s = SavedPc {
                        caller_pc: pc,
                        discard_result: discard,
                        instrumentation: instr,
                    };
                    assert_eq!(SavedPc::decode(s.encode()), s);
                }
            }
        }
    }

    #[test]
    fn blocked_predicate() {
        let mut t = ThreadState {
            tid: 0,
            thread_obj: 0,
            stack_obj: 0,
            fp: 0,
            sp: 0,
            pc: 0,
            method: 0,
            status: ThreadStatus::Running,
            pending_push: None,
            interrupted: false,
            yield_points: 0,
            name: "t".into(),
        };
        assert!(!t.is_blocked());
        t.status = ThreadStatus::Sleeping;
        assert!(t.is_blocked());
        t.status = ThreadStatus::Terminated;
        assert!(!t.is_blocked());
    }

    #[test]
    fn stack_depth_computation() {
        let t = ThreadState {
            tid: 0,
            thread_obj: 0,
            stack_obj: 0,
            fp: 100,
            sp: 110,
            pc: 0,
            method: 0,
            status: ThreadStatus::Running,
            pending_push: None,
            interrupted: false,
            yield_points: 0,
            name: "t".into(),
        };
        // header 3 + 4 locals => operand base 107; sp 110 => depth 3.
        assert_eq!(t.stack_depth(4), 3);
    }
}
