//! The interpreter: executes guest bytecode one instruction per "cycle",
//! driving the timer, the yield-point discipline, and the hook.
//!
//! Thread switches happen at exactly two kinds of places:
//!
//! * **Deterministic switches** — a synchronization operation blocks the
//!   current thread (`monitorenter` on a held monitor, `wait`, `join`,
//!   `sleep`). These need no logging: the thread package itself is
//!   replayed (paper §2.2).
//! * **Yield points** — method prologues and taken loop backedges, where
//!   the hook decides (Fig. 2): passthrough switches iff the hardware
//!   preempt bit is set; record logs the yield-point delta; replay forces
//!   the switch when the recorded delta expires.

use crate::bytecode::{MethodId, Op, Ty};
use crate::compile::QOp;
use crate::heap::{Addr, Word, NULL};
use crate::hook::{AccessDecision, ExecHook};
use crate::sched::{EntryWaiter, Sleeper, WaitEntry};
use crate::thread::{SavedPc, ThreadStatus, Tid};
use crate::vm::{ArgSource, ErrKind, Vm, VmError, VmStatus};

/// How the executed instruction affected the pc.
enum Flow {
    /// Fall through to pc+1.
    Next,
    /// Jump to an absolute pc; `backedge` says the branch was a taken
    /// backward branch (a yield point).
    Jump(u32, bool),
    /// The handler updated thread state itself (call, return, block, halt).
    Managed,
}

/// Execute instructions until the VM stops or `max_steps` elapse.
/// Returns the final (or current) status.
///
/// Dispatches through the quickened `QOp` stream when
/// `vm.config.quicken` is set; a fused superinstruction counts as its
/// constituent instructions against the budget, so a budget-limited run
/// pauses at exactly the same instruction boundary either way (the
/// debugger's checkpoint seek depends on this).
pub fn run(vm: &mut Vm, hook: &mut dyn ExecHook, max_steps: u64) -> VmStatus {
    if vm.config.quicken {
        return run_quick(vm, hook, max_steps);
    }
    let mut n = 0;
    while vm.status.is_running() && n < max_steps {
        step(vm, hook);
        n += 1;
    }
    vm.status
}

/// Execute until the VM stops (no budget). Guest programs that do not
/// terminate will spin forever, as real ones do; tests use [`run`].
pub fn run_to_completion(vm: &mut Vm, hook: &mut dyn ExecHook) -> VmStatus {
    if vm.config.quicken {
        return run_quick(vm, hook, u64::MAX);
    }
    while vm.status.is_running() {
        step(vm, hook);
    }
    vm.status
}

/// The quickened dispatch core: executes the `QOp` stream with a cached
/// frame cursor (`pc`, `sp`, frame base held in locals, flushed to the
/// thread only at switches, calls, yield points, and generic fallbacks).
///
/// # The cycle-accounting invariant (DESIGN §5)
///
/// Every constituent instruction of a fused superinstruction advances
/// `counters.steps`, `cycles`, the fingerprint, and `cycles_to_tick`
/// exactly as the generic [`step`] loop would. Fused execution batches
/// that accounting *only* when it is provably equivalent:
///
/// * a width-`k` superinstruction runs fused only if `cycles_to_tick > k`,
///   so no timer tick can fire inside the batch — otherwise we fall back
///   to the generic single-instruction path, which splits the fusion at
///   the tick (executing just the first constituent with full semantics;
///   the interior pcs keep their single-op `QOp` forms, so execution
///   resumes mid-pattern with no pc remapping);
/// * a fused op runs only if `n + k <= max_steps`, so budget-limited runs
///   pause on identical instruction boundaries;
/// * only *total* constituents are fused (no allocation, no failure, no
///   hook consultation), so "accounting for k, then effects of k" is
///   observationally identical to the interleaved generic order.
fn run_quick(vm: &mut Vm, hook: &mut dyn ExecHook, max_steps: u64) -> VmStatus {
    let mut n: u64 = 0;
    // The program Arc never changes identity during a run; clone it once
    // so per-method qops slices can be borrowed while `vm` is mutated.
    let program = vm.program.clone();
    // Per-QOp cycle attribution is keyed by the quickened stream, so it
    // lives here and only here (the generic path has no QOps to key by).
    // One hoisted bool keeps the profiler-off cost to a predicted branch.
    let prof_on = vm.telem.profile.is_some();
    'outer: while vm.status.is_running() && n < max_steps {
        // ---- refresh the cached frame cursor ----
        let tid = vm.sched.current;
        let cur = tid as usize;
        let (method, mut pc, mut sp, base) = {
            let t = &vm.threads[cur];
            (t.method, t.pc, t.sp, t.fp + 3)
        };
        // ---- tier-2: megablocks execute at compiled loop heads ----
        if vm.mega.enabled && vm.instr_depth == 0 {
            if let Some(block) = vm.mega_block(method, pc) {
                let before = n;
                run_mega(vm, hook, &block, &mut n, max_steps, prof_on);
                if n != before {
                    continue 'outer;
                }
                // Zero progress (entry-gate miss, or a deopt at the very
                // first step): the VM is bit-identical to entry, so fall
                // through into quickened dispatch below, which always
                // advances — the block is only re-tried at the next taken
                // backedge, so this cannot spin.
            }
        }
        let qops = &program.compiled(method).qops;
        // Cached accounting state: the hot loop advances these in
        // registers and writes them back only at flush points.
        let mut cycles = vm.cycles;
        let mut steps = vm.counters.steps;
        let mut to_tick = vm.cycles_to_tick;
        let fp_full = vm.fingerprint.mode() == crate::fingerprint::FingerprintMode::Full;
        let (mut fph, mut fpsteps) = vm.fingerprint.step_state();

        // Write the cursor and accounting state back. Required before
        // anything that can switch threads, push/pop frames, fail (error
        // pcs come from the thread), allocate (GC walks frames; the
        // copying collector moves the stack), consult the hook, or touch
        // the fingerprint (events must mix in program order).
        macro_rules! flush {
            () => {{
                let t = &mut vm.threads[cur];
                t.pc = pc;
                t.sp = sp;
                vm.cycles = cycles;
                vm.counters.steps = steps;
                vm.cycles_to_tick = to_tick;
                vm.fingerprint.set_step_state(fph, fpsteps);
            }};
        }
        // Per-instruction accounting, bit-identical to [`step`]'s prelude
        // (including the timer tick, which only touches VM-global state).
        macro_rules! account1 {
            () => {{
                steps += 1;
                cycles += 1;
                if fp_full && vm.instr_depth == 0 {
                    fpsteps += 1;
                    fph = crate::fingerprint::Fingerprint::mix_step(fph, tid, method, pc);
                }
                to_tick -= 1;
                if to_tick == 0 {
                    vm.preempt_bit = true;
                    to_tick = vm.timer.next_interval();
                    vm.telem.timer_interval(to_tick);
                }
                n += 1;
                if prof_on {
                    if let Some(p) = vm.telem.profile.as_deref_mut() {
                        p.qop(qops[pc as usize].kind_index(), 1);
                    }
                }
            }};
        }
        // Batched accounting for a width-`k` fusion. Caller must have
        // checked `fusible!(k)`: no tick fires inside the batch, so the
        // tick block is statically absent here.
        macro_rules! account_fused {
            ($k:expr) => {{
                let k: u64 = $k;
                steps += k;
                cycles += k;
                if fp_full && vm.instr_depth == 0 {
                    fpsteps += k;
                    for i in 0..k as u32 {
                        fph = crate::fingerprint::Fingerprint::mix_step(fph, tid, method, pc + i);
                    }
                }
                to_tick -= k;
                n += k;
                if prof_on {
                    if let Some(p) = vm.telem.profile.as_deref_mut() {
                        p.qop(qops[pc as usize].kind_index(), k);
                    }
                }
            }};
        }
        macro_rules! fusible {
            ($k:expr) => {
                to_tick > $k && n + $k <= max_steps
            };
        }
        // Fall back to the generic interpreter for one instruction: the
        // timer may expire here, the op may fail, switch, or allocate.
        macro_rules! generic {
            () => {{
                if prof_on {
                    if let Some(p) = vm.telem.profile.as_deref_mut() {
                        // One source instruction executes (a split fusion
                        // runs only its first constituent); attribute its
                        // cycle to the quickened kind that dispatched it.
                        p.qop(qops[pc as usize].kind_index(), 1);
                    }
                }
                flush!();
                step(vm, hook);
                n += 1;
                continue 'outer;
            }};
        }

        loop {
            if n >= max_steps {
                flush!();
                break 'outer;
            }
            debug_assert!(
                (pc as usize) < qops.len(),
                "pc {pc} out of range in method {method}"
            );
            match qops[pc as usize] {
                // ---- pure single ops: inline, cursor stays cached ----
                QOp::Const(v) => {
                    account1!();
                    vm.heap.mem[sp as usize] = v as Word;
                    sp += 1;
                    pc += 1;
                }
                QOp::Load(i) => {
                    account1!();
                    vm.heap.mem[sp as usize] = vm.heap.mem[(base + i as u64) as usize];
                    sp += 1;
                    pc += 1;
                }
                QOp::Store(i) => {
                    account1!();
                    sp -= 1;
                    vm.heap.mem[(base + i as u64) as usize] = vm.heap.mem[sp as usize];
                    pc += 1;
                }
                QOp::Dup => {
                    account1!();
                    vm.heap.mem[sp as usize] = vm.heap.mem[sp as usize - 1];
                    sp += 1;
                    pc += 1;
                }
                QOp::Pop => {
                    account1!();
                    sp -= 1;
                    pc += 1;
                }
                QOp::Swap => {
                    account1!();
                    vm.heap.mem.swap(sp as usize - 1, sp as usize - 2);
                    pc += 1;
                }
                QOp::Neg => {
                    account1!();
                    let i = sp as usize - 1;
                    vm.heap.mem[i] = (vm.heap.mem[i] as i64).wrapping_neg() as Word;
                    pc += 1;
                }
                QOp::RefEq => {
                    account1!();
                    sp -= 1;
                    let b = vm.heap.mem[sp as usize];
                    let i = sp as usize - 1;
                    vm.heap.mem[i] = (vm.heap.mem[i] == b) as Word;
                    pc += 1;
                }
                QOp::Alu(f) => {
                    account1!();
                    sp -= 1;
                    let b = vm.heap.mem[sp as usize] as i64;
                    let i = sp as usize - 1;
                    let a = vm.heap.mem[i] as i64;
                    vm.heap.mem[i] = f.apply(a, b) as Word;
                    pc += 1;
                }
                QOp::Cmp(f) => {
                    account1!();
                    sp -= 1;
                    let b = vm.heap.mem[sp as usize] as i64;
                    let i = sp as usize - 1;
                    let a = vm.heap.mem[i] as i64;
                    vm.heap.mem[i] = f.apply(a, b) as Word;
                    pc += 1;
                }

                // ---- branches: pre-decoded target + backedge flag ----
                QOp::Goto { target, backedge } => {
                    account1!();
                    pc = target;
                    if backedge && vm.status.is_running() {
                        vm.mega_note_backedge(method, target);
                        flush!();
                        yield_point(vm, hook);
                        continue 'outer;
                    }
                }
                QOp::If { target, backedge } => {
                    account1!();
                    sp -= 1;
                    let c = vm.heap.mem[sp as usize] as i64;
                    if c != 0 {
                        pc = target;
                        if backedge && vm.status.is_running() {
                            vm.mega_note_backedge(method, target);
                            flush!();
                            yield_point(vm, hook);
                            continue 'outer;
                        }
                    } else {
                        pc += 1;
                    }
                }
                QOp::IfZ { target, backedge } => {
                    account1!();
                    sp -= 1;
                    let c = vm.heap.mem[sp as usize] as i64;
                    if c == 0 {
                        pc = target;
                        if backedge && vm.status.is_running() {
                            vm.mega_note_backedge(method, target);
                            flush!();
                            yield_point(vm, hook);
                            continue 'outer;
                        }
                    } else {
                        pc += 1;
                    }
                }

                // ---- devirtualized call: both vtable probes pre-resolved ----
                QOp::CallMono {
                    class,
                    callee,
                    nargs,
                } => {
                    account1!();
                    let recv = vm.heap.mem[(sp - nargs as u64) as usize];
                    flush!();
                    if recv == NULL {
                        let e = vm.fail(ErrKind::NullDeref);
                        raise_err(vm, hook, e);
                        continue 'outer;
                    }
                    let h = vm.heap.header(recv);
                    if h.is_array || h.is_classobj || !program.is_subclass(h.class_id, class) {
                        let e = vm.fail(ErrKind::BadVirtualDispatch);
                        raise_err(vm, hook, e);
                        continue 'outer;
                    }
                    match vm.push_frame(callee, true, &[], false, false) {
                        Ok(()) => {
                            if vm.status.is_running() {
                                yield_point(vm, hook);
                            }
                        }
                        Err(e) => raise_err(vm, hook, e),
                    }
                    continue 'outer;
                }

                // ---- superinstructions: split at ticks and budget edges ----
                QOp::ConstStore { v, local } => {
                    if !fusible!(2) {
                        generic!();
                    }
                    account_fused!(2);
                    vm.heap.mem[(base + local as u64) as usize] = v as Word;
                    pc += 2;
                }
                QOp::LoadLoadAlu { a, b, f } => {
                    if !fusible!(3) {
                        generic!();
                    }
                    account_fused!(3);
                    let x = vm.heap.mem[(base + a as u64) as usize] as i64;
                    let y = vm.heap.mem[(base + b as u64) as usize] as i64;
                    vm.heap.mem[sp as usize] = f.apply(x, y) as Word;
                    sp += 1;
                    pc += 3;
                }
                QOp::LoadConstAlu { a, v, f } => {
                    if !fusible!(3) {
                        generic!();
                    }
                    account_fused!(3);
                    let x = vm.heap.mem[(base + a as u64) as usize] as i64;
                    vm.heap.mem[sp as usize] = f.apply(x, v) as Word;
                    sp += 1;
                    pc += 3;
                }
                QOp::CmpIf {
                    f,
                    target,
                    backedge,
                    jump_if,
                } => {
                    if !fusible!(2) {
                        generic!();
                    }
                    account_fused!(2);
                    sp -= 2;
                    let a = vm.heap.mem[sp as usize] as i64;
                    let b = vm.heap.mem[sp as usize + 1] as i64;
                    if f.apply(a, b) == jump_if {
                        pc = target;
                        if backedge && vm.status.is_running() {
                            vm.mega_note_backedge(method, target);
                            flush!();
                            yield_point(vm, hook);
                            continue 'outer;
                        }
                    } else {
                        pc += 2;
                    }
                }
                QOp::LoadConstCmpIf {
                    a,
                    v,
                    f,
                    target,
                    backedge,
                    jump_if,
                } => {
                    if !fusible!(4) {
                        generic!();
                    }
                    account_fused!(4);
                    let x = vm.heap.mem[(base + a as u64) as usize] as i64;
                    if f.apply(x, v) == jump_if {
                        pc = target;
                        if backedge && vm.status.is_running() {
                            vm.mega_note_backedge(method, target);
                            flush!();
                            yield_point(vm, hook);
                            continue 'outer;
                        }
                    } else {
                        pc += 4;
                    }
                }

                // ---- everything else: full-semantics generic step ----
                QOp::Gen(_) => generic!(),
            }
        }
    }
    vm.status
}

/// Tier-2 dispatch: execute whole iterations of a compiled megablock.
///
/// # Extending the cycle-accounting invariant (DESIGN §10)
///
/// A full iteration (`width` source instructions, `yields` yield points)
/// runs batched only when three gates all pass at the head:
///
/// * `cycles_to_tick > width` — no timer tick can fire inside the batch,
///   so the preempt bit cannot newly set and per-step accounting needs no
///   tick check (the fused-superinstruction gate, applied per iteration);
/// * `n + width <= max_steps` — budget-limited runs pause on identical
///   instruction boundaries in every tier;
/// * `h >= yields` — the hook has guaranteed that many upcoming
///   yield-point consults are *quiet* (no switch, no helper), so skipping
///   them and crediting the counts at exit is observationally identical.
///   `h` is consulted once at entry: within a tick-free window the horizon
///   cannot shrink for any other reason (passthrough/record horizons
///   depend only on the preempt bit; replay's recorded delta decreases by
///   exactly the yield points we credit).
///
/// Every guard failure — real or injected — exits *before* the offending
/// step, with the thread cursor flushed to that step's exact
/// (method, pc, sp) and all prefix accounting written back: the quickened
/// tier then re-executes the step with full semantics (error events, hook
/// consults), so a deopt is never observable. Inlined calls push and pop
/// *real* frames (`push_frame`/`do_return`), keeping physical stack writes
/// identical to the quickened tier; fingerprint state is synced around
/// them so their events (stack growth, profiler spans) interleave in
/// program order.
// Kept out of the tier-1 dispatch loop: inlining this large body bloats
// `run_quick`'s icache footprint for a call taken only at hot loop heads.
#[inline(never)]
fn run_mega(
    vm: &mut Vm,
    hook: &mut dyn ExecHook,
    block: &crate::compile::MegaBlock,
    n: &mut u64,
    max_steps: u64,
    prof_on: bool,
) {
    use crate::compile::MegaOp;
    let width = block.width;
    let yields = block.yields;
    let stride = vm.config.mega_deopt_stride;
    let forced_guard = vm.config.mega_deopt_guard;

    // One horizon consult covers the whole entry (see above).
    let mut h = hook.quiet_yield_horizon(vm);

    let tid = vm.sched.current;
    let cur = tid as usize;
    let (mut sp, mut base) = {
        let t = &vm.threads[cur];
        (t.sp, t.fp + 3)
    };
    let mut cycles = vm.cycles;
    let mut steps = vm.counters.steps;
    let mut to_tick = vm.cycles_to_tick;
    let fp_full = vm.fingerprint.mode() == crate::fingerprint::FingerprintMode::Full;
    let (mut fph, mut fpsteps) = vm.fingerprint.step_state();
    // Yield points batched away so far; credited (to the counters and the
    // hook) on every exit path, before any real hook consult can happen.
    let mut skipped: u64 = 0;
    let mut entered = false;
    // Deopt injection is config-gated; keep the per-guard bookkeeping off
    // the fast path entirely when both knobs are cold.
    let inject = stride != 0 || forced_guard.is_some();
    // Accounting is *lazy*: completed clean iterations only bump
    // `full_iters`, the current (partial) iteration accumulates retired
    // widths in `done_w`, and everything is settled in one multiply at the
    // next batch boundary (or any flush). This is where tier 2 beats
    // tier 1 — the quickened loop pays the full per-step accounting (plus
    // a tick check and a hook consult per yield point) that the megablock
    // amortizes over a whole batch of iterations.
    let mut full_iters: u64 = 0;
    let mut done_w: u64 = 0;
    // An iteration is "dirty" once a mid-iteration flush (Call/Ret) has
    // already committed its prefix; its completion is then credited
    // individually instead of through `full_iters`. (Assigned at each
    // iteration start and by every flush, before any read.)
    let mut dirty;
    // The backedge's own yield-point share of `block.yields` (the rest
    // belongs to inlined call prologues, credited at each Call step).
    let call_yields = block
        .steps
        .iter()
        .filter(|s| matches!(s.op, crate::compile::MegaOp::Call { .. }))
        .count() as u64;
    let back_yield = yields.saturating_sub(call_yields);

    // Settle the lazily-batched work into the cached counters.
    macro_rules! commit {
        () => {{
            let dw = full_iters * width + done_w;
            if dw != 0 {
                steps += dw;
                cycles += dw;
                to_tick -= dw;
                *n += dw;
                if fp_full {
                    fpsteps += dw;
                }
            }
            if full_iters != 0 {
                h = h.saturating_sub(full_iters * yields);
                skipped += full_iters * back_yield;
                vm.mega.stats.iters += full_iters;
                full_iters = 0;
            }
            done_w = 0;
        }};
    }
    // Write the cursor and accounting back at an exact step boundary.
    macro_rules! flush_at {
        ($method:expr, $pc:expr) => {{
            commit!();
            dirty = true;
            let t = &mut vm.threads[cur];
            debug_assert_eq!(t.method, $method);
            t.pc = $pc;
            t.sp = sp;
            vm.cycles = cycles;
            vm.counters.steps = steps;
            vm.cycles_to_tick = to_tick;
            vm.fingerprint.set_step_state(fph, fpsteps);
        }};
    }
    // Batched accounting for one micro-op of `width` source instructions —
    // bit-identical to `account_fused!` once committed, with the tick block
    // statically absent (the entry gate guarantees no tick fires in the
    // iteration). The fingerprint chain cannot be deferred (each mix feeds
    // the next), so in `Full` mode it stays per-pc.
    macro_rules! account {
        ($s:expr) => {{
            if fp_full {
                for i in 0..$s.width {
                    fph = crate::fingerprint::Fingerprint::mix_step(fph, tid, $s.method, $s.pc + i);
                }
            }
            if prof_on {
                if let Some(p) = vm.telem.profile.as_deref_mut() {
                    // Unfold into the same per-QOp counters the quickened
                    // tier feeds (ProfileModel completeness holds tier-up).
                    p.qop($s.kind, $s.width as u64);
                }
            }
            done_w += $s.width as u64;
        }};
    }

    'outer: loop {
        commit!();
        // How many whole iterations fit before the next tick, the step
        // budget, or the hook's quiet-yield horizon could interrupt. Each
        // bound reproduces the per-iteration gate it replaces (`to_tick >
        // width`, `*n + width <= max_steps`, `h >= yields`) exactly, so
        // ticks/preemptions/pauses land on identical step boundaries.
        let by_tick = to_tick.saturating_sub(1) / width;
        let by_budget = max_steps.saturating_sub(*n) / width;
        let by_horizon = if yields == 0 { u64::MAX } else { h / yields };
        let avail = by_tick.min(by_budget).min(by_horizon);
        if avail == 0 {
            vm.mega.stats.gate_misses += 1;
            flush_at!(block.method, block.head);
            break 'outer;
        }
        if !entered {
            entered = true;
            vm.mega.stats.entries += 1;
        }
        // Closed-form fast path: a canonical counting loop retires a whole
        // batch of passing iterations with one multiply, provided no
        // per-step observer needs the iterations replayed step-by-step
        // (full-fingerprint pc mixes, profiler attribution, or forced
        // deopt injection). The final memory image is bit-identical: the
        // only per-iteration effects are the induction local (written with
        // its closed-form value) and operand-stack traffic below a
        // restored sp, which nothing live can observe. When the next
        // iteration would fail its guard (`kk == 0`), fall through to the
        // step loop so the deopt happens at the exact guard pc.
        if !fp_full && !prof_on && !inject {
            if let Some(cl) = block.closed {
                let slot = (base + cl.local as u64) as usize;
                let x0 = vm.heap.mem[slot] as i64;
                let kk = cl.passes(x0, avail);
                if kk > 0 {
                    vm.heap.mem[slot] = (x0 as i128 + kk as i128 * cl.step as i128) as i64 as Word;
                    full_iters += kk;
                    vm.mega.stats.closed_iters += kk;
                    continue 'outer;
                }
            }
        }
        let mut k = avail;
        'batch: while k > 0 {
            k -= 1;
            dirty = false;
            let mut guard_ix: u32 = 0;
            for s in &block.steps {
                let s = *s;
                // Evaluate one guard's forced-deopt injection knobs (predicted
                // false; the bookkeeping only runs when a knob is set).
                macro_rules! guard_forced {
                    () => {{
                        if inject {
                            let g = guard_ix;
                            guard_ix += 1;
                            vm.mega.guard_evals += 1;
                            (stride != 0 && vm.mega.guard_evals % stride == 0)
                                || forced_guard == Some(g)
                        } else {
                            false
                        }
                    }};
                }
                // Side exit *before* this step: quickened re-executes it.
                macro_rules! deopt {
                    ($forced:expr) => {{
                        flush_at!(s.method, s.pc);
                        vm.mega.stats.deopts += 1;
                        if $forced {
                            vm.mega.stats.forced_deopts += 1;
                        }
                        break 'outer;
                    }};
                }
                // A taken backedge terminator: iteration complete. Clean
                // iterations fold into `full_iters` (settled in one multiply
                // at the batch boundary); an iteration whose prefix a
                // mid-iteration flush already committed is credited here.
                macro_rules! iter_done {
                    () => {{
                        let _ = guard_ix; // terminators end the per-iteration count
                        if dirty {
                            steps += done_w;
                            cycles += done_w;
                            to_tick -= done_w;
                            *n += done_w;
                            if fp_full {
                                fpsteps += done_w;
                            }
                            done_w = 0;
                            h = h.saturating_sub(yields);
                            skipped += back_yield; // the backedge's yield point
                            vm.mega.stats.iters += 1;
                        } else {
                            debug_assert_eq!(done_w, width);
                            full_iters += 1;
                            done_w = 0;
                        }
                        continue 'batch;
                    }};
                }
                match s.op {
                    // ---- totals: same bodies as the quickened inline arms ----
                    MegaOp::Const(v) => {
                        account!(s);
                        vm.heap.mem[sp as usize] = v as Word;
                        sp += 1;
                    }
                    MegaOp::Load(i) => {
                        account!(s);
                        vm.heap.mem[sp as usize] = vm.heap.mem[(base + i as u64) as usize];
                        sp += 1;
                    }
                    MegaOp::Store(i) => {
                        account!(s);
                        sp -= 1;
                        vm.heap.mem[(base + i as u64) as usize] = vm.heap.mem[sp as usize];
                    }
                    MegaOp::Dup => {
                        account!(s);
                        vm.heap.mem[sp as usize] = vm.heap.mem[sp as usize - 1];
                        sp += 1;
                    }
                    MegaOp::Pop => {
                        account!(s);
                        sp -= 1;
                    }
                    MegaOp::Swap => {
                        account!(s);
                        vm.heap.mem.swap(sp as usize - 1, sp as usize - 2);
                    }
                    MegaOp::Neg => {
                        account!(s);
                        let i = sp as usize - 1;
                        vm.heap.mem[i] = (vm.heap.mem[i] as i64).wrapping_neg() as Word;
                    }
                    MegaOp::RefEq => {
                        account!(s);
                        sp -= 1;
                        let b = vm.heap.mem[sp as usize];
                        let i = sp as usize - 1;
                        vm.heap.mem[i] = (vm.heap.mem[i] == b) as Word;
                    }
                    MegaOp::Alu(f) => {
                        account!(s);
                        sp -= 1;
                        let b = vm.heap.mem[sp as usize] as i64;
                        let i = sp as usize - 1;
                        let a = vm.heap.mem[i] as i64;
                        vm.heap.mem[i] = f.apply(a, b) as Word;
                    }
                    MegaOp::Cmp(f) => {
                        account!(s);
                        sp -= 1;
                        let b = vm.heap.mem[sp as usize] as i64;
                        let i = sp as usize - 1;
                        let a = vm.heap.mem[i] as i64;
                        vm.heap.mem[i] = f.apply(a, b) as Word;
                    }
                    MegaOp::ConstStore { v, local } => {
                        account!(s);
                        vm.heap.mem[(base + local as u64) as usize] = v as Word;
                    }
                    MegaOp::LoadLoadAlu { a, b, f } => {
                        account!(s);
                        let x = vm.heap.mem[(base + a as u64) as usize] as i64;
                        let y = vm.heap.mem[(base + b as u64) as usize] as i64;
                        vm.heap.mem[sp as usize] = f.apply(x, y) as Word;
                        sp += 1;
                    }
                    MegaOp::LoadConstAlu { a, v, f } => {
                        account!(s);
                        let x = vm.heap.mem[(base + a as u64) as usize] as i64;
                        vm.heap.mem[sp as usize] = f.apply(x, v) as Word;
                        sp += 1;
                    }
                    MegaOp::Jump => {
                        // Interior forward Goto: transfer is implicit in step
                        // order; only the accounting remains.
                        account!(s);
                    }

                    // ---- guarded micro-ops ----
                    MegaOp::Div | MegaOp::Rem => {
                        let forced = guard_forced!();
                        let b = vm.heap.mem[sp as usize - 1] as i64;
                        if forced || b == 0 {
                            deopt!(forced);
                        }
                        account!(s);
                        sp -= 1;
                        let i = sp as usize - 1;
                        let a = vm.heap.mem[i] as i64;
                        let r = if s.op == MegaOp::Div {
                            a.wrapping_div(b)
                        } else {
                            a.wrapping_rem(b)
                        };
                        vm.heap.mem[i] = r as Word;
                    }
                    MegaOp::GuardIf { jump_if } => {
                        let forced = guard_forced!();
                        let c = vm.heap.mem[sp as usize - 1] as i64;
                        if forced || (c != 0) == jump_if {
                            deopt!(forced);
                        }
                        account!(s);
                        sp -= 1;
                    }
                    MegaOp::GuardCmpIf { f, jump_if } => {
                        let forced = guard_forced!();
                        let a = vm.heap.mem[sp as usize - 2] as i64;
                        let b = vm.heap.mem[sp as usize - 1] as i64;
                        if forced || f.apply(a, b) == jump_if {
                            deopt!(forced);
                        }
                        account!(s);
                        sp -= 2;
                    }
                    MegaOp::GuardLoadConstCmpIf { a, v, f, jump_if } => {
                        let forced = guard_forced!();
                        let x = vm.heap.mem[(base + a as u64) as usize] as i64;
                        if forced || f.apply(x, v) == jump_if {
                            deopt!(forced);
                        }
                        account!(s);
                    }
                    MegaOp::Call {
                        class,
                        callee,
                        nargs,
                    } => {
                        let forced = guard_forced!();
                        let bad = {
                            let recv = vm.heap.mem[(sp - nargs as u64) as usize];
                            recv == NULL || {
                                let hd = vm.heap.header(recv);
                                hd.is_array
                                    || hd.is_classobj
                                    || !vm.program.is_subclass(hd.class_id, class)
                            }
                        };
                        if forced || bad {
                            deopt!(forced);
                        }
                        account!(s);
                        flush_at!(s.method, s.pc); // push_frame reads t.pc/t.sp
                        if let Err(e) = vm.push_frame(callee, true, &[], false, false) {
                            if skipped > 0 {
                                vm.counters.yield_points += skipped;
                                vm.threads[cur].yield_points += skipped;
                                hook.on_yield_points_skipped(skipped);
                            }
                            raise_err(vm, hook, e);
                            return;
                        }
                        // New frame; the stack may have grown (and moved), and
                        // push_frame may have mixed fingerprint events.
                        {
                            let t = &vm.threads[cur];
                            sp = t.sp;
                            base = t.fp + 3;
                        }
                        let st = vm.fingerprint.step_state();
                        fph = st.0;
                        fpsteps = st.1;
                        skipped += 1; // the callee's prologue yield point, batched
                    }
                    MegaOp::Ret { has_val } => {
                        account!(s);
                        flush_at!(s.method, s.pc);
                        let retv = if has_val { Some(vm.pop_word()) } else { None };
                        do_return(vm, hook, retv);
                        {
                            let t = &vm.threads[cur];
                            sp = t.sp;
                            base = t.fp + 3;
                        }
                        let st = vm.fingerprint.step_state();
                        fph = st.0;
                        fpsteps = st.1;
                    }

                    // ---- backedge terminators ----
                    MegaOp::BackGoto => {
                        account!(s);
                        iter_done!();
                    }
                    MegaOp::BackIf { jump_if } => {
                        let forced = guard_forced!();
                        let c = vm.heap.mem[sp as usize - 1] as i64;
                        if forced || (c != 0) != jump_if {
                            deopt!(forced);
                        }
                        account!(s);
                        sp -= 1;
                        iter_done!();
                    }
                    MegaOp::BackCmpIf { f, jump_if } => {
                        let forced = guard_forced!();
                        let a = vm.heap.mem[sp as usize - 2] as i64;
                        let b = vm.heap.mem[sp as usize - 1] as i64;
                        if forced || f.apply(a, b) != jump_if {
                            deopt!(forced);
                        }
                        account!(s);
                        sp -= 2;
                        iter_done!();
                    }
                    MegaOp::BackLoadConstCmpIf { a, v, f, jump_if } => {
                        let forced = guard_forced!();
                        let x = vm.heap.mem[(base + a as u64) as usize] as i64;
                        if forced || f.apply(x, v) != jump_if {
                            deopt!(forced);
                        }
                        account!(s);
                        iter_done!();
                    }
                }
            }
            unreachable!("megablock has no backedge terminator");
        }
    }
    // The batching state is dead on every exit path (each flushes first).
    let _ = (dirty, done_w, full_iters, h);

    if skipped > 0 {
        vm.counters.yield_points += skipped;
        vm.threads[cur].yield_points += skipped;
        hook.on_yield_points_skipped(skipped);
    }
}

/// Execute one instruction of the current thread (plus any switch /
/// instrumentation processing it triggers).
pub fn step(vm: &mut Vm, hook: &mut dyn ExecHook) {
    if !vm.status.is_running() {
        return;
    }
    let cur = vm.sched.current as usize;
    let (method, pc) = {
        let t = &vm.threads[cur];
        (t.method, t.pc)
    };
    let op = vm.program.method(method).ops[pc as usize];

    vm.counters.steps += 1;
    vm.cycles += 1;
    if vm.instr_depth == 0 {
        vm.fingerprint.step(vm.sched.current, method, pc);
    }

    // Timer interrupt (the asynchronous, non-deterministic event of §2.3).
    vm.cycles_to_tick -= 1;
    if vm.cycles_to_tick == 0 {
        vm.preempt_bit = true;
        vm.cycles_to_tick = vm.timer.next_interval();
        let interval = vm.cycles_to_tick;
        vm.telem.timer_interval(interval);
    }

    let compiled = vm.program.compiled(method);
    debug_assert!(
        (pc as usize) < vm.program.method(method).ops.len(),
        "pc {pc} out of range in method {method}"
    );
    let was_backedge = compiled.backedge.get(pc as usize);

    match exec_op(vm, hook, op, pc) {
        Ok(Flow::Next) => {
            vm.threads[cur].pc = pc + 1;
        }
        Ok(Flow::Jump(target, taken_back)) => {
            vm.threads[cur].pc = target;
            if taken_back && was_backedge && vm.status.is_running() {
                yield_point(vm, hook);
            }
        }
        Ok(Flow::Managed) => {}
        Err(e) => raise_err(vm, hook, e),
    }
}

/// Shared error epilogue: both the generic dispatch loop and the quickened
/// loop must produce the same status transition and the same `0xE44`
/// fingerprint event sequence (note `vm.fail` already fired one `0xE44`;
/// this second one is part of the observable record and must be kept).
fn raise_err(vm: &mut Vm, hook: &mut dyn ExecHook, e: VmError) {
    if vm.status.is_running() {
        vm.status = VmStatus::Error(e);
    }
    vm.fingerprint.event(0xE44, e.kind as u64, e.pc as u64);
    hook.on_halt(vm);
}

fn exec_op(vm: &mut Vm, hook: &mut dyn ExecHook, op: Op, pc: u32) -> Result<Flow, VmError> {
    match op {
        // ---- constants / locals / shuffling ----
        Op::Const(v) => {
            vm.push_word(v as Word);
            Ok(Flow::Next)
        }
        Op::Null => {
            vm.push_word(NULL);
            Ok(Flow::Next)
        }
        Op::Str(id) => {
            let a = vm.string_objects[id as usize];
            vm.push_word(a);
            Ok(Flow::Next)
        }
        Op::Load(i) => {
            let cur = vm.sched.current as usize;
            let base = vm.threads[cur].fp + 3;
            let v = vm.heap.mem[(base + i as u64) as usize];
            vm.push_word(v);
            Ok(Flow::Next)
        }
        Op::Store(i) => {
            let v = vm.pop_word();
            let cur = vm.sched.current as usize;
            let base = vm.threads[cur].fp + 3;
            vm.heap.mem[(base + i as u64) as usize] = v;
            Ok(Flow::Next)
        }
        Op::Dup => {
            let v = vm.peek_word(0);
            vm.push_word(v);
            Ok(Flow::Next)
        }
        Op::Pop => {
            vm.pop_word();
            Ok(Flow::Next)
        }
        Op::Swap => {
            let a = vm.pop_word();
            let b = vm.pop_word();
            vm.push_word(a);
            vm.push_word(b);
            Ok(Flow::Next)
        }

        // ---- arithmetic ----
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::BitAnd
        | Op::BitOr
        | Op::BitXor
        | Op::Shl
        | Op::Shr => {
            let b = vm.pop_word() as i64;
            let a = vm.pop_word() as i64;
            let r = match op {
                Op::Add => a.wrapping_add(b),
                Op::Sub => a.wrapping_sub(b),
                Op::Mul => a.wrapping_mul(b),
                Op::Div => {
                    if b == 0 {
                        return Err(vm.fail(ErrKind::DivideByZero));
                    }
                    a.wrapping_div(b)
                }
                Op::Rem => {
                    if b == 0 {
                        return Err(vm.fail(ErrKind::DivideByZero));
                    }
                    a.wrapping_rem(b)
                }
                Op::BitAnd => a & b,
                Op::BitOr => a | b,
                Op::BitXor => a ^ b,
                Op::Shl => a.wrapping_shl(b as u32 & 63),
                Op::Shr => a.wrapping_shr(b as u32 & 63),
                _ => unreachable!(),
            };
            vm.push_word(r as Word);
            Ok(Flow::Next)
        }
        Op::Neg => {
            let a = vm.pop_word() as i64;
            vm.push_word(a.wrapping_neg() as Word);
            Ok(Flow::Next)
        }

        // ---- comparisons ----
        Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
            let b = vm.pop_word() as i64;
            let a = vm.pop_word() as i64;
            let r = match op {
                Op::Eq => a == b,
                Op::Ne => a != b,
                Op::Lt => a < b,
                Op::Le => a <= b,
                Op::Gt => a > b,
                Op::Ge => a >= b,
                _ => unreachable!(),
            };
            vm.push_word(r as Word);
            Ok(Flow::Next)
        }
        Op::RefEq => {
            let b = vm.pop_word();
            let a = vm.pop_word();
            vm.push_word((a == b) as Word);
            Ok(Flow::Next)
        }

        // ---- control flow ----
        Op::Goto(t) => Ok(Flow::Jump(t, true)),
        Op::If(t) => {
            let c = vm.pop_word() as i64;
            if c != 0 {
                Ok(Flow::Jump(t, true))
            } else {
                Ok(Flow::Next)
            }
        }
        Op::IfZ(t) => {
            let c = vm.pop_word() as i64;
            if c == 0 {
                Ok(Flow::Jump(t, true))
            } else {
                Ok(Flow::Next)
            }
        }

        // ---- objects / arrays ----
        Op::New(class) => {
            vm.ensure_class_loaded(class)?;
            let nfields = vm.program.field_layouts[class as usize].len();
            let a = vm.alloc_scalar(class, nfields)?;
            vm.push_word(a);
            Ok(Flow::Next)
        }
        Op::GetField { idx, ty } => {
            let obj = vm.peek_word(0);
            if obj != NULL && access_gate(vm, hook, obj, false)? {
                return Ok(Flow::Managed); // retry after a switch
            }
            let obj = vm.pop_word();
            check_scalar(vm, obj, idx, ty)?;
            let v = vm.heap.get_field(obj, idx as usize);
            let v = hook.on_shared_read_value(vm, v, ty == Ty::Ref);
            vm.push_word(v);
            Ok(Flow::Next)
        }
        Op::PutField { idx, ty } => {
            let obj = vm.peek_word(1);
            if obj != NULL && access_gate(vm, hook, obj, true)? {
                return Ok(Flow::Managed);
            }
            let v = vm.pop_word();
            let obj = vm.pop_word();
            check_scalar(vm, obj, idx, ty)?;
            vm.heap.set_field(obj, idx as usize, v);
            Ok(Flow::Next)
        }
        Op::GetStatic(class, i) => {
            let cobj = vm.ensure_class_loaded(class)?;
            if access_gate(vm, hook, cobj, false)? {
                return Ok(Flow::Managed);
            }
            let v = vm.heap.get_field(cobj, i as usize);
            let is_ref = vm.program.static_layouts[class as usize][i as usize] == Ty::Ref;
            let v = hook.on_shared_read_value(vm, v, is_ref);
            vm.push_word(v);
            Ok(Flow::Next)
        }
        Op::PutStatic(class, i) => {
            let cobj = vm.ensure_class_loaded(class)?;
            if access_gate(vm, hook, cobj, true)? {
                return Ok(Flow::Managed);
            }
            let v = vm.pop_word();
            vm.heap.set_field(cobj, i as usize, v);
            Ok(Flow::Next)
        }
        Op::NewArray(ty) => {
            let len = vm.pop_word() as i64;
            if len < 0 {
                return Err(vm.fail(ErrKind::IndexOutOfBounds));
            }
            let kind = match ty {
                Ty::Int => crate::heap::ArrKind::Int,
                Ty::Ref => crate::heap::ArrKind::Ref,
            };
            let a = vm.alloc_array(kind, len as usize)?;
            vm.push_word(a);
            Ok(Flow::Next)
        }
        Op::ALoad(ty) => {
            let arr = vm.peek_word(1);
            if arr != NULL && access_gate(vm, hook, arr, false)? {
                return Ok(Flow::Managed);
            }
            let i = vm.pop_word() as i64;
            let arr = vm.pop_word();
            check_array(vm, arr, i, ty)?;
            let v = vm.heap.get_elem(arr, i as usize);
            let v = hook.on_shared_read_value(vm, v, ty == Ty::Ref);
            vm.push_word(v);
            Ok(Flow::Next)
        }
        Op::AStore(ty) => {
            let arr = vm.peek_word(2);
            if arr != NULL && access_gate(vm, hook, arr, true)? {
                return Ok(Flow::Managed);
            }
            let v = vm.pop_word();
            let i = vm.pop_word() as i64;
            let arr = vm.pop_word();
            check_array(vm, arr, i, ty)?;
            vm.heap.set_elem(arr, i as usize, v);
            Ok(Flow::Next)
        }
        Op::ArrayLen => {
            let arr = vm.pop_word();
            if arr == NULL {
                return Err(vm.fail(ErrKind::NullDeref));
            }
            let h = vm.heap.header(arr);
            if !h.is_array {
                return Err(vm.fail(ErrKind::TypeConfusion));
            }
            vm.push_word(vm.heap.array_len(arr) as Word);
            Ok(Flow::Next)
        }
        Op::IdentityHash => {
            let obj = vm.pop_word();
            if obj == NULL {
                return Err(vm.fail(ErrKind::NullDeref));
            }
            vm.push_word(vm.heap.header(obj).serial);
            Ok(Flow::Next)
        }
        Op::InstanceOf(class) => {
            let obj = vm.pop_word();
            let r = if obj == NULL {
                false
            } else {
                let h = vm.heap.header(obj);
                !h.is_array && !h.is_classobj && vm.program.is_subclass(h.class_id, class)
            };
            vm.push_word(r as Word);
            Ok(Flow::Next)
        }

        // ---- calls ----
        Op::Call(callee) => {
            vm.push_frame(callee, true, &[], false, false)?;
            // Method-prologue yield point.
            if vm.status.is_running() {
                yield_point(vm, hook);
            }
            Ok(Flow::Managed)
        }
        Op::CallVirtual { class, slot } => {
            let static_callee = vm.program.class(class).vtable[slot as usize];
            let nargs = vm.program.method(static_callee).nargs;
            let recv = vm.peek_word(nargs as u64 - 1);
            if recv == NULL {
                return Err(vm.fail(ErrKind::NullDeref));
            }
            let h = vm.heap.header(recv);
            if h.is_array || h.is_classobj || !vm.program.is_subclass(h.class_id, class) {
                return Err(vm.fail(ErrKind::BadVirtualDispatch));
            }
            let callee = vm.program.class(h.class_id).vtable[slot as usize];
            vm.push_frame(callee, true, &[], false, false)?;
            if vm.status.is_running() {
                yield_point(vm, hook);
            }
            Ok(Flow::Managed)
        }
        Op::Ret | Op::RetVal => {
            let retv = if op == Op::RetVal {
                Some(vm.pop_word())
            } else {
                None
            };
            do_return(vm, hook, retv);
            Ok(Flow::Managed)
        }

        // ---- synchronization ----
        Op::MonitorEnter => {
            let obj = vm.peek_word(0);
            if obj != NULL && access_gate(vm, hook, obj, true)? {
                return Ok(Flow::Managed); // CREW-ordered lock acquisition
            }
            let obj = vm.pop_word();
            if obj == NULL {
                return Err(vm.fail(ErrKind::NullDeref));
            }
            let cur = vm.sched.current;
            let mon = vm.sched.monitor_mut(obj);
            match mon.owner {
                None => {
                    mon.owner = Some(cur);
                    mon.recursion = 1;
                    Ok(Flow::Next)
                }
                Some(o) if o == cur => {
                    mon.recursion += 1;
                    Ok(Flow::Next)
                }
                Some(_) => {
                    // Deterministic switch: block until handed the monitor.
                    mon.entry_queue.push_back(EntryWaiter {
                        tid: cur,
                        recursion: 1,
                        push_status: None,
                    });
                    vm.threads[cur as usize].pc = pc + 1;
                    vm.threads[cur as usize].status = ThreadStatus::BlockedMonitor(obj);
                    schedule_next(vm, hook, false);
                    Ok(Flow::Managed)
                }
            }
        }
        Op::MonitorExit => {
            let obj = vm.peek_word(0);
            if obj != NULL && access_gate(vm, hook, obj, true)? {
                return Ok(Flow::Managed);
            }
            let obj = vm.pop_word();
            if obj == NULL {
                return Err(vm.fail(ErrKind::NullDeref));
            }
            let cur = vm.sched.current;
            let owned = vm
                .sched
                .monitors
                .get(&obj)
                .is_some_and(|m| m.owner == Some(cur));
            if !owned {
                return Err(vm.fail(ErrKind::IllegalMonitorState));
            }
            let mon = vm.sched.monitor_mut(obj);
            mon.recursion -= 1;
            if mon.recursion == 0 {
                mon.owner = None;
                try_handoff(vm, obj);
                vm.sched.prune_monitor(obj);
            }
            Ok(Flow::Next)
        }
        Op::Wait | Op::TimedWait => {
            let obj_peek = vm.peek_word(if op == Op::TimedWait { 1 } else { 0 });
            if obj_peek != NULL && access_gate(vm, hook, obj_peek, true)? {
                return Ok(Flow::Managed);
            }
            let millis = if op == Op::TimedWait {
                vm.pop_word() as i64
            } else {
                0
            };
            let obj = vm.pop_word();
            if obj == NULL {
                return Err(vm.fail(ErrKind::NullDeref));
            }
            let cur = vm.sched.current;
            let owned = vm
                .sched
                .monitors
                .get(&obj)
                .is_some_and(|m| m.owner == Some(cur));
            if !owned {
                return Err(vm.fail(ErrKind::IllegalMonitorState));
            }
            if vm.threads[cur as usize].interrupted {
                vm.threads[cur as usize].interrupted = false;
                vm.push_word(1); // interrupted status
                return Ok(Flow::Next);
            }
            // Timed waits compute their deadline from a (recorded) clock
            // read, so timer expiry replays deterministically (§2.2).
            let timed = op == Op::TimedWait && millis > 0;
            let wake_at = if timed {
                let now = clock_read(vm, hook);
                Some(now.saturating_add(millis))
            } else {
                None
            };
            let mon = vm.sched.monitor_mut(obj);
            let saved_recursion = mon.recursion;
            mon.owner = None;
            mon.recursion = 0;
            mon.wait_queue.push_back(WaitEntry {
                tid: cur,
                recursion: saved_recursion,
            });
            if let Some(at) = wake_at {
                vm.sched.add_sleeper(Sleeper {
                    wake_at: at,
                    tid: cur,
                    monitor: Some(obj),
                });
                vm.threads[cur as usize].status = ThreadStatus::TimedWaiting(obj);
            } else {
                vm.threads[cur as usize].status = ThreadStatus::Waiting(obj);
            }
            vm.threads[cur as usize].pc = pc + 1;
            try_handoff(vm, obj);
            schedule_next(vm, hook, false);
            Ok(Flow::Managed)
        }
        Op::Notify | Op::NotifyAll => {
            let obj = vm.peek_word(0);
            if obj != NULL && access_gate(vm, hook, obj, true)? {
                return Ok(Flow::Managed);
            }
            let obj = vm.pop_word();
            if obj == NULL {
                return Err(vm.fail(ErrKind::NullDeref));
            }
            let cur = vm.sched.current;
            let owned = vm
                .sched
                .monitors
                .get(&obj)
                .is_some_and(|m| m.owner == Some(cur));
            if !owned {
                return Err(vm.fail(ErrKind::IllegalMonitorState));
            }
            let count = if op == Op::Notify { 1 } else { usize::MAX };
            let mut moved = 0;
            while moved < count {
                let mon = vm.sched.monitor_mut(obj);
                let Some(w) = mon.wait_queue.pop_front() else {
                    break;
                };
                mon.entry_queue.push_back(EntryWaiter {
                    tid: w.tid,
                    recursion: w.recursion,
                    push_status: Some(0), // notified
                });
                vm.sched.remove_sleeper(w.tid); // cancel a pending timeout
                vm.threads[w.tid as usize].status = ThreadStatus::BlockedMonitor(obj);
                moved += 1;
            }
            // The notifier still owns the monitor; waiters acquire on exit.
            Ok(Flow::Next)
        }

        // ---- threading ----
        Op::Spawn { method, nargs } => {
            let name = format!("t{}", vm.threads.len());
            let tid = vm.create_thread(method, ArgSource::CallerStack(nargs as u16), &name)?;
            let tobj = vm.threads[tid as usize].thread_obj;
            vm.push_word(tobj);
            Ok(Flow::Next)
        }
        Op::Join => {
            let tref = vm.pop_word();
            let target = thread_of(vm, tref)?;
            if vm.threads[target as usize].status == ThreadStatus::Terminated {
                return Ok(Flow::Next);
            }
            let cur = vm.sched.current;
            vm.sched.join_waiters.entry(target).or_default().push(cur);
            vm.threads[cur as usize].status = ThreadStatus::JoinWaiting(target);
            vm.threads[cur as usize].pc = pc + 1;
            schedule_next(vm, hook, false);
            Ok(Flow::Managed)
        }
        Op::Interrupt => {
            let tref = vm.pop_word();
            let target = thread_of(vm, tref)?;
            interrupt_thread(vm, target);
            Ok(Flow::Next)
        }
        Op::YieldNow => {
            let cur = vm.sched.current as usize;
            vm.threads[cur].pc = pc + 1;
            perform_switch(vm, hook);
            Ok(Flow::Managed)
        }
        Op::Sleep => {
            let millis = vm.pop_word() as i64;
            let cur = vm.sched.current;
            if vm.threads[cur as usize].interrupted {
                vm.threads[cur as usize].interrupted = false;
                vm.push_word(1);
                return Ok(Flow::Next);
            }
            if millis <= 0 {
                vm.push_word(0);
                return Ok(Flow::Next);
            }
            let now = clock_read(vm, hook);
            vm.sched.add_sleeper(Sleeper {
                wake_at: now.saturating_add(millis),
                tid: cur,
                monitor: None,
            });
            vm.threads[cur as usize].status = ThreadStatus::Sleeping;
            vm.threads[cur as usize].pc = pc + 1;
            schedule_next(vm, hook, false);
            Ok(Flow::Managed)
        }
        Op::CurrentThread => {
            let cur = vm.sched.current as usize;
            let tobj = vm.threads[cur].thread_obj;
            vm.push_word(tobj);
            Ok(Flow::Next)
        }

        // ---- environment ----
        Op::Now => {
            let v = clock_read(vm, hook);
            vm.push_word(v as Word);
            Ok(Flow::Next)
        }
        Op::NativeCall { native, nargs } => {
            let mut args = vec![0i64; nargs as usize];
            for i in (0..nargs as usize).rev() {
                args[i] = vm.pop_word() as i64;
            }
            if let Some(p) = vm.telem.profile.as_deref_mut() {
                p.phase_begin(
                    vm.sched.current,
                    telemetry::profile::PHASE_NATIVE,
                    native as u64,
                    vm.cycles,
                );
            }
            let outcome = hook.on_native_call(vm, native, &args);
            vm.counters.native_calls += 1;
            let tid = vm.sched.current;
            vm.telem
                .event(tid, telemetry::EventKind::NativeCall { method: native });
            if let Some(p) = vm.telem.profile.as_deref_mut() {
                p.phase_end(
                    tid,
                    telemetry::profile::PHASE_NATIVE,
                    native as u64,
                    vm.cycles,
                );
            }
            if vm.program.natives[native as usize].returns {
                vm.push_word(outcome.ret as Word);
            }
            // Callbacks run before the caller continues (§2.5): queue their
            // frames so the first callback executes first.
            let cur = vm.sched.current as usize;
            vm.threads[cur].pc = pc + 1;
            for cb in outcome.callbacks.iter().rev() {
                vm.push_frame(cb.method, false, &cb.args, true, false)?;
            }
            Ok(Flow::Managed)
        }

        // ---- output / halt ----
        Op::Print => {
            let v = vm.pop_word() as i64;
            vm.write_output(&format!("{v}\n"));
            Ok(Flow::Next)
        }
        Op::PrintStr(id) => {
            let s = vm.program.strings[id as usize].clone();
            vm.write_output(&s);
            Ok(Flow::Next)
        }
        Op::Halt => {
            vm.status = VmStatus::Halted;
            vm.fingerprint.event(0x4A17, 0, 0);
            hook.on_halt(vm);
            Ok(Flow::Managed)
        }
    }
}

/// One hook-mediated wall-clock read: every clock read in the interpreter
/// funnels through here so counting and event-ring tracing stay uniform.
/// (On replay the hook returns the recorded value, so the traced value is
/// exactly what the guest observed.)
fn clock_read(vm: &mut Vm, hook: &mut dyn ExecHook) -> i64 {
    let v = hook.on_clock_read(vm);
    vm.counters.clock_reads += 1;
    let tid = vm.sched.current;
    vm.telem
        .event(tid, telemetry::EventKind::ClockRead { value: v });
    v
}

/// Consult the hook before a heap access; `Ok(true)` means the access was
/// deferred (a switch was performed and the instruction must be retried).
fn access_gate(
    vm: &mut Vm,
    hook: &mut dyn ExecHook,
    obj: Addr,
    write: bool,
) -> Result<bool, VmError> {
    let serial = vm.heap.header(obj).serial;
    match hook.on_shared_access(vm, serial, write) {
        AccessDecision::Proceed => Ok(false),
        AccessDecision::SwitchAndRetry => {
            // Leave pc untouched: the op re-executes when rescheduled.
            perform_switch(vm, hook);
            Ok(true)
        }
    }
}

/// Validate a scalar field access.
fn check_scalar(vm: &mut Vm, obj: Addr, idx: u16, ty: Ty) -> Result<(), VmError> {
    if obj == NULL {
        return Err(vm.fail(ErrKind::NullDeref));
    }
    let h = vm.heap.header(obj);
    if h.is_array || h.is_classobj {
        return Err(vm.fail(ErrKind::TypeConfusion));
    }
    let layout = &vm.program.field_layouts[h.class_id as usize];
    if layout.get(idx as usize) != Some(&ty) {
        return Err(vm.fail(ErrKind::TypeConfusion));
    }
    Ok(())
}

/// Validate an array element access.
fn check_array(vm: &mut Vm, arr: Addr, i: i64, ty: Ty) -> Result<(), VmError> {
    if arr == NULL {
        return Err(vm.fail(ErrKind::NullDeref));
    }
    let h = vm.heap.header(arr);
    if !h.is_array || h.is_stack {
        return Err(vm.fail(ErrKind::TypeConfusion));
    }
    let want_ref = ty == Ty::Ref;
    if h.ref_elems != want_ref {
        return Err(vm.fail(ErrKind::TypeConfusion));
    }
    if i < 0 || i as usize >= vm.heap.array_len(arr) {
        return Err(vm.fail(ErrKind::IndexOutOfBounds));
    }
    Ok(())
}

/// Resolve a guest Thread-object reference to its tid.
fn thread_of(vm: &mut Vm, tref: Addr) -> Result<Tid, VmError> {
    if tref == NULL {
        return Err(vm.fail(ErrKind::NullDeref));
    }
    let h = vm.heap.header(tref);
    if h.is_array || h.is_classobj || h.class_id != vm.program.builtins.thread_class {
        return Err(vm.fail(ErrKind::NotAThread));
    }
    Ok(vm.heap.get_field(tref, 0) as Tid)
}

/// Pop the current frame; terminate the thread if it was the root frame.
fn do_return(vm: &mut Vm, hook: &mut dyn ExecHook, retv: Option<Word>) {
    let cur = vm.sched.current as usize;
    let fp = vm.threads[cur].fp;
    let saved_fp = vm.heap.mem[fp as usize];
    if saved_fp == 0 {
        terminate_current(vm, hook);
        return;
    }
    let saved = SavedPc::decode(vm.heap.mem[fp as usize + 2]);
    let caller_method = vm.heap.mem[saved_fp as usize + 1] as MethodId;
    let exiting = vm.threads[cur].method;
    {
        let t = &mut vm.threads[cur];
        t.sp = t.fp;
        t.fp = saved_fp;
        t.method = caller_method;
        t.pc = saved.caller_pc.wrapping_add(1);
    }
    if let Some(p) = vm.telem.profile.as_deref_mut() {
        p.exit(cur as Tid, exiting, vm.cycles);
    }
    if let Some(v) = retv {
        if !saved.discard_result {
            vm.push_word(v);
        }
    }
    if saved.instrumentation {
        vm.instr_depth -= 1;
        if vm.instr_depth == 0 && vm.pending_switch {
            vm.pending_switch = false;
            perform_switch(vm, hook);
        }
    }
}

/// Terminate the current thread: release its stack, wake joiners, pick the
/// next thread (or halt if it was the last).
fn terminate_current(vm: &mut Vm, hook: &mut dyn ExecHook) {
    let cur = vm.sched.current;
    {
        let t = &mut vm.threads[cur as usize];
        t.status = ThreadStatus::Terminated;
        t.stack_obj = NULL;
        t.fp = 0;
        t.sp = 0;
    }
    vm.fingerprint.event(0x7E43, cur as u64, 0);
    if let Some(p) = vm.telem.profile.as_deref_mut() {
        p.thread_end(cur, vm.cycles);
    }
    if let Some(waiters) = vm.sched.join_waiters.remove(&cur) {
        for w in waiters {
            vm.threads[w as usize].status = ThreadStatus::Ready;
            vm.sched.ready.push_back(w);
        }
    }
    schedule_next(vm, hook, false);
}

/// Voluntary or preemptive thread switch: requeue the current thread and
/// dispatch the next.
pub(crate) fn perform_switch(vm: &mut Vm, hook: &mut dyn ExecHook) {
    let cur = vm.sched.current;
    vm.threads[cur as usize].status = ThreadStatus::Ready;
    vm.sched.ready.push_back(cur);
    schedule_next(vm, hook, false);
}

/// Hand an un-owned monitor to the head of its entry queue, if any.
fn try_handoff(vm: &mut Vm, obj: Addr) {
    let Some(mon) = vm.sched.monitors.get_mut(&obj) else {
        return;
    };
    if mon.owner.is_some() {
        return;
    }
    let Some(e) = mon.entry_queue.pop_front() else {
        return;
    };
    mon.owner = Some(e.tid);
    mon.recursion = e.recursion;
    if let Some(v) = e.push_status {
        if v == 1 {
            vm.threads[e.tid as usize].interrupted = false;
        }
        push_word_onto(vm, e.tid, v as Word);
    }
    vm.threads[e.tid as usize].status = ThreadStatus::Ready;
    vm.sched.ready.push_back(e.tid);
}

/// Push a value onto a (non-running) thread's operand stack — delivery of
/// wait/sleep status codes at wake time.
fn push_word_onto(vm: &mut Vm, tid: Tid, v: Word) {
    let sp = vm.threads[tid as usize].sp;
    vm.heap.mem[sp as usize] = v;
    vm.threads[tid as usize].sp = sp + 1;
}

/// Interrupt `target` (paper: interrupt is one of the wake-up operations
/// whose effect on the thread package replays deterministically).
fn interrupt_thread(vm: &mut Vm, target: Tid) {
    vm.threads[target as usize].interrupted = true;
    match vm.threads[target as usize].status {
        ThreadStatus::Waiting(obj) | ThreadStatus::TimedWaiting(obj) => {
            let mon = vm.sched.monitor_mut(obj);
            if let Some(pos) = mon.wait_queue.iter().position(|w| w.tid == target) {
                let w = mon.wait_queue.remove(pos).unwrap();
                mon.entry_queue.push_back(EntryWaiter {
                    tid: target,
                    recursion: w.recursion,
                    push_status: Some(1), // interrupted
                });
                vm.sched.remove_sleeper(target);
                vm.threads[target as usize].status = ThreadStatus::BlockedMonitor(obj);
                try_handoff(vm, obj);
            }
        }
        ThreadStatus::Sleeping => {
            vm.sched.remove_sleeper(target);
            vm.threads[target as usize].interrupted = false;
            push_word_onto(vm, target, 1);
            vm.threads[target as usize].status = ThreadStatus::Ready;
            vm.sched.ready.push_back(target);
        }
        _ => {} // flag stays set; a future wait/sleep sees it
    }
}

/// Wake every sleeper whose deadline has passed.
fn wake_due(vm: &mut Vm, now: i64) {
    for s in vm.sched.take_due(now) {
        match s.monitor {
            None => {
                // sleep finished normally
                push_word_onto(vm, s.tid, 0);
                vm.threads[s.tid as usize].status = ThreadStatus::Ready;
                vm.sched.ready.push_back(s.tid);
            }
            Some(obj) => {
                // timed wait expired: move to the entry queue with status 2
                let mon = vm.sched.monitor_mut(obj);
                if let Some(pos) = mon.wait_queue.iter().position(|w| w.tid == s.tid) {
                    let w = mon.wait_queue.remove(pos).unwrap();
                    mon.entry_queue.push_back(EntryWaiter {
                        tid: s.tid,
                        recursion: w.recursion,
                        push_status: Some(2), // timeout
                    });
                    vm.threads[s.tid as usize].status = ThreadStatus::BlockedMonitor(obj);
                    try_handoff(vm, obj);
                }
            }
        }
    }
}

/// Dispatch the next ready thread; wake sleepers (reading the — recorded —
/// wall clock) or declare deadlock/halt if nothing can run.
fn schedule_next(vm: &mut Vm, hook: &mut dyn ExecHook, requeue_current: bool) {
    if requeue_current {
        let cur = vm.sched.current;
        vm.threads[cur as usize].status = ThreadStatus::Ready;
        vm.sched.ready.push_back(cur);
    }
    loop {
        if let Some(tid) = vm.sched.ready.pop_front() {
            vm.sched.current = tid;
            vm.threads[tid as usize].status = ThreadStatus::Running;
            vm.counters.thread_switches += 1;
            let yp = vm.threads[tid as usize].yield_points;
            vm.fingerprint.thread_switch(tid, yp);
            vm.telem
                .event(tid, telemetry::EventKind::Switch { to: tid, nyp: yp });
            if let Some(p) = vm.telem.profile.as_deref_mut() {
                p.switch_to(tid, yp, vm.cycles);
            }
            hook.on_thread_switch(vm, tid);
            return;
        }
        if !vm.sched.sleepers.is_empty() {
            // "Jalapeño reads the wall clock periodically" (§2.2): these
            // reads are the recorded events that make timed wakeups replay.
            let now = clock_read(vm, hook);
            wake_due(vm, now);
            if !vm.sched.ready.is_empty() {
                continue;
            }
            if vm.sched.sleepers.is_empty() {
                continue; // timed-waiters moved to entry queues; re-examine
            }
            // Idle: warp the live clock to the next deadline and read again.
            let target = vm.sched.next_deadline().unwrap();
            vm.wall.warp_to(target);
            let now = clock_read(vm, hook);
            wake_due(vm, now);
            if vm.sched.ready.is_empty() && !vm.sched.sleepers.is_empty() {
                // A replay desync (recorded clock never reaches the
                // deadline) — fail deterministically rather than spin.
                vm.status = VmStatus::Deadlocked;
                vm.fingerprint.event(0xDEAD, 1, 0);
                hook.on_halt(vm);
                return;
            }
            continue;
        }
        // No ready threads, no sleepers.
        if vm
            .threads
            .iter()
            .all(|t| t.status == ThreadStatus::Terminated)
        {
            vm.status = VmStatus::Halted;
            vm.fingerprint.event(0x4A17, 1, 0);
        } else {
            vm.status = VmStatus::Deadlocked;
            vm.fingerprint.event(0xDEAD, 0, 0);
        }
        hook.on_halt(vm);
        return;
    }
}

/// Process a yield point: consult the hook (Fig. 2) and act.
fn yield_point(vm: &mut Vm, hook: &mut dyn ExecHook) {
    if vm.instr_depth > 0 {
        // Instrumentation-internal yield point: invisible to the logical
        // clock in symmetric hooks (`liveClock == false`).
        let act = hook.on_instr_yield_point(vm);
        if act.switch_now {
            perform_switch(vm, hook);
        }
        return;
    }
    vm.counters.yield_points += 1;
    let cur = vm.sched.current as usize;
    vm.threads[cur].yield_points += 1;
    let act = hook.on_yield_point(vm);
    if let Some((method, arg)) = act.run_helper {
        if act.switch_now {
            vm.pending_switch = true;
            vm.counters.preemptive_switches += 1;
        }
        vm.instr_depth += 1;
        if let Err(e) = vm.push_frame(method, false, &[arg], true, true) {
            vm.status = VmStatus::Error(e);
            hook.on_halt(vm);
        }
    } else if act.switch_now {
        vm.counters.preemptive_switches += 1;
        perform_switch(vm, hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::clock::{CycleClock, FixedTimer};
    use crate::hook::Passthrough;
    use crate::vm::VmConfig;
    use std::sync::Arc;

    fn boot(p: crate::program::Program) -> Vm {
        Vm::boot(
            Arc::new(p),
            VmConfig::default(),
            Box::new(FixedTimer::new(10_000)),
            Box::new(CycleClock::new(0, 100)),
        )
        .unwrap()
    }

    fn run_program(p: crate::program::Program) -> Vm {
        let mut vm = boot(p);
        let mut hook = Passthrough;
        let st = run(&mut vm, &mut hook, 10_000_000);
        assert!(!st.is_running(), "program did not finish");
        vm
    }

    #[test]
    fn arithmetic_and_print() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 0).code(|a| {
            a.iconst(6).iconst(7).mul().print();
            a.iconst(10).iconst(3).div().print();
            a.iconst(10).iconst(3).rem().print();
            a.iconst(1).iconst(2).sub().print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "42\n3\n1\n-1\n");
        assert_eq!(vm.status, VmStatus::Halted);
    }

    #[test]
    fn comparison_operand_order() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 0).code(|a| {
            a.iconst(3).iconst(5).lt().print(); // 3 < 5 => 1
            a.iconst(5).iconst(3).lt().print(); // 5 < 3 => 0
            a.iconst(5).iconst(5).ge().print(); // 1
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "1\n0\n1\n");
    }

    #[test]
    fn loops_and_locals() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 2).code(|a| {
            a.iconst(0).store(0); // i = 0
            a.iconst(0).store(1); // sum = 0
            a.label("top");
            a.load(0).iconst(10).ge().if_nz("done");
            a.load(1).load(0).add().store(1);
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.load(1).print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "45\n");
        assert!(vm.counters.yield_points >= 10, "backedges are yield points");
    }

    #[test]
    fn objects_fields_arrays() {
        let mut pb = ProgramBuilder::new();
        let cls = pb
            .class("Pair")
            .field("a", Ty::Int)
            .field("b", Ty::Ref)
            .build();
        let m = pb.method("main", 0, 2).code(|a| {
            a.new(cls).store(0);
            a.load(0).iconst(11).put_field(0);
            a.iconst(4).new_array_int().store(1);
            a.load(1).iconst(2).iconst(99).astore();
            a.load(0).load(1).put_field_ref(1);
            a.load(0).get_field(0).print();
            a.load(0).get_field_ref(1).iconst(2).aload().print();
            a.load(0).get_field_ref(1).array_len().print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "11\n99\n4\n");
    }

    #[test]
    fn statics_load_lazily() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("G").static_field("x", Ty::Int).build();
        let m = pb.method("main", 0, 0).code(|a| {
            a.iconst(5).put_static(cls, 0);
            a.get_static(cls, 0).iconst(2).mul().print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "10\n");
        assert!(vm.counters.class_loads >= 1);
    }

    #[test]
    fn calls_and_returns() {
        let mut pb = ProgramBuilder::new();
        let sq = pb.func("square", 1, 1).code(|a| {
            a.load(0).load(0).mul().ret_val();
        });
        let m = pb.method("main", 0, 0).code(|a| {
            a.iconst(9).call(sq).print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "81\n");
    }

    #[test]
    fn recursion_grows_stack() {
        let mut pb = ProgramBuilder::new();
        // fib-ish deep recursion to force stack growth
        let f = pb.func("down", 1, 1).code(|a| {
            a.load(0).if_z("base");
            a.load(0).iconst(1).sub();
            // placeholder for recursive call patched below
            a.call(0); // method id 0 == this method (first defined)
            a.iconst(1).add().ret_val();
            a.label("base");
            a.iconst(0).ret_val();
        });
        assert_eq!(f, 0);
        let m = pb.method("main", 0, 0).code(|a| {
            a.iconst(200).call(f).print();
            a.halt();
        });
        let mut p = pb.finish(m).unwrap();
        // keep initial stack tiny to force growth
        let vm = {
            let mut vm = Vm::boot(
                Arc::new(std::mem::take(&mut p)),
                VmConfig {
                    initial_stack: 64,
                    ..VmConfig::default()
                },
                Box::new(FixedTimer::new(10_000)),
                Box::new(CycleClock::new(0, 100)),
            )
            .unwrap();
            let mut hook = Passthrough;
            run(&mut vm, &mut hook, 10_000_000);
            vm
        };
        assert_eq!(vm.output, "200\n");
        assert!(vm.counters.stack_growths >= 1, "stack must have grown");
    }

    #[test]
    fn virtual_dispatch_picks_override() {
        let mut pb = ProgramBuilder::new();
        let base = pb.class("Base").build();
        pb.virtual_method(base, "f", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(1).ret_val();
            });
        let derived = pb.class_extends("Derived", Some(base)).build();
        pb.virtual_method(derived, "f", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(2).ret_val();
            });
        let slot = pb.vslot(base, "f");
        let m = pb.method("main", 0, 1).code(|a| {
            a.new(base).call_virtual(base, slot).print();
            a.new(derived).store(0);
            a.load(0).call_virtual(base, slot).print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "1\n2\n");
    }

    #[test]
    fn spawn_join_and_shared_static() {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("x", Ty::Int).build();
        let worker = pb.method("worker", 1, 1).code(|a| {
            a.get_static(g, 0).load(0).add().put_static(g, 0);
            a.ret();
        });
        let m = pb.method("main", 0, 1).code(|a| {
            a.iconst(0).put_static(g, 0);
            a.iconst(40).spawn(worker, 1).store(0);
            a.load(0).join();
            a.get_static(g, 0).iconst(2).add().print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "42\n");
    }

    #[test]
    fn monitors_provide_mutual_exclusion() {
        let mut pb = ProgramBuilder::new();
        let g = pb
            .class("G")
            .static_field("lock", Ty::Ref)
            .static_field("count", Ty::Int)
            .build();
        // Each worker increments count 100 times under the lock with a
        // deliberate re-read (to be racy without the lock).
        let worker = pb.method("worker", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(100).ge().if_nz("done");
            a.get_static(g, 0).monitor_enter();
            a.get_static(g, 1).iconst(1).add().put_static(g, 1);
            a.get_static(g, 0).monitor_exit();
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.ret();
        });
        let lock_cls = pb.class("Lock").build();
        let m = pb.method("main", 0, 2).code(|a| {
            a.new(lock_cls).put_static(g, 0);
            a.iconst(0).put_static(g, 1);
            a.spawn(worker, 0).store(0);
            a.spawn(worker, 0).store(1);
            a.load(0).join();
            a.load(1).join();
            a.get_static(g, 1).print();
            a.halt();
        });
        // Use a small timer period so preemption interleaves the workers.
        let p = pb.finish(m).unwrap();
        let mut vm = Vm::boot(
            Arc::new(p),
            VmConfig::default(),
            Box::new(FixedTimer::new(7)),
            Box::new(CycleClock::new(0, 100)),
        )
        .unwrap();
        let mut hook = Passthrough;
        let st = run(&mut vm, &mut hook, 10_000_000);
        assert_eq!(st, VmStatus::Halted);
        assert_eq!(vm.output, "200\n");
        assert!(vm.counters.preemptive_switches > 0);
    }

    #[test]
    fn wait_notify_roundtrip() {
        let mut pb = ProgramBuilder::new();
        let g = pb
            .class("G")
            .static_field("lock", Ty::Ref)
            .static_field("flag", Ty::Int)
            .build();
        let waiter = pb.method("waiter", 0, 0).code(|a| {
            a.get_static(g, 0).monitor_enter();
            a.label("check");
            a.get_static(g, 1).if_nz("go");
            a.get_static(g, 0).wait().pop();
            a.goto("check");
            a.label("go");
            a.iconst(77).print();
            a.get_static(g, 0).monitor_exit();
            a.ret();
        });
        let lock_cls = pb.class("Lock").build();
        let m = pb.method("main", 0, 1).code(|a| {
            a.new(lock_cls).put_static(g, 0);
            a.iconst(0).put_static(g, 1);
            a.spawn(waiter, 0).store(0);
            a.yield_now(); // let the waiter block
            a.get_static(g, 0).monitor_enter();
            a.iconst(1).put_static(g, 1);
            a.get_static(g, 0).notify();
            a.get_static(g, 0).monitor_exit();
            a.load(0).join();
            a.iconst(88).print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "77\n88\n");
    }

    #[test]
    fn sleep_wakes_by_clock() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 0).code(|a| {
            a.iconst(50).sleep().print(); // status 0
            a.iconst(123).print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "0\n123\n");
        assert!(vm.counters.clock_reads >= 1);
    }

    #[test]
    fn timed_wait_times_out_with_status_2() {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("lock", Ty::Ref).build();
        let lock_cls = pb.class("Lock").build();
        let m = pb.method("main", 0, 0).code(|a| {
            a.new(lock_cls).put_static(g, 0);
            a.get_static(g, 0).monitor_enter();
            a.get_static(g, 0).iconst(30).timed_wait().print(); // 2 = timeout
            a.get_static(g, 0).monitor_exit();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "2\n");
    }

    #[test]
    fn interrupt_wakes_sleeper_with_status_1() {
        let mut pb = ProgramBuilder::new();
        let sleeper = pb.method("sleeper", 0, 0).code(|a| {
            a.iconst(1_000_000).sleep().print(); // 1 = interrupted
            a.ret();
        });
        let m = pb.method("main", 0, 1).code(|a| {
            a.spawn(sleeper, 0).store(0);
            a.yield_now(); // let it sleep
            a.load(0).interrupt();
            a.load(0).join();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "1\n");
    }

    #[test]
    fn deadlock_detected() {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("lock", Ty::Ref).build();
        let lock_cls = pb.class("Lock").build();
        let m = pb.method("main", 0, 0).code(|a| {
            a.new(lock_cls).put_static(g, 0);
            a.get_static(g, 0).monitor_enter();
            a.get_static(g, 0).wait().pop(); // nobody will ever notify
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.status, VmStatus::Deadlocked);
    }

    #[test]
    fn division_by_zero_is_a_deterministic_error() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 0).code(|a| {
            a.iconst(1).iconst(0).div().print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert!(matches!(
            vm.status,
            VmStatus::Error(VmError {
                kind: ErrKind::DivideByZero,
                ..
            })
        ));
    }

    #[test]
    fn null_deref_detected() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 1).code(|a| {
            a.null().store(0);
            a.load(0).get_field(0).print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert!(matches!(
            vm.status,
            VmStatus::Error(VmError {
                kind: ErrKind::NullDeref,
                ..
            })
        ));
    }

    #[test]
    fn array_bounds_checked() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 1).code(|a| {
            a.iconst(3).new_array_int().store(0);
            a.load(0).iconst(3).aload().print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert!(matches!(
            vm.status,
            VmStatus::Error(VmError {
                kind: ErrKind::IndexOutOfBounds,
                ..
            })
        ));
    }

    #[test]
    fn identity_hash_is_allocation_order() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("O").build();
        let m = pb.method("main", 0, 2).code(|a| {
            a.new(cls).store(0);
            a.new(cls).store(1);
            a.load(1)
                .identity_hash()
                .load(0)
                .identity_hash()
                .sub()
                .print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "1\n", "consecutive allocations differ by 1");
    }

    #[test]
    fn native_calls_and_callbacks() {
        let mut pb = ProgramBuilder::new();
        let n = pb.native("host_add", 2, true);
        let ncb = pb.native("host_cb", 0, false);
        let cb = pb.method("cb", 1, 1).code(|a| {
            a.load(0).print();
            a.ret();
        });
        let m = pb.method("main", 0, 0).code(|a| {
            a.iconst(20).iconst(22).native_call(n, 2).print();
            a.native_call(ncb, 0);
            a.iconst(5).print();
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let mut vm = boot(p);
        vm.natives.register(
            n,
            Box::new(|ctx| crate::native::NativeOutcome::value(ctx.args[0] + ctx.args[1])),
        );
        vm.natives.register(
            ncb,
            Box::new(move |_| crate::native::NativeOutcome {
                ret: 0,
                callbacks: vec![
                    crate::native::CallbackReq {
                        method: cb,
                        args: vec![111],
                    },
                    crate::native::CallbackReq {
                        method: cb,
                        args: vec![222],
                    },
                ],
            }),
        );
        let mut hook = Passthrough;
        run(&mut vm, &mut hook, 10_000_000);
        assert_eq!(vm.output, "42\n111\n222\n5\n");
    }

    #[test]
    fn strings_and_current_thread() {
        let mut pb = ProgramBuilder::new();
        let s = pb.intern("hello ");
        let m = pb.method("main", 0, 0).code(|a| {
            a.print_str(s);
            a.current_thread().identity_hash().pop();
            a.iconst(1).print();
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "hello 1\n");
    }

    #[test]
    fn instance_of_and_ref_eq() {
        let mut pb = ProgramBuilder::new();
        let base = pb.class("Base").build();
        let derived = pb.class_extends("Derived", Some(base)).build();
        let m = pb.method("main", 0, 2).code(|a| {
            a.new(derived).store(0);
            a.load(0).instance_of(base).print(); // 1
            a.new(base).store(1);
            a.load(1).instance_of(derived).print(); // 0
            a.load(0).load(0).ref_eq().print(); // 1
            a.load(0).load(1).ref_eq().print(); // 0
            a.halt();
        });
        let vm = run_program(pb.finish(m).unwrap());
        assert_eq!(vm.output, "1\n0\n1\n0\n");
    }

    // ---- quickening neutrality (the cycle-accounting invariant) ----

    /// A program hitting every fusion pattern, devirtualized calls,
    /// preemptive switches across two threads, and shared statics.
    fn quicken_workout() -> crate::program::Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("x", Ty::Int).build();
        let counter = pb.class("Counter").field("v", Ty::Int).build();
        let bump = pb
            .virtual_method(counter, "bump", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.load(0).dup().get_field(0).iconst(1).add().put_field(0);
                a.load(0).get_field(0).ret_val();
            });
        let _ = bump;
        let bump_slot = pb.vslot(counter, "bump");
        let worker = pb.method("worker", 0, 3).code(|a| {
            a.iconst(0).store(0);
            a.new(counter).store(2);
            a.label("top");
            a.load(0).iconst(40).ge().if_nz("done");
            a.get_static(g, 0).iconst(1).add().put_static(g, 0);
            a.load(2).call_virtual(counter, bump_slot).store(1);
            a.load(1).load(0).add().pop();
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.load(0).print();
            a.ret();
        });
        let m = pb.method("main", 0, 2).code(|a| {
            a.spawn(worker, 0);
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(60).ge().if_nz("done");
            a.get_static(g, 0).iconst(3).add().put_static(g, 0);
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.join();
            a.get_static(g, 0).print();
            a.halt();
        });
        pb.finish(m).unwrap()
    }

    fn boot_q(p: crate::program::Program, quicken: bool, interval: u64) -> Vm {
        let cfg = VmConfig {
            quicken,
            ..VmConfig::default()
        };
        Vm::boot(
            Arc::new(p),
            cfg,
            Box::new(FixedTimer::new(interval)),
            Box::new(CycleClock::new(0, 100)),
        )
        .unwrap()
    }

    /// Everything observable about a finished (or paused) run.
    fn observe(vm: &Vm) -> (u64, u64, String, VmStatus, u64, u64, u64, u64) {
        (
            vm.fingerprint.digest(),
            vm.state_digest(),
            vm.output.clone(),
            vm.status,
            vm.counters.steps,
            vm.cycles,
            vm.counters.yield_points,
            vm.counters.thread_switches,
        )
    }

    #[test]
    fn quickening_is_neutral_across_timer_shapes() {
        // Interval 1 is the worst case: every fused op must split.
        for interval in [1, 2, 3, 7, 64, 10_000] {
            let mut on = boot_q(quicken_workout(), true, interval);
            let mut off = boot_q(quicken_workout(), false, interval);
            let mut h1 = Passthrough;
            let mut h2 = Passthrough;
            run(&mut on, &mut h1, 10_000_000);
            run(&mut off, &mut h2, 10_000_000);
            assert!(!on.status.is_running() && !off.status.is_running());
            assert_eq!(
                observe(&on),
                observe(&off),
                "quickening must be invisible at timer interval {interval}"
            );
        }
    }

    #[test]
    fn quickening_pauses_on_identical_budget_boundaries() {
        // A budget-limited run must stop at the same instruction count
        // (fused ops split at the budget edge, never overshoot).
        for budget in [1u64, 2, 3, 5, 17, 50, 101, 500] {
            let mut on = boot_q(quicken_workout(), true, 13);
            let mut off = boot_q(quicken_workout(), false, 13);
            let mut h1 = Passthrough;
            let mut h2 = Passthrough;
            run(&mut on, &mut h1, budget);
            run(&mut off, &mut h2, budget);
            assert_eq!(
                observe(&on),
                observe(&off),
                "paused state must match at budget {budget}"
            );
            assert_eq!(on.counters.steps, budget.min(on.counters.steps));
        }
    }

    #[test]
    fn quickening_is_neutral_on_error_paths() {
        // Divide by zero inside fusible-looking code.
        let build_div = || {
            let mut pb = ProgramBuilder::new();
            let m = pb.method("main", 0, 2).code(|a| {
                a.iconst(10).store(0);
                a.iconst(0).store(1);
                a.load(0).load(1).div().print();
                a.halt();
            });
            pb.finish(m).unwrap()
        };
        // Null receiver on a devirtualized (monomorphic) call.
        let build_null = || {
            let mut pb = ProgramBuilder::new();
            let c = pb.class("C").build();
            pb.virtual_method(c, "f", vec![], 1, Some(Ty::Int))
                .code(|a| {
                    a.iconst(1).ret_val();
                });
            let slot = pb.vslot(c, "f");
            let m = pb.method("main", 0, 1).code(|a| {
                a.null().store(0);
                a.load(0).call_virtual(c, slot).print();
                a.halt();
            });
            pb.finish(m).unwrap()
        };
        for (build, what) in [
            (&build_div as &dyn Fn() -> crate::program::Program, "div0"),
            (&build_null, "null receiver"),
        ] {
            let mut on = boot_q(build(), true, 10_000);
            let mut off = boot_q(build(), false, 10_000);
            let mut h1 = Passthrough;
            let mut h2 = Passthrough;
            run(&mut on, &mut h1, 10_000_000);
            run(&mut off, &mut h2, 10_000_000);
            assert!(matches!(on.status, VmStatus::Error(_)), "{what} must fail");
            assert_eq!(
                observe(&on),
                observe(&off),
                "{what} error must be identical"
            );
        }
    }

    #[test]
    fn devirtualized_call_runs_the_right_override() {
        // CallMono on a receiver whose dynamic class is a subclass: the
        // monomorphic proof covers subclasses, so behavior matches.
        let mut pb = ProgramBuilder::new();
        let base = pb.class("Base").build();
        pb.virtual_method(base, "f", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(10).ret_val();
            });
        let derived = pb.class_extends("Derived", Some(base)).build();
        let slot = pb.vslot(base, "f");
        let m = pb.method("main", 0, 1).code(|a| {
            a.new(derived).store(0);
            a.load(0).call_virtual(base, slot).print();
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        // Sanity: the call really did devirtualize (no override exists).
        let cm = p.compiled(p.entry);
        assert!(cm.qops.iter().any(|q| matches!(q, QOp::CallMono { .. })));
        let vm = run_program(p);
        assert_eq!(vm.output, "10\n");
    }

    // ---- tier-2 megablock neutrality ----

    /// Two hot loops (both far past `MEGA_HOT_THRESHOLD`), one with a
    /// devirtualized call and a `rem` in the body, racing on preemptive
    /// switches — the three-tier equality workout.
    fn mega_workout() -> crate::program::Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Scaler").build();
        pb.virtual_method(c, "twice", vec![Ty::Int], 2, Some(Ty::Int))
            .code(|a| {
                a.load(1).iconst(2).mul().ret_val();
            });
        let slot = pb.vslot(c, "twice");
        let worker = pb.method("worker", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(300).ge().if_nz("done");
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.load(0).print();
            a.ret();
        });
        let m = pb.method("main", 0, 3).code(|a| {
            a.spawn(worker, 0);
            a.new(c).store(2);
            a.iconst(0).store(0);
            a.iconst(0).store(1);
            a.label("top");
            a.load(0).iconst(250).ge().if_nz("done");
            a.load(2).load(0).call_virtual(c, slot).store(1);
            a.load(1).iconst(3).rem().pop();
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.join();
            a.load(1).print();
            a.halt();
        });
        pb.finish(m).unwrap()
    }

    fn boot_mega(
        p: crate::program::Program,
        mega: bool,
        interval: u64,
        stride: u64,
        guard: Option<u32>,
    ) -> Vm {
        let cfg = VmConfig {
            quicken: true,
            mega,
            mega_deopt_stride: stride,
            mega_deopt_guard: guard,
            ..VmConfig::default()
        };
        Vm::boot(
            Arc::new(p),
            cfg,
            Box::new(FixedTimer::new(interval)),
            Box::new(CycleClock::new(0, 100)),
        )
        .unwrap()
    }

    #[test]
    fn megablocks_tier_up_and_batch_iterations() {
        let mut vm = boot_mega(mega_workout(), true, 10_000, 0, None);
        vm.enable_telemetry(256);
        let mut h = Passthrough;
        run(&mut vm, &mut h, 10_000_000);
        assert!(!vm.status.is_running());
        let st = vm.mega.stats;
        assert!(st.tier_ups >= 2, "both hot loops tier up: {st:?}");
        assert!(st.entries >= 2, "blocks actually dispatched: {st:?}");
        assert!(st.iters > 200, "iterations run batched: {st:?}");
        assert_eq!(st.forced_deopts, 0, "{st:?}");
        // Tier-up surfaces in the event ring as compile.mega, carrying
        // the trip count at the threshold crossing.
        let megas: Vec<_> = vm
            .telem
            .ring
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, telemetry::EventKind::MegaCompile { .. }))
            .collect();
        assert_eq!(megas.len() as u64, st.tier_ups);
        for e in &megas {
            if let telemetry::EventKind::MegaCompile {
                trip_count,
                block_width,
                ..
            } = e.kind
            {
                assert_eq!(trip_count, crate::compile::MEGA_HOT_THRESHOLD as u64);
                assert!(block_width > 0);
            }
        }
    }

    #[test]
    fn megablocks_are_neutral_across_timer_shapes() {
        // Interval 1 can never pass the entry gate (everything runs
        // tier-1); large intervals batch almost every iteration. All must
        // observe identically, across all three tiers.
        for interval in [1, 2, 3, 7, 64, 10_000] {
            let mut gen = boot_q(mega_workout(), false, interval);
            let mut quick = boot_mega(mega_workout(), false, interval, 0, None);
            let mut mega = boot_mega(mega_workout(), true, interval, 0, None);
            let (mut h1, mut h2, mut h3) = (Passthrough, Passthrough, Passthrough);
            run(&mut gen, &mut h1, 10_000_000);
            run(&mut quick, &mut h2, 10_000_000);
            run(&mut mega, &mut h3, 10_000_000);
            assert!(!mega.status.is_running());
            assert_eq!(
                observe(&gen),
                observe(&quick),
                "quickening must be invisible at interval {interval}"
            );
            assert_eq!(
                observe(&quick),
                observe(&mega),
                "megablocks must be invisible at interval {interval}"
            );
        }
    }

    #[test]
    fn megablocks_pause_on_identical_budget_boundaries() {
        // The n + width <= max_steps gate: budget-limited runs stop at
        // the same instruction in every tier, even mid-hot-loop.
        for budget in [1u64, 2, 3, 5, 17, 50, 101, 500, 1_000, 2_317] {
            let mut quick = boot_mega(mega_workout(), false, 97, 0, None);
            let mut mega = boot_mega(mega_workout(), true, 97, 0, None);
            let (mut h1, mut h2) = (Passthrough, Passthrough);
            run(&mut quick, &mut h1, budget);
            run(&mut mega, &mut h2, budget);
            assert_eq!(
                observe(&quick),
                observe(&mega),
                "paused state must match at budget {budget}"
            );
        }
    }

    #[test]
    fn forced_deopt_is_invisible_at_every_stride() {
        let baseline = {
            let mut vm = boot_mega(mega_workout(), false, 10_000, 0, None);
            let mut h = Passthrough;
            run(&mut vm, &mut h, 10_000_000);
            observe(&vm)
        };
        for stride in [1u64, 2, 3, 7, 64] {
            let mut vm = boot_mega(mega_workout(), true, 10_000, stride, None);
            let mut h = Passthrough;
            run(&mut vm, &mut h, 10_000_000);
            assert_eq!(
                observe(&vm),
                baseline,
                "stride-{stride} forced deopts must be invisible"
            );
            if stride == 1 {
                // Every guard evaluation deopts: blocks enter, never
                // complete an iteration, and the run still matches.
                assert!(vm.mega.stats.forced_deopts > 0, "{:?}", vm.mega.stats);
                assert_eq!(vm.mega.stats.iters, 0, "{:?}", vm.mega.stats);
            }
        }
    }

    #[test]
    fn forced_deopt_is_invisible_at_every_guard_ordinal() {
        let baseline = {
            let mut vm = boot_mega(mega_workout(), false, 10_000, 0, None);
            let mut h = Passthrough;
            run(&mut vm, &mut h, 10_000_000);
            observe(&vm)
        };
        // Cover every guard ordinal of every block in the workout (the
        // widest block has 3 guards; ordinal 7 exercises the no-op case).
        for g in [0u32, 1, 2, 7] {
            let mut vm = boot_mega(mega_workout(), true, 10_000, 0, Some(g));
            let mut h = Passthrough;
            run(&mut vm, &mut h, 10_000_000);
            assert_eq!(
                observe(&vm),
                baseline,
                "deopt at guard ordinal {g} must be invisible"
            );
            if g == 0 {
                assert!(vm.mega.stats.forced_deopts > 0, "{:?}", vm.mega.stats);
            }
        }
    }

    #[test]
    fn megablocks_are_neutral_on_error_paths() {
        // A division whose divisor decays to zero mid-hot-loop: the block
        // tiers up around trip 64, then the Div guard catches the zero at
        // trip 150 and deopts; the quickened re-execution raises the real
        // DivByZero at the identical instruction.
        let build = || {
            let mut pb = ProgramBuilder::new();
            let m = pb.method("main", 0, 1).code(|a| {
                a.iconst(0).store(0);
                a.label("top");
                a.load(0).iconst(200).ge().if_nz("done");
                a.iconst(100).iconst(150).load(0).sub().div().pop();
                a.load(0).iconst(1).add().store(0);
                a.goto("top");
                a.label("done");
                a.halt();
            });
            pb.finish(m).unwrap()
        };
        let mut gen = boot_q(build(), false, 10_000);
        let mut quick = boot_mega(build(), false, 10_000, 0, None);
        let mut mega = boot_mega(build(), true, 10_000, 0, None);
        let (mut h1, mut h2, mut h3) = (Passthrough, Passthrough, Passthrough);
        run(&mut gen, &mut h1, 10_000_000);
        run(&mut quick, &mut h2, 10_000_000);
        run(&mut mega, &mut h3, 10_000_000);
        assert!(matches!(mega.status, VmStatus::Error(_)), "div0 must fail");
        assert!(mega.mega.stats.tier_ups >= 1, "{:?}", mega.mega.stats);
        assert_eq!(observe(&gen), observe(&quick));
        assert_eq!(observe(&quick), observe(&mega), "error must be identical");
    }

    #[test]
    fn mega_ablation_env_is_reflected_in_config() {
        // The ablation flag wires through VmConfig (env read at Default).
        let cfg = VmConfig {
            mega: false,
            ..VmConfig::default()
        };
        let mut vm = Vm::boot(
            Arc::new(mega_workout()),
            VmConfig {
                quicken: true,
                ..cfg
            },
            Box::new(FixedTimer::new(10_000)),
            Box::new(CycleClock::new(0, 100)),
        )
        .unwrap();
        let mut h = Passthrough;
        run(&mut vm, &mut h, 10_000_000);
        assert_eq!(vm.mega.stats.tier_ups, 0, "disabled => no tier-ups");
        assert_eq!(vm.mega.stats.entries, 0);
    }

    /// Like [`boot_mega`] but with coarse fingerprinting — the production
    /// setting, and the one that arms the closed-form fast path (full
    /// per-pc hashing forces the step-by-step loop).
    fn boot_coarse(p: crate::program::Program, quicken: bool, mega: bool, interval: u64) -> Vm {
        let cfg = VmConfig {
            quicken,
            mega,
            fingerprint: crate::fingerprint::FingerprintMode::Coarse,
            ..VmConfig::default()
        };
        Vm::boot(
            Arc::new(p),
            cfg,
            Box::new(FixedTimer::new(interval)),
            Box::new(CycleClock::new(0, 100)),
        )
        .unwrap()
    }

    #[test]
    fn closed_form_is_neutral_under_coarse_fingerprint() {
        // Under coarse fingerprinting the closed-form stepper retires whole
        // iteration batches with one multiply; every observable (including
        // the coarse fingerprint, which hashes scheduling + output) must
        // still match both lower tiers at every timer shape.
        for interval in [3u64, 29, 97, 211, 10_000] {
            let mut gen = boot_coarse(mega_workout(), false, false, interval);
            let mut quick = boot_coarse(mega_workout(), true, false, interval);
            let mut mega = boot_coarse(mega_workout(), true, true, interval);
            let (mut h1, mut h2, mut h3) = (Passthrough, Passthrough, Passthrough);
            run(&mut gen, &mut h1, 10_000_000);
            run(&mut quick, &mut h2, 10_000_000);
            run(&mut mega, &mut h3, 10_000_000);
            assert!(!gen.status.is_running());
            assert_eq!(
                observe(&gen),
                observe(&quick),
                "quickening must be invisible at interval {interval}"
            );
            assert_eq!(
                observe(&quick),
                observe(&mega),
                "closed-form megablocks must be invisible at interval {interval}"
            );
            if interval >= 97 {
                assert!(
                    mega.mega.stats.closed_iters > 0,
                    "fast path must actually run at interval {interval} \
                     (stats: {:?})",
                    mega.mega.stats
                );
            }
        }
    }

    /// Counting loop whose induction variable crosses the i64 wrap: starts
    /// near `i64::MAX`, steps by +3, and only exits once the wrap makes it
    /// negative. Exercises the closed form's no-wrap horizon — the final
    /// wrapping iteration must be executed step-by-step with the
    /// interpreter's exact wrapping-add semantics.
    fn wrap_workout() -> crate::program::Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 1).code(|a| {
            a.iconst(i64::MAX - 1000).store(0);
            a.label("top");
            a.load(0).iconst(0).lt().if_nz("done");
            a.load(0).iconst(3).add().store(0);
            a.goto("top");
            a.label("done");
            a.load(0).print();
            a.halt();
        });
        pb.finish(m).unwrap()
    }

    #[test]
    fn closed_form_wraps_like_the_interpreter() {
        for interval in [7u64, 211, 10_000] {
            let mut quick = boot_coarse(wrap_workout(), true, false, interval);
            let mut mega = boot_coarse(wrap_workout(), true, true, interval);
            let (mut h1, mut h2) = (Passthrough, Passthrough);
            run(&mut quick, &mut h1, 10_000_000);
            run(&mut mega, &mut h2, 10_000_000);
            assert!(!quick.status.is_running());
            assert_eq!(
                observe(&quick),
                observe(&mega),
                "wrap boundary must be bit-identical at interval {interval}"
            );
            // At tight intervals the tick gate keeps the block from ever
            // entering (that is the perturbation-freedom contract), so only
            // roomy quanta must show closed-form batches.
            if interval >= 211 {
                assert!(mega.mega.stats.closed_iters > 0);
            }
            // The printed value is the post-wrap negative induction value —
            // identical output is already asserted above; sanity-check the
            // wrap actually happened.
            assert!(quick.output.trim().parse::<i64>().unwrap() < 0);
        }
    }
}
