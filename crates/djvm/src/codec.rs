//! Hand-rolled JSON codec for the static program model.
//!
//! Replaces the serde derives the seed carried on [`crate::bytecode`] and
//! [`crate::program`]: the workspace owns its serialization end to end
//! (hermetic build; see the `codec` crate). The format is a direct
//! transliteration of the structs:
//!
//! * [`Ty`] is its variant name (`"Int"` / `"Ref"`),
//! * an [`Op`] with no payload is its variant name (`"Add"`); one with a
//!   payload is an array `[name, field...]` with fields in declaration
//!   order (`["GetField", 2, "Int"]`),
//! * [`Program`] and friends are objects keyed by field name. The
//!   `compiled` output of the baseline compiler — ref maps, backedge
//!   bits, *and the quickened `QOp` stream* — is *not* serialized: a
//!   decoded program must be passed through [`crate::compile`] again,
//!   mirroring how a class file carries no JIT state. Quickening is
//!   deterministic, so recompilation reproduces the exact same stream
//!   (and therefore the exact same execution) on every machine.
//!
//! Encoding is deterministic: map-like fields (`vslots`) are emitted in
//! sorted key order.

use crate::bytecode::{Op, Ty};
use crate::program::{Builtins, Class, FieldDecl, Method, NativeDecl, Program};
use codec::{FromJson, Json, JsonError, ToJson};
use std::collections::HashMap;

impl ToJson for Ty {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Ty::Int => "Int",
                Ty::Ref => "Ref",
            }
            .into(),
        )
    }
}

impl FromJson for Ty {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str()? {
            "Int" => Ok(Ty::Int),
            "Ref" => Ok(Ty::Ref),
            other => Err(JsonError::new(format!("unknown type \"{other}\""))),
        }
    }
}

/// `[name, field...]` for payload-carrying ops.
fn op_arr(name: &str, fields: Vec<Json>) -> Json {
    let mut items = vec![Json::Str(name.into())];
    items.extend(fields);
    Json::Arr(items)
}

impl ToJson for Op {
    fn to_json(&self) -> Json {
        use Json::Str;
        match *self {
            Op::Const(v) => op_arr("Const", vec![v.to_json()]),
            Op::Str(s) => op_arr("Str", vec![s.to_json()]),
            Op::Load(n) => op_arr("Load", vec![n.to_json()]),
            Op::Store(n) => op_arr("Store", vec![n.to_json()]),
            Op::Goto(t) => op_arr("Goto", vec![t.to_json()]),
            Op::If(t) => op_arr("If", vec![t.to_json()]),
            Op::IfZ(t) => op_arr("IfZ", vec![t.to_json()]),
            Op::New(c) => op_arr("New", vec![c.to_json()]),
            Op::GetField { idx, ty } => op_arr("GetField", vec![idx.to_json(), ty.to_json()]),
            Op::PutField { idx, ty } => op_arr("PutField", vec![idx.to_json(), ty.to_json()]),
            Op::GetStatic(c, n) => op_arr("GetStatic", vec![c.to_json(), n.to_json()]),
            Op::PutStatic(c, n) => op_arr("PutStatic", vec![c.to_json(), n.to_json()]),
            Op::NewArray(ty) => op_arr("NewArray", vec![ty.to_json()]),
            Op::ALoad(ty) => op_arr("ALoad", vec![ty.to_json()]),
            Op::AStore(ty) => op_arr("AStore", vec![ty.to_json()]),
            Op::InstanceOf(c) => op_arr("InstanceOf", vec![c.to_json()]),
            Op::Call(m) => op_arr("Call", vec![m.to_json()]),
            Op::CallVirtual { class, slot } => {
                op_arr("CallVirtual", vec![class.to_json(), slot.to_json()])
            }
            Op::Spawn { method, nargs } => op_arr("Spawn", vec![method.to_json(), nargs.to_json()]),
            Op::NativeCall { native, nargs } => {
                op_arr("NativeCall", vec![native.to_json(), nargs.to_json()])
            }
            Op::PrintStr(s) => op_arr("PrintStr", vec![s.to_json()]),
            // Payload-free ops are bare strings; `unit_op_name` is the
            // single source of truth for the name set.
            op => Str(unit_op_name(op).into()),
        }
    }
}

/// Variant name of a payload-free op (panics on payload ops — those are
/// handled above).
fn unit_op_name(op: Op) -> &'static str {
    match op {
        Op::Null => "Null",
        Op::Dup => "Dup",
        Op::Pop => "Pop",
        Op::Swap => "Swap",
        Op::Add => "Add",
        Op::Sub => "Sub",
        Op::Mul => "Mul",
        Op::Div => "Div",
        Op::Rem => "Rem",
        Op::Neg => "Neg",
        Op::BitAnd => "BitAnd",
        Op::BitOr => "BitOr",
        Op::BitXor => "BitXor",
        Op::Shl => "Shl",
        Op::Shr => "Shr",
        Op::Eq => "Eq",
        Op::Ne => "Ne",
        Op::Lt => "Lt",
        Op::Le => "Le",
        Op::Gt => "Gt",
        Op::Ge => "Ge",
        Op::RefEq => "RefEq",
        Op::ArrayLen => "ArrayLen",
        Op::IdentityHash => "IdentityHash",
        Op::Ret => "Ret",
        Op::RetVal => "RetVal",
        Op::MonitorEnter => "MonitorEnter",
        Op::MonitorExit => "MonitorExit",
        Op::Wait => "Wait",
        Op::TimedWait => "TimedWait",
        Op::Notify => "Notify",
        Op::NotifyAll => "NotifyAll",
        Op::Join => "Join",
        Op::Interrupt => "Interrupt",
        Op::YieldNow => "YieldNow",
        Op::Sleep => "Sleep",
        Op::CurrentThread => "CurrentThread",
        Op::Now => "Now",
        Op::Print => "Print",
        Op::Halt => "Halt",
        other => unreachable!("op {other:?} carries a payload"),
    }
}

fn unit_op_from_name(name: &str) -> Option<Op> {
    Some(match name {
        "Null" => Op::Null,
        "Dup" => Op::Dup,
        "Pop" => Op::Pop,
        "Swap" => Op::Swap,
        "Add" => Op::Add,
        "Sub" => Op::Sub,
        "Mul" => Op::Mul,
        "Div" => Op::Div,
        "Rem" => Op::Rem,
        "Neg" => Op::Neg,
        "BitAnd" => Op::BitAnd,
        "BitOr" => Op::BitOr,
        "BitXor" => Op::BitXor,
        "Shl" => Op::Shl,
        "Shr" => Op::Shr,
        "Eq" => Op::Eq,
        "Ne" => Op::Ne,
        "Lt" => Op::Lt,
        "Le" => Op::Le,
        "Gt" => Op::Gt,
        "Ge" => Op::Ge,
        "RefEq" => Op::RefEq,
        "ArrayLen" => Op::ArrayLen,
        "IdentityHash" => Op::IdentityHash,
        "Ret" => Op::Ret,
        "RetVal" => Op::RetVal,
        "MonitorEnter" => Op::MonitorEnter,
        "MonitorExit" => Op::MonitorExit,
        "Wait" => Op::Wait,
        "TimedWait" => Op::TimedWait,
        "Notify" => Op::Notify,
        "NotifyAll" => Op::NotifyAll,
        "Join" => Op::Join,
        "Interrupt" => Op::Interrupt,
        "YieldNow" => Op::YieldNow,
        "Sleep" => Op::Sleep,
        "CurrentThread" => Op::CurrentThread,
        "Now" => Op::Now,
        "Print" => Op::Print,
        "Halt" => Op::Halt,
        _ => return None,
    })
}

impl FromJson for Op {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Ok(name) = j.as_str() {
            return unit_op_from_name(name)
                .ok_or_else(|| JsonError::new(format!("unknown op \"{name}\"")));
        }
        let items = j.as_arr()?;
        let name = items
            .first()
            .ok_or_else(|| JsonError::new("empty op array"))?
            .as_str()?;
        let args = &items[1..];
        let want = |n: usize| -> Result<(), JsonError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(JsonError::new(format!(
                    "op {name} wants {n} fields, got {}",
                    args.len()
                )))
            }
        };
        let op = match name {
            "Const" => {
                want(1)?;
                Op::Const(i64::from_json(&args[0])?)
            }
            "Str" => {
                want(1)?;
                Op::Str(u32::from_json(&args[0])?)
            }
            "Load" => {
                want(1)?;
                Op::Load(u16::from_json(&args[0])?)
            }
            "Store" => {
                want(1)?;
                Op::Store(u16::from_json(&args[0])?)
            }
            "Goto" => {
                want(1)?;
                Op::Goto(u32::from_json(&args[0])?)
            }
            "If" => {
                want(1)?;
                Op::If(u32::from_json(&args[0])?)
            }
            "IfZ" => {
                want(1)?;
                Op::IfZ(u32::from_json(&args[0])?)
            }
            "New" => {
                want(1)?;
                Op::New(u32::from_json(&args[0])?)
            }
            "GetField" => {
                want(2)?;
                Op::GetField {
                    idx: u16::from_json(&args[0])?,
                    ty: Ty::from_json(&args[1])?,
                }
            }
            "PutField" => {
                want(2)?;
                Op::PutField {
                    idx: u16::from_json(&args[0])?,
                    ty: Ty::from_json(&args[1])?,
                }
            }
            "GetStatic" => {
                want(2)?;
                Op::GetStatic(u32::from_json(&args[0])?, u16::from_json(&args[1])?)
            }
            "PutStatic" => {
                want(2)?;
                Op::PutStatic(u32::from_json(&args[0])?, u16::from_json(&args[1])?)
            }
            "NewArray" => {
                want(1)?;
                Op::NewArray(Ty::from_json(&args[0])?)
            }
            "ALoad" => {
                want(1)?;
                Op::ALoad(Ty::from_json(&args[0])?)
            }
            "AStore" => {
                want(1)?;
                Op::AStore(Ty::from_json(&args[0])?)
            }
            "InstanceOf" => {
                want(1)?;
                Op::InstanceOf(u32::from_json(&args[0])?)
            }
            "Call" => {
                want(1)?;
                Op::Call(u32::from_json(&args[0])?)
            }
            "CallVirtual" => {
                want(2)?;
                Op::CallVirtual {
                    class: u32::from_json(&args[0])?,
                    slot: u16::from_json(&args[1])?,
                }
            }
            "Spawn" => {
                want(2)?;
                Op::Spawn {
                    method: u32::from_json(&args[0])?,
                    nargs: u8::from_json(&args[1])?,
                }
            }
            "NativeCall" => {
                want(2)?;
                Op::NativeCall {
                    native: u32::from_json(&args[0])?,
                    nargs: u8::from_json(&args[1])?,
                }
            }
            "PrintStr" => {
                want(1)?;
                Op::PrintStr(u32::from_json(&args[0])?)
            }
            other => return Err(JsonError::new(format!("unknown op \"{other}\""))),
        };
        Ok(op)
    }
}

impl ToJson for FieldDecl {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("ty", self.ty.to_json()),
        ])
    }
}

impl FromJson for FieldDecl {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(FieldDecl {
            name: String::from_json(j.field("name")?)?,
            ty: Ty::from_json(j.field("ty")?)?,
        })
    }
}

impl ToJson for Class {
    fn to_json(&self) -> Json {
        // Deterministic output: vslots is a HashMap, so sort its keys.
        let mut slots: Vec<(&String, &u16)> = self.vslots.iter().collect();
        slots.sort();
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("super_class", self.super_class.to_json()),
            ("fields", self.fields.to_json()),
            ("statics", self.statics.to_json()),
            ("vtable", self.vtable.to_json()),
            (
                "vslots",
                Json::Obj(
                    slots
                        .into_iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Class {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let mut vslots = HashMap::new();
        for (k, v) in j.field("vslots")?.as_obj()? {
            vslots.insert(k.clone(), u16::from_json(v)?);
        }
        Ok(Class {
            name: String::from_json(j.field("name")?)?,
            super_class: Option::from_json(j.field("super_class")?)?,
            fields: Vec::from_json(j.field("fields")?)?,
            statics: Vec::from_json(j.field("statics")?)?,
            vtable: Vec::from_json(j.field("vtable")?)?,
            vslots,
        })
    }
}

impl ToJson for Method {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("owner", self.owner.to_json()),
            ("nargs", self.nargs.to_json()),
            ("nlocals", self.nlocals.to_json()),
            ("arg_types", self.arg_types.to_json()),
            ("ret", self.ret.to_json()),
            ("ops", self.ops.to_json()),
            ("lines", self.lines.to_json()),
        ])
    }
}

impl FromJson for Method {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Method {
            name: String::from_json(j.field("name")?)?,
            owner: Option::from_json(j.field("owner")?)?,
            nargs: u16::from_json(j.field("nargs")?)?,
            nlocals: u16::from_json(j.field("nlocals")?)?,
            arg_types: Vec::from_json(j.field("arg_types")?)?,
            ret: Option::from_json(j.field("ret")?)?,
            ops: Vec::from_json(j.field("ops")?)?,
            lines: Vec::from_json(j.field("lines")?)?,
            compiled: None,
        })
    }
}

impl ToJson for NativeDecl {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("nargs", self.nargs.to_json()),
            ("returns", self.returns.to_json()),
        ])
    }
}

impl FromJson for NativeDecl {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(NativeDecl {
            name: String::from_json(j.field("name")?)?,
            nargs: u8::from_json(j.field("nargs")?)?,
            returns: bool::from_json(j.field("returns")?)?,
        })
    }
}

impl ToJson for Builtins {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("thread_class", self.thread_class.to_json()),
            ("string_class", self.string_class.to_json()),
            ("vm_method_class", self.vm_method_class.to_json()),
            ("flush_method", self.flush_method.to_json()),
            ("fill_method", self.fill_method.to_json()),
            ("get_line_number_at", self.get_line_number_at.to_json()),
            ("get_methods", self.get_methods.to_json()),
            ("line_number_of", self.line_number_of.to_json()),
        ])
    }
}

impl FromJson for Builtins {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Builtins {
            thread_class: u32::from_json(j.field("thread_class")?)?,
            string_class: u32::from_json(j.field("string_class")?)?,
            vm_method_class: u32::from_json(j.field("vm_method_class")?)?,
            flush_method: u32::from_json(j.field("flush_method")?)?,
            fill_method: u32::from_json(j.field("fill_method")?)?,
            get_line_number_at: u32::from_json(j.field("get_line_number_at")?)?,
            get_methods: u32::from_json(j.field("get_methods")?)?,
            line_number_of: u32::from_json(j.field("line_number_of")?)?,
        })
    }
}

impl ToJson for Program {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("classes", self.classes.to_json()),
            ("methods", self.methods.to_json()),
            ("strings", self.strings.to_json()),
            ("natives", self.natives.to_json()),
            ("entry", self.entry.to_json()),
            ("builtins", self.builtins.to_json()),
            (
                "field_layouts",
                Json::Arr(self.field_layouts.iter().map(ToJson::to_json).collect()),
            ),
            (
                "static_layouts",
                Json::Arr(self.static_layouts.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Program {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let layouts = |key: &str| -> Result<Vec<Vec<Ty>>, JsonError> {
            j.field(key)?.as_arr()?.iter().map(Vec::from_json).collect()
        };
        Ok(Program {
            classes: Vec::from_json(j.field("classes")?)?,
            methods: Vec::from_json(j.field("methods")?)?,
            strings: Vec::from_json(j.field("strings")?)?,
            natives: Vec::from_json(j.field("natives")?)?,
            entry: u32::from_json(j.field("entry")?)?,
            builtins: Builtins::from_json(j.field("builtins")?)?,
            field_layouts: layouts("field_layouts")?,
            static_layouts: layouts("static_layouts")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// All ops round-trip through JSON, including every payload shape.
    #[test]
    fn ops_roundtrip() {
        let ops = [
            Op::Const(i64::MIN),
            Op::Const(-1),
            Op::Null,
            Op::Str(7),
            Op::Load(65535),
            Op::Store(0),
            Op::Dup,
            Op::Pop,
            Op::Swap,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::Neg,
            Op::BitAnd,
            Op::BitOr,
            Op::BitXor,
            Op::Shl,
            Op::Shr,
            Op::Eq,
            Op::Ne,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::RefEq,
            Op::Goto(u32::MAX),
            Op::If(3),
            Op::IfZ(0),
            Op::New(1),
            Op::GetField {
                idx: 2,
                ty: Ty::Int,
            },
            Op::PutField {
                idx: 3,
                ty: Ty::Ref,
            },
            Op::GetStatic(1, 2),
            Op::PutStatic(3, 4),
            Op::NewArray(Ty::Ref),
            Op::ALoad(Ty::Int),
            Op::AStore(Ty::Ref),
            Op::ArrayLen,
            Op::IdentityHash,
            Op::InstanceOf(9),
            Op::Call(11),
            Op::CallVirtual { class: 1, slot: 2 },
            Op::Ret,
            Op::RetVal,
            Op::MonitorEnter,
            Op::MonitorExit,
            Op::Wait,
            Op::TimedWait,
            Op::Notify,
            Op::NotifyAll,
            Op::Spawn {
                method: 5,
                nargs: 2,
            },
            Op::Join,
            Op::Interrupt,
            Op::YieldNow,
            Op::Sleep,
            Op::CurrentThread,
            Op::Now,
            Op::NativeCall {
                native: 1,
                nargs: 255,
            },
            Op::Print,
            Op::PrintStr(0),
            Op::Halt,
        ];
        for op in ops {
            let back = Op::from_json_str(&op.to_json_string()).unwrap();
            assert_eq!(back, op);
        }
    }

    #[test]
    fn unknown_op_rejected() {
        assert!(Op::from_json_str("\"Frobnicate\"").is_err());
        assert!(Op::from_json_str("[\"Const\"]").is_err());
        assert!(Op::from_json_str("[\"Load\",-1]").is_err());
    }

    /// A real compiled program round-trips (minus the compiled method
    /// bodies, which are regenerated by re-compilation).
    #[test]
    fn program_roundtrips_and_recompiles() {
        let mut pb = ProgramBuilder::new();
        let node = pb
            .class("Node")
            .field("v", Ty::Int)
            .field("next", Ty::Ref)
            .build();
        let m = pb.method("main", 0, 2).code(|a| {
            a.line(1).new(node).store(0);
            a.load(0).iconst(41).put_field(0);
            a.load(0).get_field(0).iconst(1).add().print();
            a.halt();
        });
        let program = pb.finish(m).unwrap();

        let text = program.to_json_string();
        let decoded = Program::from_json_str(&text).unwrap();

        assert_eq!(decoded.classes.len(), program.classes.len());
        assert_eq!(decoded.strings, program.strings);
        assert_eq!(decoded.entry, program.entry);
        for (a, b) in decoded.methods.iter().zip(&program.methods) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.lines, b.lines);
            assert!(a.compiled.is_none(), "compiled state must not travel");
        }

        // Re-encoding the decoded program is byte-identical: the codec is
        // a pure function of the logical program.
        assert_eq!(decoded.to_json_string(), text);

        // And the decoded program passes the verifier/compiler again.
        let mut decoded = decoded;
        crate::compile::compile_program(&mut decoded).unwrap();
        assert!(decoded.methods[m as usize].compiled.is_some());
    }

    /// The quickened stream never travels with the program, and
    /// recompiling a decoded program regenerates it exactly — so a
    /// serialized program replays identically wherever it is decoded.
    #[test]
    fn roundtrip_requickens_identically() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 2).code(|a| {
            a.iconst(0).store(0);
            a.iconst(0).store(1);
            a.label("top");
            a.load(0).iconst(25).ge().if_nz("done");
            a.load(1).load(0).add().store(1);
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.load(1).print();
            a.halt();
        });
        let program = pb.finish(m).unwrap();

        let mut decoded = Program::from_json_str(&program.to_json_string()).unwrap();
        assert!(
            decoded.methods.iter().all(|m| m.compiled.is_none()),
            "quickened state must not travel"
        );
        crate::compile::compile_program(&mut decoded).unwrap();

        for (a, b) in decoded.methods.iter().zip(&program.methods) {
            let (ca, cb) = (a.compiled.as_ref().unwrap(), b.compiled.as_ref().unwrap());
            assert_eq!(ca.qops, cb.qops, "method {}", a.name);
            assert_eq!(ca.backedge, cb.backedge, "method {}", a.name);
        }
        // The main method actually got superinstructions (the test is not
        // vacuous).
        let main = decoded.methods[m as usize].compiled.as_ref().unwrap();
        assert!(main
            .qops
            .iter()
            .any(|q| matches!(q, crate::compile::QOp::ConstStore { .. })));
    }
}
