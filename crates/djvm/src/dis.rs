//! Disassembler: human-readable listings of guest methods, annotated with
//! the baseline compiler's metadata (yield points, reference maps, source
//! lines). Used by the debugger's source/instruction view (paper §4: "a
//! view of the executing method's Java source and machine instructions").

use crate::bytecode::{Op, Ty};
use crate::compile::QOp;
use crate::program::Program;
use crate::MethodId;
use std::fmt::Write;

/// Render one instruction with resolved names.
pub fn render_op(program: &Program, op: Op) -> String {
    match op {
        Op::Const(v) => format!("const {v}"),
        Op::Null => "null".into(),
        Op::Str(s) => format!("str {:?}", program.strings[s as usize]),
        Op::Load(i) => format!("load l{i}"),
        Op::Store(i) => format!("store l{i}"),
        Op::Dup => "dup".into(),
        Op::Pop => "pop".into(),
        Op::Swap => "swap".into(),
        Op::Add => "add".into(),
        Op::Sub => "sub".into(),
        Op::Mul => "mul".into(),
        Op::Div => "div".into(),
        Op::Rem => "rem".into(),
        Op::Neg => "neg".into(),
        Op::BitAnd => "and".into(),
        Op::BitOr => "or".into(),
        Op::BitXor => "xor".into(),
        Op::Shl => "shl".into(),
        Op::Shr => "shr".into(),
        Op::Eq => "cmpeq".into(),
        Op::Ne => "cmpne".into(),
        Op::Lt => "cmplt".into(),
        Op::Le => "cmple".into(),
        Op::Gt => "cmpgt".into(),
        Op::Ge => "cmpge".into(),
        Op::RefEq => "refeq".into(),
        Op::Goto(t) => format!("goto @{t}"),
        Op::If(t) => format!("ifnz @{t}"),
        Op::IfZ(t) => format!("ifz @{t}"),
        Op::New(c) => format!("new {}", program.class(c).name),
        Op::GetField { idx, ty } => format!("getfield #{idx}:{}", ty_str(ty)),
        Op::PutField { idx, ty } => format!("putfield #{idx}:{}", ty_str(ty)),
        Op::GetStatic(c, i) => format!(
            "getstatic {}.{}",
            program.class(c).name,
            program.class(c).statics[i as usize].name
        ),
        Op::PutStatic(c, i) => format!(
            "putstatic {}.{}",
            program.class(c).name,
            program.class(c).statics[i as usize].name
        ),
        Op::NewArray(ty) => format!("newarray {}", ty_str(ty)),
        Op::ALoad(ty) => format!("aload {}", ty_str(ty)),
        Op::AStore(ty) => format!("astore {}", ty_str(ty)),
        Op::ArrayLen => "arraylen".into(),
        Op::IdentityHash => "identityhash".into(),
        Op::InstanceOf(c) => format!("instanceof {}", program.class(c).name),
        Op::Call(m) => format!("call {}", program.method(m).qualified_name(program)),
        Op::CallVirtual { class, slot } => {
            let m = program.class(class).vtable[slot as usize];
            format!(
                "callvirtual {}.{} [slot {slot}]",
                program.class(class).name,
                program.method(m).name
            )
        }
        Op::Ret => "ret".into(),
        Op::RetVal => "retval".into(),
        Op::MonitorEnter => "monitorenter".into(),
        Op::MonitorExit => "monitorexit".into(),
        Op::Wait => "wait".into(),
        Op::TimedWait => "timedwait".into(),
        Op::Notify => "notify".into(),
        Op::NotifyAll => "notifyall".into(),
        Op::Spawn { method, nargs } => format!(
            "spawn {} ({nargs} args)",
            program.method(method).qualified_name(program)
        ),
        Op::Join => "join".into(),
        Op::Interrupt => "interrupt".into(),
        Op::YieldNow => "yield".into(),
        Op::Sleep => "sleep".into(),
        Op::CurrentThread => "currentthread".into(),
        Op::Now => "now".into(),
        Op::NativeCall { native, nargs } => format!(
            "nativecall {} ({nargs} args)",
            program.natives[native as usize].name
        ),
        Op::Print => "print".into(),
        Op::PrintStr(s) => format!("printstr {:?}", program.strings[s as usize]),
        Op::Halt => "halt".into(),
    }
}

fn ty_str(ty: Ty) -> &'static str {
    match ty {
        Ty::Int => "int",
        Ty::Ref => "ref",
    }
}

/// Disassemble a whole method. Yield points (backedges) are marked `*`,
/// and each line shows `pc | source line | instruction`.
pub fn disassemble(program: &Program, method: MethodId) -> String {
    let m = program.method(method);
    let cm = program.compiled(method);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} (args {}, locals {}, max stack {}, frame {} words)",
        m.qualified_name(program),
        m.nargs,
        m.nlocals,
        cm.max_stack,
        cm.frame_words
    );
    for (pc, &op) in m.ops.iter().enumerate() {
        let marker = if cm.backedge.get(pc) { "*" } else { " " };
        let depth = cm.ref_maps[pc]
            .as_ref()
            .map(|r| r.stack_depth.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "  {marker}{pc:4}  L{:<4} [{depth:>2}]  {}",
            m.lines[pc],
            render_op(program, op)
        );
    }
    out
}

/// Disassemble every method of the program.
pub fn disassemble_all(program: &Program) -> String {
    (0..program.methods.len() as MethodId)
        .map(|m| disassemble(program, m))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Render one quickened op. Superinstructions show their mnemonic and the
/// constituent source ops they replace come from the caller (see
/// [`disassemble_quickened`]).
pub fn render_qop(program: &Program, q: QOp) -> String {
    match q {
        QOp::Gen(op) => render_op(program, op),
        QOp::Const(v) => format!("q.const {v}"),
        QOp::Load(i) => format!("q.load l{i}"),
        QOp::Store(i) => format!("q.store l{i}"),
        QOp::Dup => "q.dup".into(),
        QOp::Pop => "q.pop".into(),
        QOp::Swap => "q.swap".into(),
        QOp::Neg => "q.neg".into(),
        QOp::RefEq => "q.refeq".into(),
        QOp::Alu(f) => format!("q.alu {f:?}"),
        QOp::Cmp(f) => format!("q.cmp {f:?}"),
        QOp::Goto { target, backedge } => {
            format!("q.goto @{target}{}", if backedge { " [backedge]" } else { "" })
        }
        QOp::If { target, backedge } => {
            format!("q.ifnz @{target}{}", if backedge { " [backedge]" } else { "" })
        }
        QOp::IfZ { target, backedge } => {
            format!("q.ifz @{target}{}", if backedge { " [backedge]" } else { "" })
        }
        QOp::CallMono { class, callee, nargs } => format!(
            "q.callmono {}.{} ({nargs} args)",
            program.class(class).name,
            program.method(callee).name
        ),
        QOp::ConstStore { v, local } => format!("q.const+store {v} -> l{local}"),
        QOp::LoadLoadAlu { a, b, f } => format!("q.load+load+alu l{a}, l{b}, {f:?}"),
        QOp::LoadConstAlu { a, v, f } => format!("q.load+const+alu l{a}, {v}, {f:?}"),
        QOp::CmpIf { f, target, backedge, jump_if } => format!(
            "q.cmp+{} {f:?} @{target}{}",
            if jump_if { "ifnz" } else { "ifz" },
            if backedge { " [backedge]" } else { "" }
        ),
        QOp::LoadConstCmpIf { a, v, f, target, backedge, jump_if } => format!(
            "q.load+const+cmp+{} l{a}, {v}, {f:?} @{target}{}",
            if jump_if { "ifnz" } else { "ifz" },
            if backedge { " [backedge]" } else { "" }
        ),
    }
}

/// Disassemble a method's *quickened* stream. Fusion heads print their pc
/// range and the constituent source ops they replace; interior pcs of a
/// fusion are indented under the head (they remain valid resume points —
/// the interpreter may land on them after a mid-fusion timer split).
pub fn disassemble_quickened(program: &Program, method: MethodId) -> String {
    let m = program.method(method);
    let cm = program.compiled(method);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} (quickened, {} qops)",
        m.qualified_name(program),
        cm.qops.len()
    );
    let mut fused_until = 0usize;
    for (pc, &q) in cm.qops.iter().enumerate() {
        let w = q.width() as usize;
        if w > 1 {
            let last = pc + w - 1;
            let constituents = m.ops[pc..=last]
                .iter()
                .map(|&op| render_op(program, op))
                .collect::<Vec<_>>()
                .join("; ");
            let _ = writeln!(
                out,
                "  {pc:4}..{last:<4}  {:40} <= {constituents}",
                render_qop(program, q)
            );
            fused_until = last;
        } else if pc <= fused_until && pc > 0 {
            // Interior resume point of the fusion above.
            let _ = writeln!(out, "       .{pc:<4}  {}", render_qop(program, q));
        } else {
            let _ = writeln!(out, "  {pc:4}        {}", render_qop(program, q));
        }
    }
    out
}

/// Quickened disassembly of every method.
pub fn disassemble_quickened_all(program: &Program) -> String {
    (0..program.methods.len() as MethodId)
        .map(|m| disassemble_quickened(program, m))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("x", Ty::Int).build();
        let cls = pb.class("Box").field("v", Ty::Ref).build();
        let s = pb.intern("hi");
        let f = pb.func("f", 1, 1).code(|a| {
            a.load(0).ret_val();
        });
        let m = pb.method("main", 0, 2).code(|a| {
            a.line(5).iconst(1).put_static(g, 0);
            a.label("top");
            a.get_static(g, 0).iconst(10).ge().if_nz("done");
            a.new(cls).store(0);
            a.get_static(g, 0).call(f).put_static(g, 0);
            a.print_str(s);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        pb.finish(m).unwrap()
    }

    #[test]
    fn disassembly_resolves_names() {
        let p = sample();
        let text = disassemble(&p, p.entry);
        assert!(text.contains("putstatic G.x"), "{text}");
        assert!(text.contains("new Box"), "{text}");
        assert!(text.contains("call f"), "{text}");
        assert!(text.contains("printstr \"hi\""), "{text}");
        assert!(text.contains("halt"), "{text}");
    }

    #[test]
    fn yield_points_are_marked() {
        let p = sample();
        let text = disassemble(&p, p.entry);
        // the goto back to "top" is a backedge => a line starting with '*'
        assert!(
            text.lines().any(|l| l.trim_start().starts_with('*')),
            "{text}"
        );
    }

    #[test]
    fn source_lines_shown() {
        let p = sample();
        let text = disassemble(&p, p.entry);
        assert!(text.contains("L5"), "{text}");
    }

    #[test]
    fn disassemble_all_covers_builtins() {
        let p = sample();
        let text = disassemble_all(&p);
        assert!(text.contains("sys$flushTrace"));
        assert!(text.contains("VM_Method.getLineNumberAt"));
        assert!(text.contains("sys$lineNumberOf"));
    }

    #[test]
    fn quickened_listing_shows_fusions_with_pc_ranges() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("hot", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(5).ge().if_nz("done");
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let text = disassemble_quickened(&p, m);
        // Superinstruction heads print their pc range and constituents.
        assert!(text.contains("q.const+store"), "{text}");
        assert!(text.contains("q.load+const+cmp+ifnz"), "{text}");
        assert!(text.contains("<="), "constituents shown: {text}");
        assert!(text.contains("2..5"), "pc range shown: {text}");
        // The backedge goto carries its pre-decoded flag.
        assert!(text.contains("[backedge]"), "{text}");
        assert!(text.contains("(quickened,"), "{text}");
    }

    #[test]
    fn quickened_all_renders_every_method() {
        let p = sample();
        let text = disassemble_quickened_all(&p);
        for m in &p.methods {
            assert!(text.contains(&m.name), "missing {}", m.name);
        }
    }

    #[test]
    fn every_op_renders() {
        // smoke: render_op must not panic for the ops reachable in builtins
        let p = sample();
        for m in &p.methods {
            for &op in &m.ops {
                let s = render_op(&p, op);
                assert!(!s.is_empty());
            }
        }
    }
}
