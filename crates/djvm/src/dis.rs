//! Disassembler: human-readable listings of guest methods, annotated with
//! the baseline compiler's metadata (yield points, reference maps, source
//! lines). Used by the debugger's source/instruction view (paper §4: "a
//! view of the executing method's Java source and machine instructions").

use crate::bytecode::{Op, Ty};
use crate::compile::{MegaOp, QOp};
use crate::program::Program;
use crate::MethodId;
use std::fmt::Write;

/// Render one instruction with resolved names.
pub fn render_op(program: &Program, op: Op) -> String {
    match op {
        Op::Const(v) => format!("const {v}"),
        Op::Null => "null".into(),
        Op::Str(s) => format!("str {:?}", program.strings[s as usize]),
        Op::Load(i) => format!("load l{i}"),
        Op::Store(i) => format!("store l{i}"),
        Op::Dup => "dup".into(),
        Op::Pop => "pop".into(),
        Op::Swap => "swap".into(),
        Op::Add => "add".into(),
        Op::Sub => "sub".into(),
        Op::Mul => "mul".into(),
        Op::Div => "div".into(),
        Op::Rem => "rem".into(),
        Op::Neg => "neg".into(),
        Op::BitAnd => "and".into(),
        Op::BitOr => "or".into(),
        Op::BitXor => "xor".into(),
        Op::Shl => "shl".into(),
        Op::Shr => "shr".into(),
        Op::Eq => "cmpeq".into(),
        Op::Ne => "cmpne".into(),
        Op::Lt => "cmplt".into(),
        Op::Le => "cmple".into(),
        Op::Gt => "cmpgt".into(),
        Op::Ge => "cmpge".into(),
        Op::RefEq => "refeq".into(),
        Op::Goto(t) => format!("goto @{t}"),
        Op::If(t) => format!("ifnz @{t}"),
        Op::IfZ(t) => format!("ifz @{t}"),
        Op::New(c) => format!("new {}", program.class(c).name),
        Op::GetField { idx, ty } => format!("getfield #{idx}:{}", ty_str(ty)),
        Op::PutField { idx, ty } => format!("putfield #{idx}:{}", ty_str(ty)),
        Op::GetStatic(c, i) => format!(
            "getstatic {}.{}",
            program.class(c).name,
            program.class(c).statics[i as usize].name
        ),
        Op::PutStatic(c, i) => format!(
            "putstatic {}.{}",
            program.class(c).name,
            program.class(c).statics[i as usize].name
        ),
        Op::NewArray(ty) => format!("newarray {}", ty_str(ty)),
        Op::ALoad(ty) => format!("aload {}", ty_str(ty)),
        Op::AStore(ty) => format!("astore {}", ty_str(ty)),
        Op::ArrayLen => "arraylen".into(),
        Op::IdentityHash => "identityhash".into(),
        Op::InstanceOf(c) => format!("instanceof {}", program.class(c).name),
        Op::Call(m) => format!("call {}", program.method(m).qualified_name(program)),
        Op::CallVirtual { class, slot } => {
            let m = program.class(class).vtable[slot as usize];
            format!(
                "callvirtual {}.{} [slot {slot}]",
                program.class(class).name,
                program.method(m).name
            )
        }
        Op::Ret => "ret".into(),
        Op::RetVal => "retval".into(),
        Op::MonitorEnter => "monitorenter".into(),
        Op::MonitorExit => "monitorexit".into(),
        Op::Wait => "wait".into(),
        Op::TimedWait => "timedwait".into(),
        Op::Notify => "notify".into(),
        Op::NotifyAll => "notifyall".into(),
        Op::Spawn { method, nargs } => format!(
            "spawn {} ({nargs} args)",
            program.method(method).qualified_name(program)
        ),
        Op::Join => "join".into(),
        Op::Interrupt => "interrupt".into(),
        Op::YieldNow => "yield".into(),
        Op::Sleep => "sleep".into(),
        Op::CurrentThread => "currentthread".into(),
        Op::Now => "now".into(),
        Op::NativeCall { native, nargs } => format!(
            "nativecall {} ({nargs} args)",
            program.natives[native as usize].name
        ),
        Op::Print => "print".into(),
        Op::PrintStr(s) => format!("printstr {:?}", program.strings[s as usize]),
        Op::Halt => "halt".into(),
    }
}

fn ty_str(ty: Ty) -> &'static str {
    match ty {
        Ty::Int => "int",
        Ty::Ref => "ref",
    }
}

/// Disassemble a whole method. Yield points (backedges) are marked `*`,
/// and each line shows `pc | source line | instruction`.
pub fn disassemble(program: &Program, method: MethodId) -> String {
    let m = program.method(method);
    let cm = program.compiled(method);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} (args {}, locals {}, max stack {}, frame {} words)",
        m.qualified_name(program),
        m.nargs,
        m.nlocals,
        cm.max_stack,
        cm.frame_words
    );
    for (pc, &op) in m.ops.iter().enumerate() {
        let marker = if cm.backedge.get(pc) { "*" } else { " " };
        let depth = cm.ref_maps[pc]
            .as_ref()
            .map(|r| r.stack_depth.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "  {marker}{pc:4}  L{:<4} [{depth:>2}]  {}",
            m.lines[pc],
            render_op(program, op)
        );
    }
    out
}

/// Disassemble every method of the program.
pub fn disassemble_all(program: &Program) -> String {
    (0..program.methods.len() as MethodId)
        .map(|m| disassemble(program, m))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Render one quickened op. Superinstructions show their mnemonic and the
/// constituent source ops they replace come from the caller (see
/// [`disassemble_quickened`]).
pub fn render_qop(program: &Program, q: QOp) -> String {
    match q {
        QOp::Gen(op) => render_op(program, op),
        QOp::Const(v) => format!("q.const {v}"),
        QOp::Load(i) => format!("q.load l{i}"),
        QOp::Store(i) => format!("q.store l{i}"),
        QOp::Dup => "q.dup".into(),
        QOp::Pop => "q.pop".into(),
        QOp::Swap => "q.swap".into(),
        QOp::Neg => "q.neg".into(),
        QOp::RefEq => "q.refeq".into(),
        QOp::Alu(f) => format!("q.alu {f:?}"),
        QOp::Cmp(f) => format!("q.cmp {f:?}"),
        QOp::Goto { target, backedge } => {
            format!(
                "q.goto @{target}{}",
                if backedge { " [backedge]" } else { "" }
            )
        }
        QOp::If { target, backedge } => {
            format!(
                "q.ifnz @{target}{}",
                if backedge { " [backedge]" } else { "" }
            )
        }
        QOp::IfZ { target, backedge } => {
            format!(
                "q.ifz @{target}{}",
                if backedge { " [backedge]" } else { "" }
            )
        }
        QOp::CallMono {
            class,
            callee,
            nargs,
        } => format!(
            "q.callmono {}.{} ({nargs} args)",
            program.class(class).name,
            program.method(callee).name
        ),
        QOp::ConstStore { v, local } => format!("q.const+store {v} -> l{local}"),
        QOp::LoadLoadAlu { a, b, f } => format!("q.load+load+alu l{a}, l{b}, {f:?}"),
        QOp::LoadConstAlu { a, v, f } => format!("q.load+const+alu l{a}, {v}, {f:?}"),
        QOp::CmpIf {
            f,
            target,
            backedge,
            jump_if,
        } => format!(
            "q.cmp+{} {f:?} @{target}{}",
            if jump_if { "ifnz" } else { "ifz" },
            if backedge { " [backedge]" } else { "" }
        ),
        QOp::LoadConstCmpIf {
            a,
            v,
            f,
            target,
            backedge,
            jump_if,
        } => format!(
            "q.load+const+cmp+{} l{a}, {v}, {f:?} @{target}{}",
            if jump_if { "ifnz" } else { "ifz" },
            if backedge { " [backedge]" } else { "" }
        ),
    }
}

/// Disassemble a method's *quickened* stream. Fusion heads print their pc
/// range and the constituent source ops they replace; interior pcs of a
/// fusion are indented under the head (they remain valid resume points —
/// the interpreter may land on them after a mid-fusion timer split).
pub fn disassemble_quickened(program: &Program, method: MethodId) -> String {
    let m = program.method(method);
    let cm = program.compiled(method);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} (quickened, {} qops)",
        m.qualified_name(program),
        cm.qops.len()
    );
    let mut fused_until = 0usize;
    for (pc, &q) in cm.qops.iter().enumerate() {
        let w = q.width() as usize;
        if w > 1 {
            let last = pc + w - 1;
            let constituents = m.ops[pc..=last]
                .iter()
                .map(|&op| render_op(program, op))
                .collect::<Vec<_>>()
                .join("; ");
            let _ = writeln!(
                out,
                "  {pc:4}..{last:<4}  {:40} <= {constituents}",
                render_qop(program, q)
            );
            fused_until = last;
        } else if pc <= fused_until && pc > 0 {
            // Interior resume point of the fusion above.
            let _ = writeln!(out, "       .{pc:<4}  {}", render_qop(program, q));
        } else {
            let _ = writeln!(out, "  {pc:4}        {}", render_qop(program, q));
        }
    }
    out
}

/// Quickened disassembly of every method.
pub fn disassemble_quickened_all(program: &Program) -> String {
    (0..program.methods.len() as MethodId)
        .map(|m| disassemble_quickened(program, m))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Render one megablock micro-op. Guarded ops state the condition that
/// side-exits to the quickened tier; the `^` marks how far the call
/// inliner descended.
pub fn render_mega_op(program: &Program, op: MegaOp) -> String {
    fn dir(jump_if: bool) -> &'static str {
        if jump_if {
            "ifnz"
        } else {
            "ifz"
        }
    }
    match op {
        MegaOp::Const(v) => format!("m.const {v}"),
        MegaOp::Load(i) => format!("m.load l{i}"),
        MegaOp::Store(i) => format!("m.store l{i}"),
        MegaOp::Dup => "m.dup".into(),
        MegaOp::Pop => "m.pop".into(),
        MegaOp::Swap => "m.swap".into(),
        MegaOp::Neg => "m.neg".into(),
        MegaOp::RefEq => "m.refeq".into(),
        MegaOp::Alu(f) => format!("m.alu {f:?}"),
        MegaOp::Cmp(f) => format!("m.cmp {f:?}"),
        MegaOp::ConstStore { v, local } => format!("m.const+store {v} -> l{local}"),
        MegaOp::LoadLoadAlu { a, b, f } => format!("m.load+load+alu l{a}, l{b}, {f:?}"),
        MegaOp::LoadConstAlu { a, v, f } => format!("m.load+const+alu l{a}, {v}, {f:?}"),
        MegaOp::Jump => "m.jump (forward goto, folded into step order)".into(),
        MegaOp::Div => "m.div                      [guard: divisor != 0]".into(),
        MegaOp::Rem => "m.rem                      [guard: divisor != 0]".into(),
        MegaOp::GuardIf { jump_if } => {
            format!(
                "m.fallthrough.{:18} [guard: branch not taken]",
                dir(jump_if)
            )
        }
        MegaOp::GuardCmpIf { f, jump_if } => format!(
            "m.fallthrough.cmp+{} {f:?} [guard: branch not taken]",
            dir(jump_if)
        ),
        MegaOp::GuardLoadConstCmpIf { a, v, f, jump_if } => format!(
            "m.fallthrough.load+const+cmp+{} l{a}, {v}, {f:?} [guard: branch not taken]",
            dir(jump_if)
        ),
        MegaOp::Call {
            class,
            callee,
            nargs,
        } => format!(
            "m.call.inlined {}.{} ({nargs} args) [guard: receiver is {}]",
            program.class(class).name,
            program.method(callee).name,
            program.class(class).name
        ),
        MegaOp::Ret { has_val } => {
            format!("m.ret{} (inlined return)", if has_val { "val" } else { "" })
        }
        MegaOp::BackGoto => "m.backedge goto -> head".into(),
        MegaOp::BackIf { jump_if } => {
            format!("m.backedge.{:21} [guard: branch taken]", dir(jump_if))
        }
        MegaOp::BackCmpIf { f, jump_if } => format!(
            "m.backedge.cmp+{} {f:?} [guard: branch taken]",
            dir(jump_if)
        ),
        MegaOp::BackLoadConstCmpIf { a, v, f, jump_if } => format!(
            "m.backedge.load+const+cmp+{} l{a}, {v}, {f:?} [guard: branch taken]",
            dir(jump_if)
        ),
    }
}

/// Disassemble the tier-2 megablocks a method's loops *would* compile to.
/// The listing is static (blocks are built from the quickened stream, not
/// from runtime state), so it shows every candidate loop head: compiled
/// ones with their guard list, constituent pc ranges and side-exit table;
/// rejected ones with a `not traceable` note.
pub fn disassemble_mega(program: &Program, method: MethodId) -> String {
    let m = program.method(method);
    let cm = program.compiled(method);
    let heads = crate::compile::loop_heads(cm);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} (tier-2, {} loop head{})",
        m.qualified_name(program),
        heads.len(),
        if heads.len() == 1 { "" } else { "s" }
    );
    for head in heads {
        match crate::compile::compile_loop(program, method, head) {
            None => {
                let _ = writeln!(out, "  loop @{head}: not traceable (stays quickened)");
            }
            Some(b) => {
                let _ = writeln!(
                    out,
                    "  loop @{head}: megablock — {} steps, width {} cycles, {} yield point{}, {} guard{}",
                    b.steps.len(),
                    b.width,
                    b.yields,
                    if b.yields == 1 { "" } else { "s" },
                    b.guards,
                    if b.guards == 1 { "" } else { "s" }
                );
                if let Some(cl) = b.closed {
                    let _ = writeln!(
                        out,
                        "    closed form: l{} += {} while {:?}(l{}, {}) != {}",
                        cl.local, cl.step, cl.f, cl.local, cl.bound, cl.exit_if
                    );
                }
                let mut guard_ix = 0u32;
                let mut exits: Vec<(u32, u32, MethodId)> = Vec::new();
                for s in &b.steps {
                    let caret = "^".repeat(s.depth as usize + 1);
                    let range = if s.width > 1 {
                        format!("{}..{}", s.pc, s.pc + s.width - 1)
                    } else {
                        format!("{}", s.pc)
                    };
                    let gtag = if s.op.is_guard() {
                        exits.push((guard_ix, s.pc, s.method));
                        let t = format!("g{guard_ix} ");
                        guard_ix += 1;
                        t
                    } else {
                        "   ".into()
                    };
                    let _ = writeln!(
                        out,
                        "    {gtag}{caret:>3} {range:>9}  {}",
                        render_mega_op(program, s.op)
                    );
                }
                if exits.is_empty() {
                    let _ = writeln!(out, "    side exits: none");
                } else {
                    let _ = writeln!(out, "    side exits (deopt to quickened, pre-step):");
                    for (g, pc, meth) in exits {
                        let _ = writeln!(
                            out,
                            "      g{g} -> {}@{pc}",
                            program.method(meth).qualified_name(program)
                        );
                    }
                }
            }
        }
    }
    out
}

/// Tier-2 disassembly of every method that has at least one loop head.
pub fn disassemble_mega_all(program: &Program) -> String {
    (0..program.methods.len() as MethodId)
        .filter(|&m| !crate::compile::loop_heads(program.compiled(m)).is_empty())
        .map(|m| disassemble_mega(program, m))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("x", Ty::Int).build();
        let cls = pb.class("Box").field("v", Ty::Ref).build();
        let s = pb.intern("hi");
        let f = pb.func("f", 1, 1).code(|a| {
            a.load(0).ret_val();
        });
        let m = pb.method("main", 0, 2).code(|a| {
            a.line(5).iconst(1).put_static(g, 0);
            a.label("top");
            a.get_static(g, 0).iconst(10).ge().if_nz("done");
            a.new(cls).store(0);
            a.get_static(g, 0).call(f).put_static(g, 0);
            a.print_str(s);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        pb.finish(m).unwrap()
    }

    #[test]
    fn disassembly_resolves_names() {
        let p = sample();
        let text = disassemble(&p, p.entry);
        assert!(text.contains("putstatic G.x"), "{text}");
        assert!(text.contains("new Box"), "{text}");
        assert!(text.contains("call f"), "{text}");
        assert!(text.contains("printstr \"hi\""), "{text}");
        assert!(text.contains("halt"), "{text}");
    }

    #[test]
    fn yield_points_are_marked() {
        let p = sample();
        let text = disassemble(&p, p.entry);
        // the goto back to "top" is a backedge => a line starting with '*'
        assert!(
            text.lines().any(|l| l.trim_start().starts_with('*')),
            "{text}"
        );
    }

    #[test]
    fn source_lines_shown() {
        let p = sample();
        let text = disassemble(&p, p.entry);
        assert!(text.contains("L5"), "{text}");
    }

    #[test]
    fn disassemble_all_covers_builtins() {
        let p = sample();
        let text = disassemble_all(&p);
        assert!(text.contains("sys$flushTrace"));
        assert!(text.contains("VM_Method.getLineNumberAt"));
        assert!(text.contains("sys$lineNumberOf"));
    }

    #[test]
    fn quickened_listing_shows_fusions_with_pc_ranges() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("hot", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(5).ge().if_nz("done");
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let text = disassemble_quickened(&p, m);
        // Superinstruction heads print their pc range and constituents.
        assert!(text.contains("q.const+store"), "{text}");
        assert!(text.contains("q.load+const+cmp+ifnz"), "{text}");
        assert!(text.contains("<="), "constituents shown: {text}");
        assert!(text.contains("2..5"), "pc range shown: {text}");
        // The backedge goto carries its pre-decoded flag.
        assert!(text.contains("[backedge]"), "{text}");
        assert!(text.contains("(quickened,"), "{text}");
    }

    #[test]
    fn mega_listing_shows_guards_and_side_exits() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("hot", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(5).ge().if_nz("done");
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let text = disassemble_mega(&p, m);
        assert!(text.contains("megablock"), "{text}");
        assert!(text.contains("g0"), "guard ordinals shown: {text}");
        assert!(text.contains("side exits"), "{text}");
        assert!(text.contains("m.backedge goto"), "{text}");
        assert!(
            text.contains("[guard: branch not taken]"),
            "exit condition shown: {text}"
        );
        assert!(text.contains("2..5"), "constituent pc ranges shown: {text}");
        // The canonical counting loop also prints its closed form.
        assert!(
            text.contains("closed form: l0 += 1 while Ge(l0, 5) != true"),
            "closed form shown: {text}"
        );
    }

    #[test]
    fn mega_listing_flags_untraceable_loops() {
        let mut pb = ProgramBuilder::new();
        // The loop body allocates — New is not traceable, so the loop
        // head must be listed as rejected.
        let cls = pb.class("Box").field("v", Ty::Int).build();
        let m = pb.method("alloc_loop", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(5).ge().if_nz("done");
            a.new(cls).pop();
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let text = disassemble_mega(&p, m);
        assert!(text.contains("not traceable"), "{text}");
    }

    #[test]
    fn quickened_all_renders_every_method() {
        let p = sample();
        let text = disassemble_quickened_all(&p);
        for m in &p.methods {
            assert!(text.contains(&m.name), "missing {}", m.name);
        }
    }

    #[test]
    fn every_op_renders() {
        // smoke: render_op must not panic for the ops reachable in builtins
        let p = sample();
        for m in &p.methods {
            for &op in &m.ops {
                let s = render_op(&p, op);
                assert!(!s.is_empty());
            }
        }
    }
}
