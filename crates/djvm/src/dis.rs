//! Disassembler: human-readable listings of guest methods, annotated with
//! the baseline compiler's metadata (yield points, reference maps, source
//! lines). Used by the debugger's source/instruction view (paper §4: "a
//! view of the executing method's Java source and machine instructions").

use crate::bytecode::{Op, Ty};
use crate::program::Program;
use crate::MethodId;
use std::fmt::Write;

/// Render one instruction with resolved names.
pub fn render_op(program: &Program, op: Op) -> String {
    match op {
        Op::Const(v) => format!("const {v}"),
        Op::Null => "null".into(),
        Op::Str(s) => format!("str {:?}", program.strings[s as usize]),
        Op::Load(i) => format!("load l{i}"),
        Op::Store(i) => format!("store l{i}"),
        Op::Dup => "dup".into(),
        Op::Pop => "pop".into(),
        Op::Swap => "swap".into(),
        Op::Add => "add".into(),
        Op::Sub => "sub".into(),
        Op::Mul => "mul".into(),
        Op::Div => "div".into(),
        Op::Rem => "rem".into(),
        Op::Neg => "neg".into(),
        Op::BitAnd => "and".into(),
        Op::BitOr => "or".into(),
        Op::BitXor => "xor".into(),
        Op::Shl => "shl".into(),
        Op::Shr => "shr".into(),
        Op::Eq => "cmpeq".into(),
        Op::Ne => "cmpne".into(),
        Op::Lt => "cmplt".into(),
        Op::Le => "cmple".into(),
        Op::Gt => "cmpgt".into(),
        Op::Ge => "cmpge".into(),
        Op::RefEq => "refeq".into(),
        Op::Goto(t) => format!("goto @{t}"),
        Op::If(t) => format!("ifnz @{t}"),
        Op::IfZ(t) => format!("ifz @{t}"),
        Op::New(c) => format!("new {}", program.class(c).name),
        Op::GetField { idx, ty } => format!("getfield #{idx}:{}", ty_str(ty)),
        Op::PutField { idx, ty } => format!("putfield #{idx}:{}", ty_str(ty)),
        Op::GetStatic(c, i) => format!(
            "getstatic {}.{}",
            program.class(c).name,
            program.class(c).statics[i as usize].name
        ),
        Op::PutStatic(c, i) => format!(
            "putstatic {}.{}",
            program.class(c).name,
            program.class(c).statics[i as usize].name
        ),
        Op::NewArray(ty) => format!("newarray {}", ty_str(ty)),
        Op::ALoad(ty) => format!("aload {}", ty_str(ty)),
        Op::AStore(ty) => format!("astore {}", ty_str(ty)),
        Op::ArrayLen => "arraylen".into(),
        Op::IdentityHash => "identityhash".into(),
        Op::InstanceOf(c) => format!("instanceof {}", program.class(c).name),
        Op::Call(m) => format!("call {}", program.method(m).qualified_name(program)),
        Op::CallVirtual { class, slot } => {
            let m = program.class(class).vtable[slot as usize];
            format!(
                "callvirtual {}.{} [slot {slot}]",
                program.class(class).name,
                program.method(m).name
            )
        }
        Op::Ret => "ret".into(),
        Op::RetVal => "retval".into(),
        Op::MonitorEnter => "monitorenter".into(),
        Op::MonitorExit => "monitorexit".into(),
        Op::Wait => "wait".into(),
        Op::TimedWait => "timedwait".into(),
        Op::Notify => "notify".into(),
        Op::NotifyAll => "notifyall".into(),
        Op::Spawn { method, nargs } => format!(
            "spawn {} ({nargs} args)",
            program.method(method).qualified_name(program)
        ),
        Op::Join => "join".into(),
        Op::Interrupt => "interrupt".into(),
        Op::YieldNow => "yield".into(),
        Op::Sleep => "sleep".into(),
        Op::CurrentThread => "currentthread".into(),
        Op::Now => "now".into(),
        Op::NativeCall { native, nargs } => format!(
            "nativecall {} ({nargs} args)",
            program.natives[native as usize].name
        ),
        Op::Print => "print".into(),
        Op::PrintStr(s) => format!("printstr {:?}", program.strings[s as usize]),
        Op::Halt => "halt".into(),
    }
}

fn ty_str(ty: Ty) -> &'static str {
    match ty {
        Ty::Int => "int",
        Ty::Ref => "ref",
    }
}

/// Disassemble a whole method. Yield points (backedges) are marked `*`,
/// and each line shows `pc | source line | instruction`.
pub fn disassemble(program: &Program, method: MethodId) -> String {
    let m = program.method(method);
    let cm = program.compiled(method);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} (args {}, locals {}, max stack {}, frame {} words)",
        m.qualified_name(program),
        m.nargs,
        m.nlocals,
        cm.max_stack,
        cm.frame_words
    );
    for (pc, &op) in m.ops.iter().enumerate() {
        let marker = if cm.backedge[pc] { "*" } else { " " };
        let depth = cm.ref_maps[pc]
            .as_ref()
            .map(|r| r.stack_depth.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "  {marker}{pc:4}  L{:<4} [{depth:>2}]  {}",
            m.lines[pc],
            render_op(program, op)
        );
    }
    out
}

/// Disassemble every method of the program.
pub fn disassemble_all(program: &Program) -> String {
    (0..program.methods.len() as MethodId)
        .map(|m| disassemble(program, m))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.class("G").static_field("x", Ty::Int).build();
        let cls = pb.class("Box").field("v", Ty::Ref).build();
        let s = pb.intern("hi");
        let f = pb.func("f", 1, 1).code(|a| {
            a.load(0).ret_val();
        });
        let m = pb.method("main", 0, 2).code(|a| {
            a.line(5).iconst(1).put_static(g, 0);
            a.label("top");
            a.get_static(g, 0).iconst(10).ge().if_nz("done");
            a.new(cls).store(0);
            a.get_static(g, 0).call(f).put_static(g, 0);
            a.print_str(s);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        pb.finish(m).unwrap()
    }

    #[test]
    fn disassembly_resolves_names() {
        let p = sample();
        let text = disassemble(&p, p.entry);
        assert!(text.contains("putstatic G.x"), "{text}");
        assert!(text.contains("new Box"), "{text}");
        assert!(text.contains("call f"), "{text}");
        assert!(text.contains("printstr \"hi\""), "{text}");
        assert!(text.contains("halt"), "{text}");
    }

    #[test]
    fn yield_points_are_marked() {
        let p = sample();
        let text = disassemble(&p, p.entry);
        // the goto back to "top" is a backedge => a line starting with '*'
        assert!(
            text.lines().any(|l| l.trim_start().starts_with('*')),
            "{text}"
        );
    }

    #[test]
    fn source_lines_shown() {
        let p = sample();
        let text = disassemble(&p, p.entry);
        assert!(text.contains("L5"), "{text}");
    }

    #[test]
    fn disassemble_all_covers_builtins() {
        let p = sample();
        let text = disassemble_all(&p);
        assert!(text.contains("sys$flushTrace"));
        assert!(text.contains("VM_Method.getLineNumberAt"));
        assert!(text.contains("sys$lineNumberOf"));
    }

    #[test]
    fn every_op_renders() {
        // smoke: render_op must not panic for the ops reachable in builtins
        let p = sample();
        for m in &p.methods {
            for &op in &m.ops {
                let s = render_op(&p, op);
                assert!(!s.is_empty());
            }
        }
    }
}
