//! Deterministic pseudo-randomness: SplitMix64.
//!
//! The VM's non-determinism *sources* (timer jitter, clock noise) are
//! modeled with a seeded PRNG so the experiment harness can enumerate
//! distinct "runs of the machine" reproducibly (§2.3). SplitMix64 (Steele,
//! Lea & Flood, OOPSLA 2014) is tiny, fast, passes BigCrush, and — unlike
//! an external `rand` crate — is fully under the platform's control, which
//! is the same discipline the paper applies to its own side effects.

/// A SplitMix64 generator. Equal seeds yield equal streams, forever.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from the inclusive range `lo..=hi`.
    ///
    /// Uses Lemire-style rejection so the draw is unbiased; the loop
    /// terminates quickly (expected < 2 iterations) and deterministically
    /// for a given seed.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // Rejection zone: values >= threshold map uniformly onto 0..n.
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return lo + (r % n);
            }
        }
    }

    /// Uniform draw from the inclusive signed range `lo..=hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as u64).wrapping_sub(lo as u64);
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.gen_range_u64(0, span) as i64)
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the SplitMix64 paper's
        // public-domain reference implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_draws_stay_in_band() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.gen_range_u64(700, 1300);
            assert!((700..=1300).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.gen_range_i64(-50, 50);
            assert!((-50..=50).contains(&v));
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut r = SplitMix64::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..200 {
            match r.gen_range_u64(0, 3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn degenerate_and_full_ranges() {
        let mut r = SplitMix64::new(3);
        assert_eq!(r.gen_range_u64(5, 5), 5);
        assert_eq!(r.gen_range_i64(-9, -9), -9);
        let _ = r.gen_range_u64(0, u64::MAX);
        let _ = r.gen_range_i64(i64::MIN, i64::MAX);
    }
}
