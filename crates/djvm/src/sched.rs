//! The thread package: ready queue, monitors, wait sets, sleepers.
//!
//! This is the data structure the paper's central trick depends on: because
//! DejaVu **replays the entire thread package** (it is just deterministic
//! guest-visible state), synchronization-induced thread switches need no
//! logging — a `monitorenter` succeeds or fails during replay exactly as it
//! did during record, and the FIFO queues hand the processor to the same
//! thread (§2.2). Only *preemptive* switches and *timer-driven* wakeups are
//! non-deterministic, and those are what the DejaVu trace captures.
//!
//! Everything here is strictly deterministic: FIFO queues, `BTreeMap`s
//! (never hash maps, whose iteration order could leak host randomness), and
//! a sleeper list with a total (deadline, tid) order.

use crate::heap::Addr;
use crate::thread::Tid;
use std::collections::{BTreeMap, VecDeque};

/// An entry in a monitor's entry queue: a thread trying to (re)acquire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryWaiter {
    pub tid: Tid,
    /// Recursion count to restore on acquisition (1 for plain
    /// `monitorenter` blockers, the saved count for notified waiters).
    pub recursion: u32,
    /// Status to push on the thread's operand stack when it acquires
    /// (None for plain blockers; Some(0/1/2) for resumed waiters).
    pub push_status: Option<i64>,
}

/// Per-object lock state. Exists only while "interesting" (held, contended,
/// or waited on); pruned eagerly so that every monitor key is a GC root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Monitor {
    pub owner: Option<Tid>,
    pub recursion: u32,
    pub entry_queue: VecDeque<EntryWaiter>,
    pub wait_queue: VecDeque<WaitEntry>,
}

impl Monitor {
    pub fn is_idle(&self) -> bool {
        self.owner.is_none() && self.entry_queue.is_empty() && self.wait_queue.is_empty()
    }
}

/// A thread in a monitor's wait set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEntry {
    pub tid: Tid,
    /// Monitor recursion count held when `wait` was called; restored on
    /// re-acquisition.
    pub recursion: u32,
}

/// A thread with a pending timer: `sleep` or the timeout half of a timed
/// `wait`. Kept sorted by `(wake_at, tid)` for a deterministic wake order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sleeper {
    pub wake_at: i64,
    pub tid: Tid,
    /// For timed waits, the monitor whose wait set the thread also sits in.
    pub monitor: Option<Addr>,
}

/// The scheduler state. All fields are public within the crate: the
/// interpreter drives transitions, the GC relocates addresses, the
/// fingerprint hashes the queues, and the debugger's thread viewer reads
/// them.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    /// Threads ready to run, FIFO. The running thread is *not* in it.
    pub ready: VecDeque<Tid>,
    /// The running thread.
    pub current: Tid,
    /// Lock state per object address.
    pub monitors: BTreeMap<Addr, Monitor>,
    /// Pending timers, sorted by `(wake_at, tid)`.
    pub sleepers: Vec<Sleeper>,
    /// `join` waiters per target thread.
    pub join_waiters: BTreeMap<Tid, Vec<Tid>>,
}

impl Scheduler {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn monitor_mut(&mut self, obj: Addr) -> &mut Monitor {
        self.monitors.entry(obj).or_default()
    }

    /// Drop the monitor entry if it holds no state (keeps the key set equal
    /// to the set of objects that must be GC roots).
    pub fn prune_monitor(&mut self, obj: Addr) {
        if self.monitors.get(&obj).is_some_and(Monitor::is_idle) {
            self.monitors.remove(&obj);
        }
    }

    /// Insert into the sleeper list keeping `(wake_at, tid)` order.
    pub fn add_sleeper(&mut self, s: Sleeper) {
        let pos = self
            .sleepers
            .partition_point(|x| (x.wake_at, x.tid) < (s.wake_at, s.tid));
        self.sleepers.insert(pos, s);
    }

    pub fn remove_sleeper(&mut self, tid: Tid) -> Option<Sleeper> {
        let pos = self.sleepers.iter().position(|s| s.tid == tid)?;
        Some(self.sleepers.remove(pos))
    }

    /// Earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<i64> {
        self.sleepers.first().map(|s| s.wake_at)
    }

    /// Pop every sleeper due at `now` (deterministic order).
    pub fn take_due(&mut self, now: i64) -> Vec<Sleeper> {
        let n = self.sleepers.partition_point(|s| s.wake_at <= now);
        self.sleepers.drain(..n).collect()
    }

    /// Read-only scheduling-pressure snapshot for telemetry gauges:
    /// ready-queue depth, live monitors, threads blocked on monitor entry
    /// or in wait sets, pending sleepers, and join waiters.
    pub fn pressure(&self) -> SchedPressure {
        SchedPressure {
            ready: self.ready.len(),
            monitors: self.monitors.len(),
            entry_blocked: self.monitors.values().map(|m| m.entry_queue.len()).sum(),
            waiting: self.monitors.values().map(|m| m.wait_queue.len()).sum(),
            sleepers: self.sleepers.len(),
            join_waiters: self.join_waiters.values().map(Vec::len).sum(),
        }
    }
}

/// Instantaneous scheduler occupancy, as reported by
/// [`Scheduler::pressure`]. Pure observation — computing it never touches
/// guest state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedPressure {
    pub ready: usize,
    pub monitors: usize,
    pub entry_blocked: usize,
    pub waiting: usize,
    pub sleepers: usize,
    pub join_waiters: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleepers_stay_sorted_and_wake_in_order() {
        let mut s = Scheduler::new();
        s.add_sleeper(Sleeper {
            wake_at: 30,
            tid: 1,
            monitor: None,
        });
        s.add_sleeper(Sleeper {
            wake_at: 10,
            tid: 2,
            monitor: None,
        });
        s.add_sleeper(Sleeper {
            wake_at: 10,
            tid: 0,
            monitor: None,
        });
        assert_eq!(s.next_deadline(), Some(10));
        let due = s.take_due(10);
        assert_eq!(
            due.iter().map(|x| x.tid).collect::<Vec<_>>(),
            vec![0, 2],
            "ties broken by tid"
        );
        assert_eq!(s.sleepers.len(), 1);
    }

    #[test]
    fn remove_sleeper_by_tid() {
        let mut s = Scheduler::new();
        s.add_sleeper(Sleeper {
            wake_at: 5,
            tid: 3,
            monitor: Some(100),
        });
        let rem = s.remove_sleeper(3).unwrap();
        assert_eq!(rem.monitor, Some(100));
        assert!(s.remove_sleeper(3).is_none());
    }

    #[test]
    fn monitor_prune_only_when_idle() {
        let mut s = Scheduler::new();
        s.monitor_mut(50).owner = Some(1);
        s.prune_monitor(50);
        assert!(s.monitors.contains_key(&50), "held monitor survives");
        s.monitor_mut(50).owner = None;
        s.prune_monitor(50);
        assert!(!s.monitors.contains_key(&50), "idle monitor pruned");
    }

    #[test]
    fn take_due_none_due() {
        let mut s = Scheduler::new();
        s.add_sleeper(Sleeper {
            wake_at: 100,
            tid: 1,
            monitor: None,
        });
        assert!(s.take_due(50).is_empty());
        assert_eq!(s.sleepers.len(), 1);
    }
}
