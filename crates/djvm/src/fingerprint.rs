//! Execution fingerprinting: the paper's definition of "identical
//! behaviour", made checkable.
//!
//! §2 of the paper defines two executions as identical when (1) their
//! event sequences are identical and (2) the program states after
//! corresponding events are identical. The fingerprint is a 64-bit rolling
//! hash over exactly those observables: per-instruction `(thread, method,
//! pc)` events (in `Full` mode), scheduling decisions, console output, and
//! — via [`crate::vm::Vm::state_digest`] — the final reachable program
//! state. Replay is *accurate* iff record and replay fingerprints match.
//!
//! Instrumentation-internal execution (DejaVu helper frames) is excluded,
//! mirroring the fact that DejaVu "cannot replay its own instrumentation,
//! which behaves differently by definition" (§2.4).

/// How much of the execution to hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FingerprintMode {
    /// Hash nothing (fastest; benchmarking the raw VM).
    Off,
    /// Hash scheduling decisions and output only.
    #[default]
    Coarse,
    /// Hash every executed instruction's (tid, method, pc). The strongest
    /// accuracy check; used by the test suite.
    Full,
}

/// Rolling execution hash.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    mode: FingerprintMode,
    h: u64,
    /// Number of hashed instruction events.
    pub steps: u64,
    /// Number of hashed thread switches.
    pub switches: u64,
}

#[inline]
fn mix(mut h: u64, v: u64) -> u64 {
    // splitmix64-style avalanche over (h ^ rotated v).
    h ^= v
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(h << 6)
        .wrapping_add(h >> 2);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl Fingerprint {
    pub fn new(mode: FingerprintMode) -> Self {
        Self {
            mode,
            h: 0x5DEC_AF15_0DD5_EED5,
            steps: 0,
            switches: 0,
        }
    }

    pub fn mode(&self) -> FingerprintMode {
        self.mode
    }

    /// One executed instruction (Full mode only).
    #[inline]
    pub fn step(&mut self, tid: u32, method: u32, pc: u32) {
        if self.mode == FingerprintMode::Full {
            self.steps += 1;
            self.h = Self::mix_step(self.h, tid, method, pc);
        }
    }

    /// The per-instruction rolling state, for a cached-cursor dispatch
    /// loop that holds it in locals (the quickened interpreter). Pair
    /// with [`Fingerprint::set_step_state`]; advance the hash with
    /// [`Fingerprint::mix_step`]. Only meaningful in `Full` mode — in
    /// other modes [`Fingerprint::step`] is a no-op and the cached state
    /// must be written back unchanged.
    #[inline]
    pub fn step_state(&self) -> (u64, u64) {
        (self.h, self.steps)
    }

    /// Write back rolling state taken from [`Fingerprint::step_state`].
    #[inline]
    pub fn set_step_state(&mut self, h: u64, steps: u64) {
        self.h = h;
        self.steps = steps;
    }

    /// The pure hash advance of one [`Fingerprint::step`], usable on a
    /// cached `h` without touching `self`.
    #[inline]
    pub fn mix_step(h: u64, tid: u32, method: u32, pc: u32) -> u64 {
        mix(
            h,
            ((tid as u64) << 48) | ((method as u64) << 24) | pc as u64,
        )
    }

    /// A thread switch to `to` after `yp` yield points on the switching
    /// thread.
    #[inline]
    pub fn thread_switch(&mut self, to: u32, yp: u64) {
        if self.mode != FingerprintMode::Off {
            self.switches += 1;
            self.h = mix(self.h, 0xD15B_A7C4 ^ ((to as u64) << 32) ^ yp);
        }
    }

    /// Console output bytes.
    pub fn output(&mut self, bytes: &[u8]) {
        if self.mode != FingerprintMode::Off {
            for chunk in bytes.chunks(8) {
                let mut w = [0u8; 8];
                w[..chunk.len()].copy_from_slice(chunk);
                self.h = mix(self.h, u64::from_le_bytes(w) ^ 0x0007_fa11);
            }
        }
    }

    /// An arbitrary tagged event (used for VM errors, halts, spawns).
    pub fn event(&mut self, tag: u64, a: u64, b: u64) {
        if self.mode != FingerprintMode::Off {
            self.h = mix(mix(self.h, tag), a ^ b.rotate_left(32));
        }
    }

    /// Current digest.
    pub fn digest(&self) -> u64 {
        mix(self.h, self.steps ^ (self.switches << 32))
    }
}

/// Standalone mixer for building auxiliary digests (heap/state hashing).
#[derive(Debug, Clone)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Digest(0xD16E_57A7_E000_0001)
    }
}

impl Digest {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(&mut self, v: u64) -> &mut Self {
        self.0 = mix(self.0, v);
        self
    }

    pub fn value(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_hash_identically() {
        let mut a = Fingerprint::new(FingerprintMode::Full);
        let mut b = Fingerprint::new(FingerprintMode::Full);
        for i in 0..100 {
            a.step(1, 2, i);
            b.step(1, 2, i);
        }
        a.thread_switch(2, 50);
        b.thread_switch(2, 50);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_order_hashes_differently() {
        let mut a = Fingerprint::new(FingerprintMode::Full);
        let mut b = Fingerprint::new(FingerprintMode::Full);
        a.step(1, 2, 3);
        a.step(1, 2, 4);
        b.step(1, 2, 4);
        b.step(1, 2, 3);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn switch_target_matters() {
        let mut a = Fingerprint::new(FingerprintMode::Coarse);
        let mut b = Fingerprint::new(FingerprintMode::Coarse);
        a.thread_switch(1, 10);
        b.thread_switch(2, 10);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn off_mode_ignores_everything() {
        let mut a = Fingerprint::new(FingerprintMode::Off);
        let base = a.digest();
        a.step(1, 2, 3);
        a.thread_switch(4, 5);
        a.output(b"hello");
        assert_eq!(a.digest(), base);
    }

    #[test]
    fn output_bytes_hash() {
        let mut a = Fingerprint::new(FingerprintMode::Coarse);
        let mut b = Fingerprint::new(FingerprintMode::Coarse);
        a.output(b"8\n");
        b.output(b"0\n");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_mixer_order_sensitive() {
        let mut a = Digest::new();
        let mut b = Digest::new();
        a.add(1).add(2);
        b.add(2).add(1);
        assert_ne!(a.value(), b.value());
    }
}
