//! The word-addressed guest heap.
//!
//! Everything the guest can observe lives here: scalar objects, arrays,
//! interned strings, lazily loaded class objects (statics), reflection
//! metadata — and, as in Jalapeño, the threads' **activation stacks**
//! (growable arrays flagged opaque so the GC scans them precisely through
//! frame reference maps rather than as ordinary arrays).
//!
//! Addresses are indices into a flat `Vec<u64>`; address 0 is null. This
//! flat representation is what makes **remote reflection** possible: a tool
//! process can interpret the application VM's state purely by reading words
//! at addresses (the `ptrace` analogue), without the application executing
//! any code.
//!
//! ## Object layout
//!
//! ```text
//! scalar:      [ header ][ field 0 ][ field 1 ] ...
//! array:       [ header ][ length ][ elem 0 ] ...
//! class object:[ header ][ static 0 ] ...          (classobj flag set)
//! ```
//!
//! ## Header encoding (one word)
//!
//! ```text
//! bit 63    forwarded      (copying GC: bits 0..62 hold the new address)
//! bit 62    mark           (mark-sweep GC)
//! bit 61    array
//! bit 60    stack          (activation-stack array: opaque to scanning)
//! bit 59    ref-elements   (array of references)
//! bit 58    class object   (layout = the class's statics)
//! bits 22..57  allocation serial  (identityHashCode; stable under copying
//!              GC but sensitive to allocation order — the perturbation
//!              channel that §2.4's "symmetry in allocation" exists for)
//! bits 0..21   class id
//! ```

use crate::bytecode::ClassId;

/// A raw 64-bit guest word.
pub type Word = u64;
/// A heap address (word index). 0 is null.
pub type Addr = u64;

pub const NULL: Addr = 0;
/// Low words are reserved so that small integers never alias valid objects.
pub const RESERVED: usize = 16;

const FORWARD_BIT: u64 = 1 << 63;
const MARK_BIT: u64 = 1 << 62;
const ARRAY_BIT: u64 = 1 << 61;
const STACK_BIT: u64 = 1 << 60;
const REF_ELEM_BIT: u64 = 1 << 59;
const CLASSOBJ_BIT: u64 = 1 << 58;
const SERIAL_SHIFT: u32 = 22;
const SERIAL_MASK: u64 = (1 << 36) - 1;
const CLASS_MASK: u64 = (1 << 22) - 1;

/// Decoded object header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub class_id: ClassId,
    pub serial: u64,
    pub is_array: bool,
    pub is_stack: bool,
    pub ref_elems: bool,
    pub is_classobj: bool,
    pub marked: bool,
}

impl Header {
    pub fn encode(self) -> Word {
        let mut w =
            (self.class_id as u64 & CLASS_MASK) | ((self.serial & SERIAL_MASK) << SERIAL_SHIFT);
        if self.is_array {
            w |= ARRAY_BIT;
        }
        if self.is_stack {
            w |= STACK_BIT;
        }
        if self.ref_elems {
            w |= REF_ELEM_BIT;
        }
        if self.is_classobj {
            w |= CLASSOBJ_BIT;
        }
        if self.marked {
            w |= MARK_BIT;
        }
        w
    }

    pub fn decode(w: Word) -> Header {
        debug_assert!(w & FORWARD_BIT == 0, "decoding a forwarding pointer");
        Header {
            class_id: (w & CLASS_MASK) as ClassId,
            serial: (w >> SERIAL_SHIFT) & SERIAL_MASK,
            is_array: w & ARRAY_BIT != 0,
            is_stack: w & STACK_BIT != 0,
            ref_elems: w & REF_ELEM_BIT != 0,
            is_classobj: w & CLASSOBJ_BIT != 0,
            marked: w & MARK_BIT != 0,
        }
    }
}

/// Is the raw header word a forwarding pointer (mid-copying-GC state)?
pub fn is_forwarded(w: Word) -> bool {
    w & FORWARD_BIT != 0
}

/// Encode/decode a forwarding pointer.
pub fn forward_word(to: Addr) -> Word {
    FORWARD_BIT | to
}

pub fn forward_target(w: Word) -> Addr {
    w & !FORWARD_BIT
}

/// Which collector manages the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcKind {
    /// Non-moving mark-sweep with an address-ordered first-fit free list.
    #[default]
    MarkSweep,
    /// Semispace copying collector (moves objects; identity hash remains
    /// stable because it is the allocation serial, as in type-accurate
    /// copying collectors).
    Copying,
}

/// Array element kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrKind {
    Int,
    Ref,
    /// Activation stack: raw words, scanned via frame maps only.
    Stack,
}

/// Allocation/GC counters, part of the experiment reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapStats {
    pub allocations: u64,
    pub words_allocated: u64,
    pub collections: u64,
    pub words_copied_or_swept: u64,
    /// High-water mark of live occupancy ([`Heap::words_in_use`]),
    /// sampled at [`Heap::note_peak`] call sites (GC entry and run end —
    /// occupancy only grows between collections, so that is exact).
    pub peak_words_in_use: u64,
}

/// The guest heap.
#[derive(Debug, Clone)]
pub struct Heap {
    pub(crate) mem: Vec<Word>,
    kind: GcKind,
    /// Semispace: size of each half.
    pub(crate) half: usize,
    /// Semispace: base of the active (from-) space.
    pub(crate) active_base: usize,
    /// Semispace: bump pointer.
    pub(crate) bump: usize,
    /// Mark-sweep: address-ordered free blocks (addr, len).
    pub(crate) free: Vec<(usize, usize)>,
    serial: u64,
    pub stats: HeapStats,
}

/// A full copy of heap state, for checkpoint/restore (Igor/Boothe-style
/// time travel).
#[derive(Debug, Clone)]
pub struct HeapSnapshot {
    mem: Vec<Word>,
    half: usize,
    active_base: usize,
    bump: usize,
    free: Vec<(usize, usize)>,
    serial: u64,
    stats: HeapStats,
}

impl Heap {
    /// Create a heap with `words` total words of storage (the copying
    /// collector can only hand out half of it at a time).
    pub fn new(kind: GcKind, words: usize) -> Heap {
        assert!(words > RESERVED * 4, "heap too small");
        let mem = vec![0; words];
        let (half, active_base, bump, free) = match kind {
            GcKind::Copying => {
                let usable = words - RESERVED;
                let half = usable / 2;
                (half, RESERVED, RESERVED, Vec::new())
            }
            GcKind::MarkSweep => (0, 0, 0, vec![(RESERVED, words - RESERVED)]),
        };
        Heap {
            mem,
            kind,
            half,
            active_base,
            bump,
            free,
            serial: 0,
            stats: HeapStats::default(),
        }
    }

    pub fn kind(&self) -> GcKind {
        self.kind
    }

    pub fn total_words(&self) -> usize {
        self.mem.len()
    }

    /// Words still allocatable without a collection.
    pub fn free_words(&self) -> usize {
        match self.kind {
            GcKind::Copying => self.active_base + self.half - self.bump,
            GcKind::MarkSweep => self.free.iter().map(|&(_, l)| l).sum(),
        }
    }

    /// Words currently occupied by objects (the allocatable region minus
    /// what is still free; excludes the reserve and, for the copying
    /// collector, the idle semispace).
    pub fn words_in_use(&self) -> usize {
        match self.kind {
            GcKind::Copying => self.bump - self.active_base,
            GcKind::MarkSweep => self.mem.len() - RESERVED - self.free_words(),
        }
    }

    /// Fold the current occupancy into the peak statistic. Called at GC
    /// entry and at end-of-run; occupancy is monotone between
    /// collections, so those samples capture the true high-water mark.
    pub fn note_peak(&mut self) {
        let used = self.words_in_use() as u64;
        if used > self.stats.peak_words_in_use {
            self.stats.peak_words_in_use = used;
        }
    }

    fn next_serial(&mut self) -> u64 {
        self.serial += 1;
        self.serial
    }

    /// Raw block allocation; `None` means a GC (or OOM) is needed.
    fn alloc_block(&mut self, words: usize) -> Option<Addr> {
        debug_assert!(words >= 1);
        match self.kind {
            GcKind::Copying => {
                if self.bump + words <= self.active_base + self.half {
                    let a = self.bump;
                    self.bump += words;
                    Some(a as Addr)
                } else {
                    None
                }
            }
            GcKind::MarkSweep => {
                // Address-ordered first fit keeps allocation deterministic.
                for i in 0..self.free.len() {
                    let (addr, len) = self.free[i];
                    if len >= words {
                        if len == words {
                            self.free.remove(i);
                        } else {
                            self.free[i] = (addr + words, len - words);
                        }
                        return Some(addr as Addr);
                    }
                }
                None
            }
        }
    }

    /// Allocate a zeroed scalar object. Returns `None` if a GC is needed.
    pub fn alloc_scalar(&mut self, class_id: ClassId, nfields: usize) -> Option<Addr> {
        let words = 1 + nfields;
        let addr = self.alloc_block(words)?;
        let serial = self.next_serial();
        let h = Header {
            class_id,
            serial,
            is_array: false,
            is_stack: false,
            ref_elems: false,
            is_classobj: false,
            marked: false,
        };
        self.write_block(addr, words, h);
        Some(addr)
    }

    /// Allocate a class object (statics holder) for `class_id`.
    pub fn alloc_classobj(&mut self, class_id: ClassId, nstatics: usize) -> Option<Addr> {
        let words = 1 + nstatics;
        let addr = self.alloc_block(words)?;
        let serial = self.next_serial();
        let h = Header {
            class_id,
            serial,
            is_array: false,
            is_stack: false,
            ref_elems: false,
            is_classobj: true,
            marked: false,
        };
        self.write_block(addr, words, h);
        Some(addr)
    }

    /// Allocate a zeroed array. Returns `None` if a GC is needed.
    pub fn alloc_array(&mut self, kind: ArrKind, len: usize) -> Option<Addr> {
        let words = 2 + len;
        let addr = self.alloc_block(words)?;
        let serial = self.next_serial();
        let h = Header {
            class_id: 0,
            serial,
            is_array: true,
            is_stack: kind == ArrKind::Stack,
            ref_elems: kind == ArrKind::Ref,
            is_classobj: false,
            marked: false,
        };
        self.write_block(addr, words, h);
        self.mem[addr as usize + 1] = len as Word;
        Some(addr)
    }

    fn write_block(&mut self, addr: Addr, words: usize, h: Header) {
        let a = addr as usize;
        self.mem[a] = h.encode();
        for w in &mut self.mem[a + 1..a + words] {
            *w = 0;
        }
        self.stats.allocations += 1;
        self.stats.words_allocated += words as u64;
    }

    // ---- accessors ----

    pub fn header(&self, addr: Addr) -> Header {
        Header::decode(self.mem[addr as usize])
    }

    pub fn raw_header(&self, addr: Addr) -> Word {
        self.mem[addr as usize]
    }

    pub fn set_raw_header(&mut self, addr: Addr, w: Word) {
        self.mem[addr as usize] = w;
    }

    pub fn array_len(&self, addr: Addr) -> usize {
        self.mem[addr as usize + 1] as usize
    }

    pub fn get_elem(&self, addr: Addr, i: usize) -> Word {
        self.mem[addr as usize + 2 + i]
    }

    pub fn set_elem(&mut self, addr: Addr, i: usize, v: Word) {
        self.mem[addr as usize + 2 + i] = v;
    }

    pub fn get_field(&self, addr: Addr, i: usize) -> Word {
        self.mem[addr as usize + 1 + i]
    }

    pub fn set_field(&mut self, addr: Addr, i: usize, v: Word) {
        self.mem[addr as usize + 1 + i] = v;
    }

    /// Read an arbitrary word (the remote-reflection primitive).
    pub fn read_word(&self, addr: Addr) -> Option<Word> {
        self.mem.get(addr as usize).copied()
    }

    /// Total size in words of the object at `addr`, given per-class layouts.
    pub fn object_words(
        &self,
        addr: Addr,
        field_layouts: &[Vec<crate::bytecode::Ty>],
        static_layouts: &[Vec<crate::bytecode::Ty>],
    ) -> usize {
        let h = self.header(addr);
        if h.is_array {
            2 + self.array_len(addr)
        } else if h.is_classobj {
            1 + static_layouts[h.class_id as usize].len()
        } else {
            1 + field_layouts[h.class_id as usize].len()
        }
    }

    /// Is `addr` plausibly an object start? (bounds only; used in debug
    /// assertions and by the remote-memory server for sanity checks.)
    pub fn in_bounds(&self, addr: Addr) -> bool {
        (RESERVED..self.mem.len()).contains(&(addr as usize))
    }

    /// Copy of the raw word image (snapshot-based remote reflection).
    pub fn mem_snapshot(&self) -> Vec<Word> {
        self.mem.clone()
    }

    /// Capture the complete heap state.
    pub fn snapshot(&self) -> HeapSnapshot {
        HeapSnapshot {
            mem: self.mem.clone(),
            half: self.half,
            active_base: self.active_base,
            bump: self.bump,
            free: self.free.clone(),
            serial: self.serial,
            stats: self.stats,
        }
    }

    /// Restore a previously captured heap state (collector kind must not
    /// have changed).
    pub fn restore(&mut self, s: &HeapSnapshot) {
        self.mem.clone_from(&s.mem);
        self.half = s.half;
        self.active_base = s.active_base;
        self.bump = s.bump;
        self.free.clone_from(&s.free);
        self.serial = s.serial;
        self.stats = s.stats;
    }

    /// Snapshot payload size in bytes (checkpoint-cost experiments).
    pub fn snapshot_bytes(&self) -> usize {
        self.mem.len() * 8 + self.free.len() * 16 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            class_id: 123,
            serial: 99_999,
            is_array: true,
            is_stack: false,
            ref_elems: true,
            is_classobj: false,
            marked: true,
        };
        assert_eq!(Header::decode(h.encode()), h);
    }

    #[test]
    fn forwarding_pointer_roundtrip() {
        let w = forward_word(0xABCD);
        assert!(is_forwarded(w));
        assert_eq!(forward_target(w), 0xABCD);
        assert!(!is_forwarded(Header::decode(0).encode()));
    }

    #[test]
    fn scalar_alloc_and_fields() {
        let mut h = Heap::new(GcKind::MarkSweep, 1024);
        let a = h.alloc_scalar(5, 3).unwrap();
        assert!(a as usize >= RESERVED);
        let hd = h.header(a);
        assert_eq!(hd.class_id, 5);
        assert!(!hd.is_array);
        h.set_field(a, 1, 42);
        assert_eq!(h.get_field(a, 1), 42);
        assert_eq!(h.get_field(a, 0), 0); // zeroed
    }

    #[test]
    fn array_alloc_and_elems() {
        let mut h = Heap::new(GcKind::MarkSweep, 1024);
        let a = h.alloc_array(ArrKind::Int, 10).unwrap();
        assert_eq!(h.array_len(a), 10);
        h.set_elem(a, 9, 7);
        assert_eq!(h.get_elem(a, 9), 7);
        let r = h.alloc_array(ArrKind::Ref, 4).unwrap();
        assert!(h.header(r).ref_elems);
        let s = h.alloc_array(ArrKind::Stack, 4).unwrap();
        assert!(h.header(s).is_stack);
    }

    #[test]
    fn serials_are_sequential_identity_hashes() {
        let mut h = Heap::new(GcKind::MarkSweep, 1024);
        let a = h.alloc_scalar(0, 1).unwrap();
        let b = h.alloc_scalar(0, 1).unwrap();
        assert_eq!(h.header(a).serial + 1, h.header(b).serial);
    }

    #[test]
    fn marksweep_exhaustion_returns_none() {
        let mut h = Heap::new(GcKind::MarkSweep, 128);
        let mut n = 0;
        while h.alloc_scalar(0, 9).is_some() {
            n += 1;
        }
        assert!(n > 0);
        assert!(h.free_words() < 10);
    }

    #[test]
    fn copying_uses_only_half() {
        let h = Heap::new(GcKind::Copying, 1000);
        assert!(h.free_words() <= 500);
        let mut h2 = Heap::new(GcKind::Copying, 1000);
        let free_before = h2.free_words();
        h2.alloc_scalar(0, 9).unwrap();
        assert_eq!(h2.free_words(), free_before - 10);
    }

    #[test]
    fn first_fit_reuses_address_order() {
        let mut h = Heap::new(GcKind::MarkSweep, 1024);
        let a = h.alloc_scalar(0, 3).unwrap();
        let _b = h.alloc_scalar(0, 3).unwrap();
        // Simulate a sweep freeing `a`: push its block back.
        h.free.insert(0, (a as usize, 4));
        let c = h.alloc_scalar(0, 3).unwrap();
        assert_eq!(c, a, "first-fit must reuse the earliest free block");
    }

    #[test]
    fn class_object_flag() {
        let mut h = Heap::new(GcKind::MarkSweep, 1024);
        let a = h.alloc_classobj(7, 2).unwrap();
        let hd = h.header(a);
        assert!(hd.is_classobj);
        assert_eq!(hd.class_id, 7);
    }
}
