//! Wall clock and preemption timer — the VM's non-determinism sources.
//!
//! The paper's Jalapeño preempts a thread at the first yield point after a
//! periodic *wall-clock* timer interrupt; because the number of
//! instructions executed per wall-clock interval varies with caching,
//! paging, and machine load, the preemption points are non-deterministic
//! (§2.3). We model this with a [`TimerSource`] that yields a *jittered*
//! number of interpreted cycles between interrupts, and a [`WallClock`]
//! whose readings carry jittered skew. Both are seeded so the experiment
//! harness can enumerate distinct "runs of the machine" reproducibly,
//! while each individual run is non-deterministic from the guest's
//! perspective — exactly the property DejaVu must tame.

use crate::rng::SplitMix64;

/// Produces the interval (in interpreted cycles) until the next preemption
/// timer interrupt.
pub trait TimerSource: Send {
    fn next_interval(&mut self) -> u64;

    /// Stable short name for telemetry metadata ("which timer drove this
    /// run"); never consulted by execution.
    fn describe(&self) -> &'static str {
        "timer"
    }
}

/// Produces wall-clock readings (milliseconds) as a function of executed
/// cycles. Must be monotonically non-decreasing.
pub trait WallClock: Send {
    fn now(&mut self, cycles: u64) -> i64;
    /// Warp forward so the next reading is at least `target` — the idle
    /// "sleep skip" used when every thread is sleeping.
    fn warp_to(&mut self, target: i64);

    /// Stable short name for telemetry metadata; never consulted by
    /// execution.
    fn describe(&self) -> &'static str {
        "clock"
    }
}

/// Fixed-period timer: fully deterministic preemption (useful as a control
/// in experiments and for differential tests).
#[derive(Debug, Clone)]
pub struct FixedTimer {
    pub period: u64,
}

impl FixedTimer {
    pub fn new(period: u64) -> Self {
        assert!(period > 0);
        Self { period }
    }
}

impl TimerSource for FixedTimer {
    fn next_interval(&mut self) -> u64 {
        self.period
    }

    fn describe(&self) -> &'static str {
        "fixed_timer"
    }
}

/// Jittered timer: interval is `base ± jitter`, drawn from a seeded RNG.
/// Different seeds model different physical executions of the same program.
pub struct JitteredTimer {
    rng: SplitMix64,
    base: u64,
    jitter: u64,
}

impl JitteredTimer {
    pub fn new(seed: u64, base: u64, jitter: u64) -> Self {
        assert!(base > jitter, "base interval must exceed jitter");
        Self {
            rng: SplitMix64::new(seed ^ 0x7161_7565_7565_6421),
            base,
            jitter,
        }
    }
}

impl TimerSource for JitteredTimer {
    fn next_interval(&mut self) -> u64 {
        if self.jitter == 0 {
            return self.base;
        }
        let lo = self.base - self.jitter;
        let hi = self.base + self.jitter;
        self.rng.gen_range_u64(lo, hi)
    }

    fn describe(&self) -> &'static str {
        "jittered_timer"
    }
}

/// Deterministic wall clock: a pure function of the cycle count.
#[derive(Debug, Clone)]
pub struct CycleClock {
    pub origin: i64,
    pub cycles_per_ms: u64,
    /// Minimum value the next reading must reach (set by `warp_to`).
    floor: i64,
    last: i64,
}

impl CycleClock {
    pub fn new(origin: i64, cycles_per_ms: u64) -> Self {
        assert!(cycles_per_ms > 0);
        Self {
            origin,
            cycles_per_ms,
            floor: i64::MIN,
            last: i64::MIN,
        }
    }
}

impl WallClock for CycleClock {
    fn now(&mut self, cycles: u64) -> i64 {
        let t = self.origin + (cycles / self.cycles_per_ms) as i64;
        self.last = self.last.max(t).max(self.floor);
        self.last
    }

    fn warp_to(&mut self, target: i64) {
        // Guarantee the *next* reading reaches `target` (idle sleep-skip).
        self.floor = self.floor.max(target);
    }

    fn describe(&self) -> &'static str {
        "cycle_clock"
    }
}

/// Jittered wall clock: cycle-proportional time plus seeded noise — the
/// `Date()` of Figure 1 (C)/(D), whose value steers branches and hence
/// thread switches.
pub struct JitteredClock {
    rng: SplitMix64,
    origin: i64,
    cycles_per_ms: u64,
    max_noise: i64,
    floor: i64,
    last: i64,
}

impl JitteredClock {
    pub fn new(seed: u64, origin: i64, cycles_per_ms: u64, max_noise: i64) -> Self {
        assert!(cycles_per_ms > 0);
        Self {
            rng: SplitMix64::new(seed ^ 0x636c_6f63_6b21),
            origin,
            cycles_per_ms,
            max_noise,
            floor: i64::MIN,
            last: i64::MIN,
        }
    }
}

impl WallClock for JitteredClock {
    fn now(&mut self, cycles: u64) -> i64 {
        let noise = if self.max_noise > 0 {
            self.rng.gen_range_i64(0, self.max_noise)
        } else {
            0
        };
        let t = self.origin + (cycles / self.cycles_per_ms) as i64 + noise;
        self.last = self.last.max(t).max(self.floor);
        self.last
    }

    fn warp_to(&mut self, target: i64) {
        // Guarantee the *next* reading reaches `target` (idle sleep-skip).
        self.floor = self.floor.max(target);
    }

    fn describe(&self) -> &'static str {
        "jittered_clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_timer_is_constant() {
        let mut t = FixedTimer::new(100);
        assert_eq!(t.next_interval(), 100);
        assert_eq!(t.next_interval(), 100);
    }

    #[test]
    fn jittered_timer_stays_in_band_and_varies() {
        let mut t = JitteredTimer::new(7, 1000, 300);
        let xs: Vec<u64> = (0..100).map(|_| t.next_interval()).collect();
        assert!(xs.iter().all(|&x| (700..=1300).contains(&x)));
        assert!(xs.windows(2).any(|w| w[0] != w[1]), "should vary");
    }

    #[test]
    fn jittered_timer_is_seed_deterministic() {
        let mut a = JitteredTimer::new(42, 1000, 300);
        let mut b = JitteredTimer::new(42, 1000, 300);
        for _ in 0..50 {
            assert_eq!(a.next_interval(), b.next_interval());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = JitteredTimer::new(1, 1000, 300);
        let mut b = JitteredTimer::new(2, 1000, 300);
        let va: Vec<u64> = (0..20).map(|_| a.next_interval()).collect();
        let vb: Vec<u64> = (0..20).map(|_| b.next_interval()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn cycle_clock_is_monotone_and_warps() {
        let mut c = CycleClock::new(1000, 10);
        let t0 = c.now(0);
        let t1 = c.now(100);
        assert!(t1 >= t0);
        assert_eq!(t1, 1010);
        c.warp_to(5000);
        assert!(c.now(100) >= 5000);
        // still monotone after warp
        assert!(c.now(110) >= 5000);
    }

    #[test]
    fn jittered_clock_is_monotone() {
        let mut c = JitteredClock::new(3, 0, 10, 50);
        let mut last = i64::MIN;
        for i in 0..200 {
            let t = c.now(i * 3);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn jittered_clock_warp_wakes_sleepers() {
        let mut c = JitteredClock::new(3, 0, 10, 5);
        let _ = c.now(0);
        c.warp_to(10_000);
        assert!(c.now(1) >= 10_000);
    }
}
