//! The bytecode instruction set of the djvm guest machine.
//!
//! The guest ISA is a stack machine over 64-bit words, modeled after the
//! subset of JVM bytecode that the paper's examples exercise: integer
//! arithmetic, object/array access, virtual dispatch, monitors,
//! `wait`/`notify`/`sleep`, thread spawn/join, wall-clock reads, and a
//! JNI-like native-call escape hatch.
//!
//! Control-flow targets are absolute instruction indices within a method.
//! A branch whose target is not greater than its own pc is a *backedge*;
//! together with method prologues, backedges are the VM's **yield points**
//! (the only program points at which a preemptive thread switch may occur —
//! exactly Jalapeño's discipline, which DejaVu's `nyp` counter relies on).

/// Index of a class within a [`crate::program::Program`].
pub type ClassId = u32;
/// Index of a method within a [`crate::program::Program`].
pub type MethodId = u32;
/// Index into the program's interned-string pool.
pub type StrId = u32;
/// Identifier of a registered native (JNI-like) function.
pub type NativeId = u32;

/// Static type of a slot: either a raw integer word or a heap reference.
///
/// The baseline compiler's dataflow pass infers one of these for every
/// local and operand-stack slot at every pc; the resulting *reference maps*
/// are what make the garbage collector type-accurate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit signed integer (also used for booleans and millisecond counts).
    Int,
    /// Heap reference (word address; 0 is null).
    Ref,
}

/// A single guest instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    // ---- constants, locals, operand-stack shuffling ----
    /// Push an integer constant.
    Const(i64),
    /// Push the null reference.
    Null,
    /// Push a reference to the interned string object for `StrId`.
    Str(StrId),
    /// Push local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Pop and discard the top of stack.
    Pop,
    /// Swap the top two stack slots.
    Swap,

    // ---- integer arithmetic / logic (operate on the top of stack) ----
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero terminates the thread with a
    /// deterministic runtime error.
    Div,
    Rem,
    Neg,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,

    // ---- comparisons (pop two ints, push 0 or 1) ----
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Pop two refs, push 1 if they are the same object.
    RefEq,

    // ---- control flow ----
    /// Unconditional jump to absolute pc.
    Goto(u32),
    /// Pop an int; jump if non-zero.
    If(u32),
    /// Pop an int; jump if zero.
    IfZ(u32),

    // ---- objects and arrays ----
    /// Allocate a scalar instance of the class; push its reference.
    /// May trigger garbage collection and lazy class loading.
    New(ClassId),
    /// Pop a receiver ref, push the value of instance field `idx`. `ty` is
    /// the declared field type (like a JVM field descriptor); it types the
    /// verifier's dataflow and is checked against the receiver's actual
    /// layout at run time.
    GetField {
        idx: u16,
        ty: Ty,
    },
    /// Pop a value then a receiver ref; store into instance field `idx`.
    PutField {
        idx: u16,
        ty: Ty,
    },
    /// Push the value of static field `n` of the class (loads the class
    /// lazily on first touch, which allocates its class object).
    GetStatic(ClassId, u16),
    /// Pop a value into static field `n` of the class.
    PutStatic(ClassId, u16),
    /// Pop a length; allocate an array with elements of type `Ty`
    /// (zero/null initialized); push its reference.
    NewArray(Ty),
    /// Pop index then array ref; push element. `Ty` must match the array's
    /// element kind (checked at run time).
    ALoad(Ty),
    /// Pop value, index, array ref; store element.
    AStore(Ty),
    /// Pop an array ref; push its length.
    ArrayLen,
    /// Pop a ref; push its identity hash code (the object's allocation
    /// serial number — stable under copying GC but sensitive to allocation
    /// order, the key perturbation channel of §2.4 of the paper).
    IdentityHash,
    /// Pop a ref; push 1 if it is an instance of the class (or a subclass).
    InstanceOf(ClassId),

    // ---- calls ----
    /// Call a static/direct method. Arguments are popped (rightmost on top).
    Call(MethodId),
    /// Virtual dispatch: `class` is the *static* receiver type (like the
    /// symbolic method reference of JVM `invokevirtual`) and `slot` its
    /// vtable slot; the callee is resolved through the *dynamic* receiver's
    /// vtable at run time. The receiver sits deepest among the arguments.
    CallVirtual {
        class: ClassId,
        slot: u16,
    },
    /// Return with no value.
    Ret,
    /// Pop a value and return it to the caller.
    RetVal,

    // ---- synchronization (the deterministic-switch operations of §2.2) ----
    /// Pop an object ref; acquire its monitor (recursive). Blocks — and
    /// deterministically switches threads — if the monitor is held.
    MonitorEnter,
    /// Pop an object ref; release its monitor.
    MonitorExit,
    /// Pop an object ref; wait on its monitor (releasing it). Pushes a
    /// status on resume: 0 = notified, 1 = interrupted.
    Wait,
    /// Pop millis then object ref; timed wait. Status: 0 = notified,
    /// 1 = interrupted, 2 = timed out.
    TimedWait,
    /// Pop an object ref; wake one waiter (FIFO), if any.
    Notify,
    /// Pop an object ref; wake all waiters.
    NotifyAll,

    // ---- threading ----
    /// Pop `nargs` arguments; spawn a new thread running the method; push
    /// a reference to the new Thread object.
    Spawn {
        method: MethodId,
        nargs: u8,
    },
    /// Pop a Thread object ref; block until that thread terminates.
    Join,
    /// Pop a Thread object ref; interrupt that thread.
    Interrupt,
    /// Voluntarily yield the processor (moves to the back of the ready
    /// queue). Deterministic.
    YieldNow,
    /// Pop millis; sleep. Status pushed on wake: 0 = slept, 1 = interrupted.
    /// Timer expiry is driven by recorded wall-clock reads (§2.2).
    Sleep,
    /// Push a reference to the current thread's Thread object.
    CurrentThread,

    // ---- environment (the non-deterministic operations of §2.1) ----
    /// Push the current wall-clock value in milliseconds. Non-deterministic;
    /// recorded during record mode and reproduced during replay.
    Now,
    /// Call a registered native function with `nargs` popped arguments and
    /// push its result. Return values (and any callback invocations the
    /// native requests) are captured during record and regenerated during
    /// replay (§2.5).
    NativeCall {
        native: NativeId,
        nargs: u8,
    },

    // ---- output ----
    /// Pop an int and append its decimal form plus newline to VM output.
    Print,
    /// Append the interned string (no newline) to VM output.
    PrintStr(StrId),

    /// Terminate the entire VM (all threads).
    Halt,
}

impl Op {
    /// True if this instruction can directly block the current thread,
    /// producing a *deterministic* thread switch (paper §2.2).
    pub fn can_block(self) -> bool {
        matches!(
            self,
            Op::MonitorEnter | Op::Wait | Op::TimedWait | Op::Join | Op::Sleep
        )
    }

    /// The branch target, if this is a branch.
    pub fn branch_target(self) -> Option<u32> {
        match self {
            Op::Goto(t) | Op::If(t) | Op::IfZ(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_targets() {
        assert_eq!(Op::Goto(3).branch_target(), Some(3));
        assert_eq!(Op::If(7).branch_target(), Some(7));
        assert_eq!(Op::IfZ(0).branch_target(), Some(0));
        assert_eq!(Op::Add.branch_target(), None);
    }

    #[test]
    fn blocking_ops() {
        assert!(Op::MonitorEnter.can_block());
        assert!(Op::Wait.can_block());
        assert!(Op::TimedWait.can_block());
        assert!(Op::Join.can_block());
        assert!(Op::Sleep.can_block());
        assert!(!Op::Notify.can_block());
        assert!(!Op::MonitorExit.can_block());
        assert!(!Op::YieldNow.can_block());
    }

    #[test]
    fn op_is_small() {
        // The interpreter copies ops by value in its hot loop.
        assert!(std::mem::size_of::<Op>() <= 16);
    }
}
