//! Static program model: classes, methods, vtables, string pool.
//!
//! A [`Program`] is the immutable "class file" input to the VM. The
//! baseline compiler ([`crate::compile`]) verifies each method and attaches
//! a [`CompiledMethod`] carrying frame sizes, backedge (yield-point)
//! metadata and per-pc reference maps.

use crate::bytecode::{ClassId, MethodId, NativeId, Op, Ty};
use crate::compile::CompiledMethod;
use std::collections::HashMap;

/// A guest class: a named record type with single inheritance and a vtable.
#[derive(Debug, Clone)]
pub struct Class {
    /// Class name (used by reflection and the debugger).
    pub name: String,
    /// Superclass, if any. Fields of the superclass are inherited and
    /// occupy the lowest field indices.
    pub super_class: Option<ClassId>,
    /// Declared instance fields (this class only; see [`Class::nfields`]
    /// via [`Program::total_fields`] for the full object size).
    pub fields: Vec<FieldDecl>,
    /// Declared static fields, stored in the lazily allocated class object.
    pub statics: Vec<FieldDecl>,
    /// Virtual method table: slot -> implementing method. Built by the
    /// program builder; subclasses start from a copy of the parent's table.
    pub vtable: Vec<MethodId>,
    /// Name -> vtable slot, for the builder and for reflection.
    pub vslots: HashMap<String, u16>,
}

/// An instance or static field declaration.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    pub name: String,
    pub ty: Ty,
}

/// A guest method.
#[derive(Debug, Clone)]
pub struct Method {
    /// Method name, qualified for display as `Class.name` when owned.
    pub name: String,
    /// Owning class for virtual methods; `None` for static/free methods.
    pub owner: Option<ClassId>,
    /// Number of arguments (including the receiver for virtual methods).
    /// Arguments arrive in locals `0..nargs`.
    pub nargs: u16,
    /// Total local slots (>= nargs).
    pub nlocals: u16,
    /// Declared types of the argument slots (length == nargs); needed by
    /// the verifier to seed its dataflow.
    pub arg_types: Vec<Ty>,
    /// Whether the method returns a value, and its type.
    pub ret: Option<Ty>,
    /// Instruction stream.
    pub ops: Vec<Op>,
    /// Source line number for each pc (parallel to `ops`); consumed by the
    /// remote-reflection line-number example (paper Fig. 3) and debugger.
    pub lines: Vec<u32>,
    /// Output of the baseline compiler; populated by [`crate::compile`].
    /// Not part of the serialized form (the codec skips it; a decoded
    /// program must be re-compiled).
    pub compiled: Option<CompiledMethod>,
}

impl Method {
    /// Fully qualified display name.
    pub fn qualified_name(&self, program: &Program) -> String {
        match self.owner {
            Some(c) => format!("{}.{}", program.classes[c as usize].name, self.name),
            None => self.name.clone(),
        }
    }
}

/// Declared signature of a native (JNI-like) function: how many arguments
/// it pops and whether it pushes a result.
#[derive(Debug, Clone)]
pub struct NativeDecl {
    pub name: String,
    pub nargs: u8,
    pub returns: bool,
}

/// Ids of the classes and methods the VM itself relies on. These are
/// injected by the baseline compiler if the program does not define them —
/// the analogue of Jalapeño's boot-image classes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Builtins {
    /// `Thread { tid: Int }` — the object returned by `Spawn`.
    pub thread_class: ClassId,
    /// `String { chars: Ref }` — interned string objects.
    pub string_class: ClassId,
    /// `VM_Method { methodId: Int, name: Ref, lineTable: Ref }` — the
    /// reflection metadata objects of the paper's Figure 3.
    pub vm_method_class: ClassId,
    /// Interpreted instrumentation helper executed by the record-mode hook
    /// (its yield points must be excluded by the logical clock, §2.4).
    pub flush_method: MethodId,
    /// Interpreted instrumentation helper executed by the replay-mode hook.
    pub fill_method: MethodId,
    /// Virtual `VM_Method.getLineNumberAt(offset)` (paper Fig. 3).
    pub get_line_number_at: MethodId,
    /// `VM_Dictionary.getMethods()` analogue — a *mapped* method: the tool
    /// JVM intercepts its invocation and returns a remote object for the
    /// boot image's method table; the application JVM never runs it
    /// (its body is a stub).
    pub get_methods: MethodId,
    /// `Debugger.lineNumberOf(methodNumber, offset)` — the reflective query
    /// of the paper's Figure 3, verbatim in structure.
    pub line_number_of: MethodId,
}

/// An immutable, verified guest program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub classes: Vec<Class>,
    pub methods: Vec<Method>,
    /// Interned strings; materialized as String objects in the boot image.
    pub strings: Vec<String>,
    /// Declared natives (implementations are registered on the VM).
    pub natives: Vec<NativeDecl>,
    /// Entry method (thread 0's bottom frame).
    pub entry: MethodId,
    /// VM-internal classes/methods (populated by the compiler).
    pub builtins: Builtins,
    /// Per-class flattened instance-field types (inherited first), the
    /// runtime object layout. Populated by the compiler.
    pub field_layouts: Vec<Vec<Ty>>,
    /// Per-class static-field types: the layout of each class object.
    pub static_layouts: Vec<Vec<Ty>>,
}

impl Program {
    /// Total instance-field count of a class including inherited fields.
    /// Field index `i` in bytecode refers to this flattened layout.
    pub fn total_fields(&self, class: ClassId) -> u16 {
        let c = &self.classes[class as usize];
        let inherited = c.super_class.map_or(0, |s| self.total_fields(s));
        inherited + c.fields.len() as u16
    }

    /// Flattened field declarations (inherited first), matching the object
    /// layout in the heap.
    pub fn flattened_fields(&self, class: ClassId) -> Vec<FieldDecl> {
        let c = &self.classes[class as usize];
        let mut out = c
            .super_class
            .map_or_else(Vec::new, |s| self.flattened_fields(s));
        out.extend(c.fields.iter().cloned());
        out
    }

    /// True if `class` is `ancestor` or a subclass of it.
    pub fn is_subclass(&self, class: ClassId, ancestor: ClassId) -> bool {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.classes[c as usize].super_class;
        }
        false
    }

    pub fn class_id_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| i as ClassId)
    }

    pub fn method_id_by_name(&self, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| i as MethodId)
    }

    pub fn native_id_by_name(&self, name: &str) -> Option<NativeId> {
        self.natives
            .iter()
            .position(|n| n.name == name)
            .map(|i| i as NativeId)
    }

    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id as usize]
    }

    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id as usize]
    }

    /// The compiled form of a method; panics if the program has not been
    /// passed through [`crate::compile::compile_program`].
    pub fn compiled(&self, id: MethodId) -> &CompiledMethod {
        self.methods[id as usize]
            .compiled
            .as_ref()
            .expect("program not compiled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> Program {
        let base = Class {
            name: "Base".into(),
            super_class: None,
            fields: vec![FieldDecl {
                name: "a".into(),
                ty: Ty::Int,
            }],
            statics: vec![],
            vtable: vec![],
            vslots: HashMap::new(),
        };
        let derived = Class {
            name: "Derived".into(),
            super_class: Some(0),
            fields: vec![FieldDecl {
                name: "b".into(),
                ty: Ty::Ref,
            }],
            statics: vec![],
            vtable: vec![],
            vslots: HashMap::new(),
        };
        Program {
            classes: vec![base, derived],
            ..Default::default()
        }
    }

    #[test]
    fn flattened_field_layout_puts_inherited_first() {
        let p = tiny_program();
        assert_eq!(p.total_fields(0), 1);
        assert_eq!(p.total_fields(1), 2);
        let f = p.flattened_fields(1);
        assert_eq!(f[0].name, "a");
        assert_eq!(f[1].name, "b");
        assert_eq!(f[1].ty, Ty::Ref);
    }

    #[test]
    fn subclass_relation() {
        let p = tiny_program();
        assert!(p.is_subclass(1, 0));
        assert!(p.is_subclass(0, 0));
        assert!(!p.is_subclass(0, 1));
    }

    #[test]
    fn lookup_by_name() {
        let p = tiny_program();
        assert_eq!(p.class_id_by_name("Derived"), Some(1));
        assert_eq!(p.class_id_by_name("Missing"), None);
    }
}
