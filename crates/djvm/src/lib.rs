//! # djvm — a Jalapeño-like managed-runtime substrate
//!
//! The execution substrate for the DejaVu reproduction (*"A
//! Perturbation-Free Replay Platform for Cross-Optimized Multithreaded
//! Applications"*, IPDPS 2001): a uniprocessor bytecode VM whose design
//! mirrors the Jalapeño properties the paper's replay strategy depends on.
//!
//! * **Quasi-preemptive green threads** — thread switches only at *yield
//!   points* (method prologues and taken loop backedges), preempted at the
//!   first yield point after a jittered timer interrupt ([`clock`]).
//! * **A thread package that is ordinary guest state** ([`sched`]) — FIFO
//!   ready queue, monitor entry/wait queues, sleeper list — so replaying
//!   the VM replays the scheduler, making synchronization-induced switches
//!   deterministic and log-free.
//! * **Type-accurate GC** ([`gc`]) over a word-addressed heap ([`heap`]),
//!   with per-pc reference maps computed by the baseline compiler
//!   ([`compile`]); both mark-sweep and copying collectors.
//! * **Heap-resident growable activation stacks** ([`thread`]) — stack
//!   overflow allocates, which is why instrumentation must be symmetric.
//! * **Observable allocation order** — `identityHashCode` is the
//!   allocation serial, so any extra allocation perturbs the guest.
//! * **An instrumentation seam** ([`hook`]) invoked at yield points, clock
//!   reads and native calls — where DejaVu (crate `dejavu`) plugs in.
//! * **Execution fingerprinting** ([`fingerprint`]) implementing the
//!   paper's definition of identical behaviour, used to *verify* replay.
//!
//! Programs are built with the assembler DSL in [`builder`] (see the
//! `workloads` crate for full applications).

pub mod builder;
pub mod bytecode;
pub mod clock;
pub mod codec;
pub mod compile;
pub mod dis;
pub mod fingerprint;
pub mod gc;
pub mod heap;
pub mod hook;
pub mod interp;
pub mod native;
pub mod program;
pub mod rng;
pub mod sched;
pub mod thread;
pub mod vm;

pub use builder::ProgramBuilder;
pub use bytecode::{ClassId, MethodId, NativeId, Op, StrId, Ty};
pub use clock::{CycleClock, FixedTimer, JitteredClock, JitteredTimer, TimerSource, WallClock};
pub use compile::{AluFn, ClosedLoop, CmpFn, MegaBlock, MegaOp, QOp};
pub use fingerprint::FingerprintMode;
pub use heap::{Addr, ArrKind, GcKind, Word};
pub use hook::{ExecHook, Passthrough, YieldAction};
pub use native::{CallbackReq, NativeCtx, NativeOutcome, NativeRegistry};
pub use program::Program;
pub use rng::SplitMix64;
pub use sched::SchedPressure;
pub use thread::{ThreadStatus, Tid};
pub use vm::{ErrKind, MegaStats, Vm, VmConfig, VmError, VmStatus};
