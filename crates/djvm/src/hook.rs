//! The instrumentation seam: where DejaVu is "cross-optimized" into the VM.
//!
//! In Jalapeño, DejaVu's instrumentation is compiled *into* the unified
//! machine code of application + VM (paper §1). Our analogue is an
//! [`ExecHook`] invoked synchronously from the interpreter's hot path at
//! exactly the paper's interception points:
//!
//! * **yield points** (method prologues and taken loop backedges) — the
//!   only places a preemptive switch may happen, and the ticks of the
//!   logical clock (Fig. 2);
//! * **wall-clock reads** — `Now` bytecodes and the scheduler's periodic
//!   reads that drive `sleep`/timed-`wait` expiry (§2.2);
//! * **native calls** — return values and callback parameters (§2.5).
//!
//! A hook may also ask the VM to run an interpreted *helper method*
//! (buffer flush/fill): those frames are flagged as instrumentation, their
//! yield points reach [`ExecHook::on_instr_yield_point`] instead (the
//! `liveClock` distinction), and any thread switch the hook requested is
//! deferred until the helper returns.

use crate::bytecode::{MethodId, NativeId};
use crate::heap::Word;
use crate::native::NativeOutcome;
use crate::thread::Tid;
use crate::vm::Vm;

/// Decision returned by [`ExecHook::on_shared_access`] *before* a heap
/// access executes. Used by baseline replay schemes (Instant Replay's CREW
/// enforcement) to delay a thread until the recorded access order allows it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDecision {
    /// Execute the access now.
    Proceed,
    /// Do not execute; switch threads and retry this instruction later.
    SwitchAndRetry,
}

/// What the hook wants done at a yield point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YieldAction {
    /// Perform a thread switch (immediately, or after the helper if one is
    /// also requested).
    pub switch_now: bool,
    /// Run this interpreted instrumentation helper first: `(method, arg)`.
    pub run_helper: Option<(MethodId, i64)>,
}

impl YieldAction {
    pub const NONE: YieldAction = YieldAction {
        switch_now: false,
        run_helper: None,
    };

    pub fn switch() -> YieldAction {
        YieldAction {
            switch_now: true,
            run_helper: None,
        }
    }
}

/// The instrumentation interface. `Vm` is passed in full: like
/// cross-optimized instrumentation, hooks may allocate in the guest heap,
/// load guest classes, and read scheduler state — which is precisely why
/// the symmetry discipline of §2.4 exists.
pub trait ExecHook {
    /// Called once after boot, before the entry thread executes. Symmetric
    /// hooks do their pre-allocation / pre-loading / warm-up I/O here.
    fn on_init(&mut self, _vm: &mut Vm) {}

    /// A yield point in application/runtime code (liveClock running).
    fn on_yield_point(&mut self, vm: &mut Vm) -> YieldAction;

    /// A yield point inside an instrumentation helper frame (liveClock
    /// paused). Symmetric hooks ignore these entirely.
    fn on_instr_yield_point(&mut self, _vm: &mut Vm) -> YieldAction {
        YieldAction::NONE
    }

    /// How many upcoming [`ExecHook::on_yield_point`] consults are
    /// guaranteed *quiet* — they would return [`YieldAction::NONE`] and
    /// have no effect beyond advancing the hook's yield-point arithmetic —
    /// assuming no timer tick fires before they happen. The tier-2
    /// megablock engine batches that many consults away (crediting them
    /// back via [`ExecHook::on_yield_points_skipped`]), so the answer must
    /// be exact: passthrough and record switch only when the preempt bit
    /// is set (which a tick-free window cannot set), replay switches when
    /// the recorded delta expires. The conservative default of 0 keeps
    /// custom hooks correct: megablocks simply never run for them.
    fn quiet_yield_horizon(&self, _vm: &Vm) -> u64 {
        0
    }

    /// `k` quiet yield points were batched by tier-2 execution instead of
    /// consulting [`ExecHook::on_yield_point`] one by one. Hooks that
    /// count yield points (the logical clock) must advance their counters
    /// by `k` here; `k` never exceeds the horizon they last reported.
    fn on_yield_points_skipped(&mut self, _k: u64) {}

    /// A wall-clock read. Passthrough/record return (and record) the live
    /// value; replay returns the recorded one.
    fn on_clock_read(&mut self, vm: &mut Vm) -> i64;

    /// A native call. Passthrough/record execute the native (recording its
    /// outcome); replay regenerates the recorded outcome without executing.
    fn on_native_call(&mut self, vm: &mut Vm, native: NativeId, args: &[i64]) -> NativeOutcome;

    /// Every thread dispatch (preemptive *and* deterministic). DejaVu
    /// ignores this — its whole point is that deterministic switches need
    /// no logging — but baseline schemes that do not replay the thread
    /// package (Russinovich-Cogswell) must log and re-steer every switch.
    fn on_thread_switch(&mut self, _vm: &mut Vm, _to: Tid) {}

    /// Called before a heap access (field/static/array load or store) with
    /// the target object's allocation serial. Baseline schemes use this for
    /// CREW version logging (Instant Replay) and order enforcement; the
    /// default (and DejaVu) does nothing — another of the paper's points:
    /// capturing critical events is the expensive road not taken.
    fn on_shared_access(&mut self, _vm: &mut Vm, _serial: u64, _write: bool) -> AccessDecision {
        AccessDecision::Proceed
    }

    /// Filter the value produced by a heap read (Recap/PPD-style content
    /// logging substitutes recorded values here). `is_ref` distinguishes
    /// reference reads — addresses, which content-logging schemes cannot
    /// safely substitute across runs — from plain values.
    fn on_shared_read_value(&mut self, _vm: &mut Vm, v: Word, _is_ref: bool) -> Word {
        v
    }

    /// The VM halted (normally or abnormally).
    fn on_halt(&mut self, _vm: &mut Vm) {}

    /// A human-readable mode label for diagnostics.
    fn mode_name(&self) -> &'static str {
        "custom"
    }
}

/// The no-instrumentation hook: live clock, live natives, preempt on the
/// hardware timer bit. This is "the code with instrumentation turned off" —
/// the baseline that record mode's overhead is measured against.
#[derive(Debug, Default)]
pub struct Passthrough;

impl ExecHook for Passthrough {
    fn on_yield_point(&mut self, vm: &mut Vm) -> YieldAction {
        if vm.preempt_bit {
            vm.preempt_bit = false;
            YieldAction::switch()
        } else {
            YieldAction::NONE
        }
    }

    fn quiet_yield_horizon(&self, vm: &Vm) -> u64 {
        // Without the preempt bit, every consult is a no-op; with it, the
        // very next one switches.
        if vm.preempt_bit {
            0
        } else {
            u64::MAX
        }
    }

    fn on_clock_read(&mut self, vm: &mut Vm) -> i64 {
        vm.read_live_clock()
    }

    fn on_native_call(&mut self, vm: &mut Vm, native: NativeId, args: &[i64]) -> NativeOutcome {
        vm.call_native_live(native, args)
    }

    fn mode_name(&self) -> &'static str {
        "passthrough"
    }
}
