//! The virtual machine: heap + threads + scheduler + clocks + boot image.
//!
//! A `Vm` is a *pure function* of its program, configuration, and the three
//! injected non-determinism sources (timer, wall clock, natives). Every
//! other mechanism — allocation, lazy class loading, lazy method
//! compilation, GC, stack growth, monitor queues — is deterministic guest
//! state. That is the property DejaVu's replay strategy rests on: replay
//! the non-deterministic inputs, and the whole runtime (including the
//! thread package) replays itself (paper §2.2).

use crate::bytecode::{ClassId, MethodId, NativeId, Ty};
use crate::clock::{TimerSource, WallClock};
use crate::fingerprint::{Digest, Fingerprint, FingerprintMode};
use crate::heap::{Addr, ArrKind, GcKind, Heap, Word, NULL};
use crate::native::{NativeCtx, NativeOutcome, NativeRegistry};
use crate::program::Program;
use crate::sched::Scheduler;
use crate::thread::{SavedPc, ThreadState, ThreadStatus, Tid};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Fatal guest error kinds. All are deterministic: the same program with
/// the same replayed inputs fails identically (and the fingerprint captures
/// it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    NullDeref,
    OutOfMemory,
    DivideByZero,
    IndexOutOfBounds,
    TypeConfusion,
    IllegalMonitorState,
    NotAThread,
    BadVirtualDispatch,
    UnreachableCode,
    EntryArity,
}

/// A fatal guest error with its location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmError {
    pub kind: ErrKind,
    pub tid: Tid,
    pub method: MethodId,
    pub pc: u32,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} in thread {} at method {} pc {}",
            self.kind, self.tid, self.method, self.pc
        )
    }
}

impl std::error::Error for VmError {}

/// Overall machine status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmStatus {
    Running,
    /// `Halt` executed or every thread terminated.
    Halted,
    /// No thread can ever run again (and none is sleeping).
    Deadlocked,
    Error(VmError),
}

impl VmStatus {
    pub fn is_running(self) -> bool {
        self == VmStatus::Running
    }
}

/// VM construction parameters.
#[derive(Debug, Clone)]
pub struct VmConfig {
    pub heap_words: usize,
    pub gc: GcKind,
    /// Initial activation-stack array length (words).
    pub initial_stack: usize,
    pub fingerprint: FingerprintMode,
    /// Dispatch through the quickened `QOp` stream (superinstructions,
    /// devirtualized calls). Purely an interpreter-speed knob: the
    /// fingerprint, yield-point deltas, logical clock and trace are
    /// bit-identical either way (the cycle-accounting invariant, DESIGN §5).
    /// Defaults to on; `DJVM_NO_QUICKEN=1` in the environment turns it off.
    pub quicken: bool,
    /// Tier-2 execution: compile hot loop bodies into straight-line guarded
    /// megablocks (DESIGN §10). Like `quicken`, purely a speed knob — the
    /// cycle-accounting invariant makes fingerprints, traces and digests
    /// bit-identical with it on or off. Requires `quicken` (the tier-2
    /// engine compiles from the quickened stream). Defaults to on;
    /// `DJVM_NO_MEGA=1` in the environment turns it off.
    pub mega: bool,
    /// Forced-deopt injection for testing: every `stride`-th megablock
    /// guard evaluation fails even though the guarded condition holds
    /// (0 = off). Deopt is exit-before-step, so a spurious failure is
    /// always semantics-preserving — neutrality tests sweep this.
    pub mega_deopt_stride: u64,
    /// Forced-deopt injection: the guard with this per-iteration ordinal
    /// always fails (the deopt-at-every-guard sweep).
    pub mega_deopt_guard: Option<u32>,
}

impl Default for VmConfig {
    fn default() -> Self {
        Self {
            heap_words: 1 << 20,
            gc: GcKind::MarkSweep,
            initial_stack: 256,
            fingerprint: FingerprintMode::Full,
            quicken: std::env::var_os("DJVM_NO_QUICKEN").is_none(),
            mega: std::env::var_os("DJVM_NO_MEGA").is_none(),
            mega_deopt_stride: 0,
            mega_deopt_guard: None,
        }
    }
}

/// Addresses of boot-image reflection metadata — what a remote-reflection
/// tool knows a priori (the paper's "address is provided to the interpreter
/// through the process of building the Jalapeño boot image", §3.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct BootImage {
    /// Ref array of `VM_Method` objects, indexed by method id.
    pub method_table: Addr,
}

/// Counters reported by the experiment harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct VmCounters {
    pub steps: u64,
    pub yield_points: u64,
    pub thread_switches: u64,
    pub preemptive_switches: u64,
    pub class_loads: u64,
    pub methods_compiled: u64,
    pub stack_growths: u64,
    pub io_writes: u64,
    pub io_reads: u64,
    pub clock_reads: u64,
    pub native_calls: u64,
}

/// Tier-2 runtime counters. Pure observer state: how often megablocks ran
/// is *mode-dependent* (record and replay legitimately batch different
/// spans, because their quiet-yield horizons differ), so these counters are
/// excluded from [`VmCounters`], the fingerprint, [`Vm::state_digest`] and
/// [`VmSnapshot`] — only the tier-up count is deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MegaStats {
    /// Loops promoted to megablocks (deterministic across modes).
    pub tier_ups: u64,
    /// Megablock entries (≥1 iteration each).
    pub entries: u64,
    /// Completed megablock iterations.
    pub iters: u64,
    /// Subset of `iters` retired by the closed-form counting-loop stepper
    /// (no per-step execution at all).
    pub closed_iters: u64,
    /// Guard-failure deopts back to the quickened interpreter.
    pub deopts: u64,
    /// Deopts injected by `mega_deopt_stride` / `mega_deopt_guard`.
    pub forced_deopts: u64,
    /// Entry-gate misses (tick too close, budget exhausted, or the hook's
    /// quiet-yield horizon too short).
    pub gate_misses: u64,
}

impl MegaStats {
    /// Deterministic JSON (keys pre-sorted).
    pub fn to_json(&self) -> codec::Json {
        use codec::Json;
        Json::obj(vec![
            ("closed_iters", Json::UInt(self.closed_iters)),
            ("deopts", Json::UInt(self.deopts)),
            ("entries", Json::UInt(self.entries)),
            ("forced_deopts", Json::UInt(self.forced_deopts)),
            ("gate_misses", Json::UInt(self.gate_misses)),
            ("iters", Json::UInt(self.iters)),
            ("tier_ups", Json::UInt(self.tier_ups)),
        ])
    }
}

/// Per-method tier-2 state: a hotness counter and a compiled-block slot per
/// qop index (only loop heads ever become non-zero / non-`None`).
struct MethodMega {
    hot: Vec<u32>,
    blocks: Vec<Option<Arc<crate::compile::MegaBlock>>>,
}

/// Tier-2 engine state hanging off the [`Vm`]. Not guest-visible: the
/// compiled blocks are a pure cache over the (immutable) quickened streams,
/// and the stats are observer counters.
pub struct MegaState {
    /// Master switch (`VmConfig::mega && VmConfig::quicken`).
    pub enabled: bool,
    /// Global guard-evaluation counter driving `mega_deopt_stride`.
    pub guard_evals: u64,
    pub stats: MegaStats,
    methods: Vec<Option<Box<MethodMega>>>,
}

impl MegaState {
    fn new(nmethods: usize, enabled: bool) -> Self {
        Self {
            enabled,
            guard_evals: 0,
            stats: MegaStats::default(),
            methods: (0..nmethods).map(|_| None).collect(),
        }
    }
}

/// Where a new thread's arguments come from.
pub(crate) enum ArgSource {
    /// No arguments (boot thread).
    None,
    /// Top `n` words of the *current* thread's operand stack (popped after
    /// the new thread's allocations succeed, so a GC can still see them).
    CallerStack(u16),
}

/// The virtual machine.
pub struct Vm {
    pub program: Arc<Program>,
    pub heap: Heap,
    pub threads: Vec<ThreadState>,
    pub sched: Scheduler,
    pub natives: NativeRegistry,
    pub timer: Box<dyn TimerSource>,
    pub wall: Box<dyn WallClock>,

    /// Executed instruction count ("cycles"); drives the timer and clock.
    pub cycles: u64,
    /// Countdown to the next timer interrupt.
    pub cycles_to_tick: u64,
    /// `preemptiveHardwareBit` (Fig. 2): set by the timer interrupt,
    /// consumed at the next counted yield point.
    pub preempt_bit: bool,
    /// A switch requested while instrumentation code was running; performed
    /// when the outermost instrumentation frame returns.
    pub pending_switch: bool,
    /// Nesting depth of instrumentation helper frames (liveClock is
    /// conceptually paused while > 0).
    pub instr_depth: u32,

    pub status: VmStatus,
    pub output: String,
    pub fingerprint: Fingerprint,
    pub counters: VmCounters,
    /// Observer-only telemetry sink (event ring + histograms). Lives
    /// outside everything guest-visible: not in the heap, not hashed by
    /// the fingerprint or [`Vm::state_digest`], not captured by
    /// [`VmSnapshot`] — so enabling it cannot perturb the execution
    /// (the §2.4 discipline, applied to observability).
    pub telem: telemetry::VmTelemetry,
    /// Tier-2 megablock engine state (hotness counters, compiled blocks,
    /// observer stats). Like `telem`, deliberately outside guest state.
    pub mega: MegaState,
    pub config: VmConfig,
    pub boot_image: BootImage,

    /// Lazily allocated class objects (statics), indexed by class id.
    pub class_objects: Vec<Option<Addr>>,
    /// Lazily allocated "compiled code" objects, indexed by method id.
    pub code_objects: Vec<Option<Addr>>,
    /// Interned String objects (boot image), indexed by string id.
    pub string_objects: Vec<Addr>,
    /// Lazily allocated I/O buffers (the write and read paths that the
    /// symmetric warm-up of §2.4 touches at init). The read path allocates
    /// *two* objects (buffer + decode scratch), the write path one — so
    /// record-mode (writes) and replay-mode (reads) I/O initialization have
    /// observably different allocation footprints unless warmed up
    /// symmetrically, exactly the hazard of "Symmetry in Loading and
    /// Compilation" (§2.4).
    pub io_write_buf: Option<Addr>,
    pub io_read_buf: Option<Addr>,
    pub io_read_scratch: Option<Addr>,

    /// Registered root slots (instrumentation buffers etc.); updated by the
    /// copying collector.
    pub extra_roots: Vec<Addr>,
    /// Transient roots protecting multi-allocation sequences.
    pub(crate) temp_roots: Vec<Addr>,
}

/// Handle to a registered root slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootHandle(pub usize);

impl Vm {
    /// Boot a VM: build the boot image (strings, reflection metadata) and
    /// the main thread running the program's entry method.
    pub fn boot(
        program: Arc<Program>,
        config: VmConfig,
        timer: Box<dyn TimerSource>,
        wall: Box<dyn WallClock>,
    ) -> Result<Vm, VmError> {
        let heap = Heap::new(config.gc, config.heap_words);
        let nclasses = program.classes.len();
        let nmethods = program.methods.len();
        let fingerprint = Fingerprint::new(config.fingerprint);
        let mega = MegaState::new(nmethods, config.mega && config.quicken);
        let mut vm = Vm {
            program,
            heap,
            threads: Vec::new(),
            sched: Scheduler::new(),
            natives: NativeRegistry::new(),
            timer,
            wall,
            cycles: 0,
            cycles_to_tick: 0,
            preempt_bit: false,
            pending_switch: false,
            instr_depth: 0,
            status: VmStatus::Running,
            output: String::new(),
            fingerprint,
            counters: VmCounters::default(),
            telem: telemetry::VmTelemetry::disabled(),
            mega,
            config,
            boot_image: BootImage::default(),
            class_objects: vec![None; nclasses],
            code_objects: vec![None; nmethods],
            string_objects: Vec::new(),
            io_write_buf: None,
            io_read_buf: None,
            io_read_scratch: None,
            extra_roots: Vec::new(),
            temp_roots: Vec::new(),
        };
        vm.cycles_to_tick = vm.timer.next_interval();
        vm.build_boot_image()?;
        let entry = vm.program.entry;
        if vm.program.method(entry).nargs != 0 {
            return Err(VmError {
                kind: ErrKind::EntryArity,
                tid: 0,
                method: entry,
                pc: 0,
            });
        }
        let tid = vm.create_thread(entry, ArgSource::None, "main")?;
        debug_assert_eq!(tid, 0);
        // Thread 0 starts running (it is not queued).
        let pos = vm.sched.ready.iter().position(|&t| t == tid).unwrap();
        vm.sched.ready.remove(pos);
        vm.threads[0].status = ThreadStatus::Running;
        vm.sched.current = 0;
        Ok(vm)
    }

    /// Turn on the observer-only telemetry sink with an event ring of
    /// `ring_cap` entries. Safe at any point; neutrality is guaranteed
    /// because nothing in the sink is guest-visible.
    pub fn enable_telemetry(&mut self, ring_cap: usize) {
        self.telem = telemetry::VmTelemetry::enabled(ring_cap);
    }

    /// Arm the replay-time profiler (see `telemetry::profile`). Call
    /// *after* [`Vm::enable_telemetry`] if both are wanted — enabling
    /// telemetry replaces the whole sink. Safe at any point: the profiler
    /// seeds itself from the live frame chains so spans opened before
    /// arming still close correctly, and like the rest of the sink it is
    /// pure observer state (never guest-visible, never fingerprinted,
    /// never snapshotted into guest state).
    pub fn enable_profiler(&mut self) {
        let mut p = telemetry::Profiler::new(crate::compile::QOP_KIND_COUNT);
        for t in &self.threads {
            p.thread_name(t.tid, &t.name);
            if t.status == ThreadStatus::Terminated || t.fp == 0 {
                continue;
            }
            // Walk the saved-fp chain to recover the open frames
            // (innermost first), then enter them outermost-first so the
            // profiler's span stack mirrors the activation stack.
            let mut chain = Vec::new();
            let mut fp = t.fp;
            loop {
                chain.push(self.heap.mem[fp as usize + 1] as MethodId);
                let sfp = self.heap.mem[fp as usize];
                if sfp == 0 {
                    break;
                }
                fp = sfp;
            }
            for &m in chain.iter().rev() {
                p.enter(t.tid, m, self.cycles);
            }
        }
        let cur = self.sched.current;
        let nyp = self.threads[cur as usize].yield_points;
        p.switch_to(cur, nyp, self.cycles);
        self.telem.profile = Some(Box::new(p));
    }

    fn err(&self, kind: ErrKind) -> VmError {
        let t = &self.threads[self.sched.current as usize];
        VmError {
            kind,
            tid: t.tid,
            method: t.method,
            pc: t.pc,
        }
    }

    pub(crate) fn fail(&mut self, kind: ErrKind) -> VmError {
        let e = self.err(kind);
        self.status = VmStatus::Error(e);
        self.fingerprint.event(0xE44, kind as u64, e.pc as u64);
        e
    }

    // ------------------------------------------------------------------
    // Tier-2 megablocks (hotness, compilation, lookup)
    // ------------------------------------------------------------------

    /// Count one taken backedge to `head` in `method`; at exactly
    /// [`crate::compile::MEGA_HOT_THRESHOLD`] takes, try to compile the
    /// loop into a megablock. Pre-tier-up execution is bit-identical in
    /// every mode, so the threshold crossing — and the `compile.mega`
    /// telemetry event it emits — lands at the same logical instant
    /// everywhere, even though post-tier-up *entry* counts are
    /// mode-dependent. A loop whose compile fails stays saturated at the
    /// threshold and is never retried.
    #[inline]
    pub(crate) fn mega_note_backedge(&mut self, method: MethodId, head: u32) {
        if !self.mega.enabled {
            return;
        }
        self.mega_note_backedge_slow(method, head);
    }

    fn mega_note_backedge_slow(&mut self, method: MethodId, head: u32) {
        let nq = self.program.compiled(method).qops.len();
        let mm = self.mega.methods[method as usize].get_or_insert_with(|| {
            Box::new(MethodMega {
                hot: vec![0; nq],
                blocks: vec![None; nq],
            })
        });
        let h = &mut mm.hot[head as usize];
        if *h >= crate::compile::MEGA_HOT_THRESHOLD {
            return; // saturated: compiled, or gave up on this loop
        }
        *h += 1;
        if *h < crate::compile::MEGA_HOT_THRESHOLD {
            return;
        }
        let trip = *h as u64;
        let block = crate::compile::compile_loop(&self.program, method, head);
        if let Some(b) = block {
            let width = b.width;
            self.mega.stats.tier_ups += 1;
            let tid = self.sched.current;
            self.telem.event(
                tid,
                telemetry::EventKind::MegaCompile {
                    method: method as u32,
                    loop_pc: head,
                    trip_count: trip,
                    block_width: width,
                },
            );
            let mm = self.mega.methods[method as usize].as_mut().unwrap();
            mm.blocks[head as usize] = Some(Arc::new(b));
        }
    }

    /// The compiled megablock headed at (`method`, `pc`), if one exists.
    #[inline]
    pub(crate) fn mega_block(
        &self,
        method: MethodId,
        pc: u32,
    ) -> Option<Arc<crate::compile::MegaBlock>> {
        let mm = self.mega.methods[method as usize].as_deref()?;
        mm.blocks.get(pc as usize)?.clone()
    }

    // ------------------------------------------------------------------
    // Allocation (with GC retry)
    // ------------------------------------------------------------------

    pub(crate) fn alloc_scalar(&mut self, class: ClassId, nfields: usize) -> Result<Addr, VmError> {
        let before = self.heap.stats.words_allocated;
        let a = if let Some(a) = self.heap.alloc_scalar(class, nfields) {
            Ok(a)
        } else {
            crate::gc::collect(self);
            self.heap
                .alloc_scalar(class, nfields)
                .ok_or_else(|| self.err(ErrKind::OutOfMemory))
        };
        self.telem.alloc(self.heap.stats.words_allocated - before);
        a
    }

    pub(crate) fn alloc_classobj(&mut self, class: ClassId, n: usize) -> Result<Addr, VmError> {
        let before = self.heap.stats.words_allocated;
        let a = if let Some(a) = self.heap.alloc_classobj(class, n) {
            Ok(a)
        } else {
            crate::gc::collect(self);
            self.heap
                .alloc_classobj(class, n)
                .ok_or_else(|| self.err(ErrKind::OutOfMemory))
        };
        self.telem.alloc(self.heap.stats.words_allocated - before);
        a
    }

    pub(crate) fn alloc_array(&mut self, kind: ArrKind, len: usize) -> Result<Addr, VmError> {
        let before = self.heap.stats.words_allocated;
        let a = if let Some(a) = self.heap.alloc_array(kind, len) {
            Ok(a)
        } else {
            crate::gc::collect(self);
            self.heap
                .alloc_array(kind, len)
                .ok_or_else(|| self.err(ErrKind::OutOfMemory))
        };
        self.telem.alloc(self.heap.stats.words_allocated - before);
        a
    }

    /// Allocate a guest array from host code (hooks/tools), protected
    /// against GC by nothing — callers must register the result as a root
    /// if they keep it.
    pub fn alloc_array_public(&mut self, kind: ArrKind, len: usize) -> Result<Addr, VmError> {
        self.alloc_array(kind, len)
    }

    // ------------------------------------------------------------------
    // Boot image
    // ------------------------------------------------------------------

    fn intern_string_object(&mut self, s: &str) -> Result<Addr, VmError> {
        let chars = self.alloc_array(ArrKind::Int, s.len())?;
        for (i, b) in s.bytes().enumerate() {
            self.heap.set_elem(chars, i, b as Word);
        }
        self.temp_roots.push(chars);
        let string_class = self.program.builtins.string_class;
        let obj = self.alloc_scalar(string_class, 1);
        let chars = self.temp_roots.pop().unwrap(); // may have moved
        let obj = obj?;
        self.heap.set_field(obj, 0, chars);
        Ok(obj)
    }

    fn build_boot_image(&mut self) -> Result<(), VmError> {
        // Interned strings.
        let strings: Vec<String> = self.program.strings.clone();
        for s in &strings {
            let a = self.intern_string_object(s)?;
            self.string_objects.push(a);
        }
        // Reflection metadata: VM_Method[] with per-method name + lineTable
        // (the data structures of the paper's Figure 3).
        let nmethods = self.program.methods.len();
        let table = self.alloc_array(ArrKind::Ref, nmethods)?;
        self.boot_image.method_table = table;
        let vm_method_class = self.program.builtins.vm_method_class;
        for m in 0..nmethods {
            let (name, lines) = {
                let meth = &self.program.methods[m];
                (meth.qualified_name(&self.program), meth.lines.clone())
            };
            let name_obj = self.intern_string_object(&name)?;
            self.temp_roots.push(name_obj);
            let lt = self.alloc_array(ArrKind::Int, lines.len())?;
            for (i, &l) in lines.iter().enumerate() {
                self.heap.set_elem(lt, i, l as Word);
            }
            self.temp_roots.push(lt);
            let mobj = self.alloc_scalar(vm_method_class, 3)?;
            let lt = self.temp_roots.pop().unwrap();
            let name_obj = self.temp_roots.pop().unwrap();
            self.heap.set_field(mobj, 0, m as Word); // methodId
            self.heap.set_field(mobj, 1, name_obj); // name
            self.heap.set_field(mobj, 2, lt); // lineTable
            let table = self.boot_image.method_table; // may have moved
            self.heap.set_elem(table, m, mobj);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lazy loading / compilation / I-O paths (the symmetry channels)
    // ------------------------------------------------------------------

    /// Class object (statics holder) for `class`, allocating it on first
    /// touch — the "class loading allocates heap objects" channel of §2.4.
    pub fn ensure_class_loaded(&mut self, class: ClassId) -> Result<Addr, VmError> {
        if let Some(a) = self.class_objects[class as usize] {
            return Ok(a);
        }
        let n = self.program.static_layouts[class as usize].len();
        let a = self.alloc_classobj(class, n)?;
        self.class_objects[class as usize] = Some(a);
        self.counters.class_loads += 1;
        self.fingerprint.event(0xC1A55, class as u64, 0);
        let tid = self.sched.current;
        self.telem
            .event(tid, telemetry::EventKind::ClassLoad { class });
        Ok(a)
    }

    /// "Compile" a method on first invocation: allocates its code object.
    pub fn ensure_method_compiled(&mut self, m: MethodId) -> Result<(), VmError> {
        if self.code_objects[m as usize].is_some() {
            return Ok(());
        }
        let len = self.program.compiled(m).code_words();
        let a = self.alloc_array(ArrKind::Int, len)?;
        self.code_objects[m as usize] = Some(a);
        self.counters.methods_compiled += 1;
        self.fingerprint.event(0xC0DE, m as u64, 0);
        let tid = self.sched.current;
        self.telem
            .event(tid, telemetry::EventKind::Compile { method: m });
        self.telem.compile(len as u64);
        if let Some(p) = self.telem.profile.as_deref_mut() {
            // Zero-width span: compilation costs no logical cycles (the
            // triggering call's cycle stays with its method); arg carries
            // method id in, code words out.
            p.phase_begin(
                tid,
                telemetry::profile::PHASE_COMPILE,
                m as u64,
                self.cycles,
            );
            p.phase_end(
                tid,
                telemetry::profile::PHASE_COMPILE,
                len as u64,
                self.cycles,
            );
        }
        Ok(())
    }

    /// Touch the output path (allocates the write buffer on first use).
    pub fn io_write_touch(&mut self) -> Result<(), VmError> {
        if self.io_write_buf.is_none() {
            let a = self.alloc_array(ArrKind::Int, 64)?;
            self.io_write_buf = Some(a);
        }
        self.counters.io_writes += 1;
        Ok(())
    }

    /// Touch the input path (allocates the read buffer and its decode
    /// scratch on first use — two allocations, vs. the write path's one).
    pub fn io_read_touch(&mut self) -> Result<(), VmError> {
        if self.io_read_buf.is_none() {
            let a = self.alloc_array(ArrKind::Int, 64)?;
            self.io_read_buf = Some(a);
            let s = self.alloc_array(ArrKind::Int, 32)?;
            self.io_read_scratch = Some(s);
        }
        self.counters.io_reads += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Roots
    // ------------------------------------------------------------------

    /// Register an address as a GC root (instrumentation buffers). The
    /// handle stays valid; the copying collector updates the slot.
    pub fn register_root(&mut self, addr: Addr) -> RootHandle {
        self.extra_roots.push(addr);
        RootHandle(self.extra_roots.len() - 1)
    }

    pub fn root(&self, h: RootHandle) -> Addr {
        self.extra_roots[h.0]
    }

    pub fn set_root(&mut self, h: RootHandle, addr: Addr) {
        self.extra_roots[h.0] = addr;
    }

    // ------------------------------------------------------------------
    // Live non-determinism sources
    // ------------------------------------------------------------------

    /// Read the live wall clock (record/passthrough paths only — replay
    /// hooks never call this).
    pub fn read_live_clock(&mut self) -> i64 {
        self.wall.now(self.cycles)
    }

    /// Execute a live native call (record/passthrough only).
    pub fn call_native_live(&mut self, id: NativeId, args: &[i64]) -> NativeOutcome {
        let now = self.wall.now(self.cycles);
        let mut reg = std::mem::take(&mut self.natives);
        let out = reg.call(
            id,
            &NativeCtx {
                args,
                now_millis: now,
            },
        );
        self.natives = reg;
        out
    }

    // ------------------------------------------------------------------
    // Threads, frames, stacks
    // ------------------------------------------------------------------

    pub fn current_thread(&self) -> &ThreadState {
        &self.threads[self.sched.current as usize]
    }

    pub fn current_thread_mut(&mut self) -> &mut ThreadState {
        &mut self.threads[self.sched.current as usize]
    }

    /// Create a thread running `method`; returns its tid. The new thread is
    /// appended to the ready queue.
    pub(crate) fn create_thread(
        &mut self,
        method: MethodId,
        args: ArgSource,
        name: &str,
    ) -> Result<Tid, VmError> {
        self.ensure_method_compiled(method)?;
        let thread_class = self.program.builtins.thread_class;
        let tobj = self.alloc_scalar(thread_class, 1)?;
        self.temp_roots.push(tobj);
        let stack = self.alloc_array(ArrKind::Stack, self.config.initial_stack);
        let tobj = self.temp_roots.pop().unwrap();
        let stack = stack?;

        let tid = self.threads.len() as Tid;
        self.heap.set_field(tobj, 0, tid as Word);

        let m = self.program.method(method);
        let nlocals = m.nlocals;
        let nargs = m.nargs;
        let fp = stack + 2;
        self.heap.mem[fp as usize] = 0;
        self.heap.mem[fp as usize + 1] = method as Word;
        self.heap.mem[fp as usize + 2] = SavedPc {
            caller_pc: 0,
            discard_result: false,
            instrumentation: false,
        }
        .encode();
        // Copy arguments from the spawning thread's stack, then pop them.
        match args {
            ArgSource::None => {
                debug_assert_eq!(nargs, 0);
            }
            ArgSource::CallerStack(n) => {
                debug_assert_eq!(n, nargs);
                let cur = self.sched.current as usize;
                let src = self.threads[cur].sp - n as u64;
                for i in 0..n as u64 {
                    let v = self.heap.mem[(src + i) as usize];
                    self.heap.mem[(fp + 3 + i) as usize] = v;
                }
                self.threads[cur].sp = src;
            }
        }
        for i in nargs..nlocals {
            self.heap.mem[(fp + 3 + i as u64) as usize] = 0;
        }

        self.threads.push(ThreadState {
            tid,
            thread_obj: tobj,
            stack_obj: stack,
            fp,
            sp: fp + 3 + nlocals as u64,
            pc: 0,
            method,
            status: ThreadStatus::Ready,
            pending_push: None,
            interrupted: false,
            yield_points: 0,
            name: name.to_string(),
        });
        self.sched.ready.push_back(tid);
        self.fingerprint.event(0x59A3, tid as u64, method as u64);
        if let Some(p) = self.telem.profile.as_deref_mut() {
            p.thread_name(tid, name);
            p.enter(tid, method, self.cycles);
        }
        Ok(tid)
    }

    /// Grow the current thread's activation stack so at least `need` more
    /// words fit above `sp`. Allocates a larger array, copies, and rebases
    /// every frame pointer — Jalapeño's stack-overflow mechanism, and the
    /// reason §2.4 needs "symmetry in stack overflow".
    pub(crate) fn grow_stack(&mut self, need: u64) -> Result<(), VmError> {
        let cur = self.sched.current as usize;
        let old_obj = self.threads[cur].stack_obj;
        let old_len = self.heap.array_len(old_obj);
        let used = (self.threads[cur].sp - (old_obj + 2)) as usize;
        let new_len = (old_len * 2).max(used + need as usize + 64);
        let new_obj = self.alloc_array(ArrKind::Stack, new_len)?;
        // A copying GC during that allocation may have moved the old stack.
        let old_obj = self.threads[cur].stack_obj;
        let used = (self.threads[cur].sp - (old_obj + 2)) as usize;
        for i in 0..used {
            self.heap.mem[(new_obj + 2) as usize + i] = self.heap.mem[(old_obj + 2) as usize + i];
        }
        let delta = new_obj.wrapping_sub(old_obj);
        let t = &mut self.threads[cur];
        t.stack_obj = new_obj;
        t.fp = t.fp.wrapping_add(delta);
        t.sp = t.sp.wrapping_add(delta);
        // Rebase the saved-fp chain (absolute addresses into the old array).
        let mut fp = t.fp;
        loop {
            let sfp = self.heap.mem[fp as usize];
            if sfp == 0 {
                break;
            }
            let moved = sfp.wrapping_add(delta);
            self.heap.mem[fp as usize] = moved;
            fp = moved;
        }
        self.counters.stack_growths += 1;
        self.fingerprint.event(0x57AC, new_len as u64, 0);
        let tid = self.sched.current;
        self.telem.event(
            tid,
            telemetry::EventKind::StackGrowth {
                new_words: new_len as u64,
            },
        );
        Ok(())
    }

    /// Ensure the current thread has `words` of stack headroom, growing
    /// eagerly if not (used by symmetric instrumentation before helper
    /// calls, §2.4).
    pub fn ensure_stack_headroom(&mut self, words: u64) -> Result<(), VmError> {
        let t = self.current_thread();
        let limit = t.stack_obj + 2 + self.heap.array_len(t.stack_obj) as u64;
        if t.sp + words > limit {
            self.grow_stack(words)?;
        }
        Ok(())
    }

    /// Push a frame for `callee` on the current thread. If
    /// `args_from_stack`, the callee's arguments are the top `nargs` words
    /// of the current operand stack (a real call); otherwise `inline_args`
    /// (integers only) are written directly (injected helper/callback
    /// frames, which resume at the *current* pc).
    pub(crate) fn push_frame(
        &mut self,
        callee: MethodId,
        args_from_stack: bool,
        inline_args: &[i64],
        discard_result: bool,
        instrumentation: bool,
    ) -> Result<(), VmError> {
        self.ensure_method_compiled(callee)?;
        let (nargs, nlocals, frame_words) = {
            let m = self.program.method(callee);
            let cm = self.program.compiled(callee);
            (m.nargs, m.nlocals, cm.frame_words)
        };
        {
            let t = self.current_thread();
            let limit = t.stack_obj + 2 + self.heap.array_len(t.stack_obj) as u64;
            if t.sp + frame_words as u64 > limit {
                self.grow_stack(frame_words as u64)?;
            }
        }
        let cur = self.sched.current as usize;
        let t = &mut self.threads[cur];
        let caller_pc = if args_from_stack {
            t.pc
        } else {
            t.pc.wrapping_sub(1) // injected frames resume *at* the saved pc+1 == current pc
        };
        if args_from_stack {
            t.sp -= nargs as u64;
        }
        let fp_new = t.sp;
        let heap = &mut self.heap;
        if args_from_stack {
            // The arguments sit at [fp_new .. fp_new+nargs] (they were the
            // stack top before sp was lowered); locals start at fp_new+3.
            // Copy them up *before* the frame header overwrites the first
            // three words; backwards, since the regions overlap (dest>src).
            for i in (0..nargs as u64).rev() {
                let v = heap.mem[(fp_new + i) as usize];
                heap.mem[(fp_new + 3 + i) as usize] = v;
            }
        } else {
            debug_assert_eq!(inline_args.len(), nargs as usize);
            for (i, &v) in inline_args.iter().enumerate() {
                heap.mem[fp_new as usize + 3 + i] = v as Word;
            }
        }
        heap.mem[fp_new as usize] = t.fp;
        heap.mem[fp_new as usize + 1] = callee as Word;
        heap.mem[fp_new as usize + 2] = SavedPc {
            caller_pc,
            discard_result,
            instrumentation,
        }
        .encode();
        for i in nargs..nlocals {
            heap.mem[(fp_new + 3 + i as u64) as usize] = 0;
        }
        t.fp = fp_new;
        t.sp = fp_new + 3 + nlocals as u64;
        t.method = callee;
        t.pc = 0;
        if let Some(p) = self.telem.profile.as_deref_mut() {
            p.enter(self.sched.current, callee, self.cycles);
        }
        Ok(())
    }

    /// Push a frame invoking `method` with inline integer arguments on the
    /// current thread, discarding its result. This is the *in-process*
    /// tool-invocation path — the very thing remote reflection exists to
    /// avoid (§3): running it during a replay perturbs the application VM.
    /// Exposed for the E8 ablation and for native-callback style tooling.
    pub fn push_frame_public(&mut self, method: MethodId, args: &[i64]) -> Result<(), VmError> {
        self.push_frame(method, false, args, true, false)
    }

    /// Operand-stack push/pop for the current thread.
    #[inline]
    pub(crate) fn push_word(&mut self, v: Word) {
        let cur = self.sched.current as usize;
        let sp = self.threads[cur].sp;
        self.heap.mem[sp as usize] = v;
        self.threads[cur].sp = sp + 1;
    }

    #[inline]
    pub(crate) fn pop_word(&mut self) -> Word {
        let cur = self.sched.current as usize;
        let sp = self.threads[cur].sp - 1;
        self.threads[cur].sp = sp;
        self.heap.mem[sp as usize]
    }

    #[inline]
    pub(crate) fn peek_word(&self, depth_from_top: u64) -> Word {
        let t = self.current_thread();
        self.heap.mem[(t.sp - 1 - depth_from_top) as usize]
    }

    /// Append to console output (and the fingerprint).
    pub fn write_output(&mut self, s: &str) {
        self.output.push_str(s);
        self.fingerprint.output(s.as_bytes());
    }

    // ------------------------------------------------------------------
    // Frame walking (GC, state digest, debugger)
    // ------------------------------------------------------------------

    /// A view of one activation frame.
    pub fn frames(&self, tid: Tid) -> Vec<FrameView> {
        let t = &self.threads[tid as usize];
        if t.status == ThreadStatus::Terminated || t.stack_obj == NULL {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut fp = t.fp;
        let mut sp = t.sp;
        let mut method = t.method;
        let mut pc = t.pc;
        loop {
            let nlocals = self.program.method(method).nlocals;
            let depth = (sp - (fp + 3 + nlocals as u64)) as usize;
            out.push(FrameView {
                fp,
                method,
                pc,
                nlocals,
                depth,
            });
            let saved_fp = self.heap.mem[fp as usize];
            if saved_fp == 0 {
                break;
            }
            let saved = SavedPc::decode(self.heap.mem[fp as usize + 2]);
            sp = fp;
            fp = saved_fp;
            pc = saved.caller_pc;
            method = self.heap.mem[fp as usize + 1] as MethodId;
        }
        out
    }

    // ------------------------------------------------------------------
    // State digest (the paper's "identical program states")
    // ------------------------------------------------------------------

    /// Digest of the *application-visible* program state: thread states and
    /// frames (reference slots by target allocation-serial), every object
    /// reachable from them and from loaded class statics, monitor and
    /// sleeper state, console output, and VM status. Instrumentation
    /// buffers (registered extra roots) are deliberately excluded: DejaVu's
    /// own state differs between record and replay by definition (§2.4).
    pub fn state_digest(&self) -> u64 {
        let mut d = Digest::new();
        let mut worklist: Vec<Addr> = Vec::new();

        d.add(0x7EAD5).add(self.threads.len() as u64);
        for t in &self.threads {
            d.add(t.tid as u64);
            let (sd, sa) = match t.status {
                ThreadStatus::Ready => (1, 0),
                ThreadStatus::Running => (2, 0),
                ThreadStatus::BlockedMonitor(a) => (3, self.obj_serial(a)),
                ThreadStatus::Waiting(a) => (4, self.obj_serial(a)),
                ThreadStatus::TimedWaiting(a) => (5, self.obj_serial(a)),
                ThreadStatus::Sleeping => (6, 0),
                ThreadStatus::JoinWaiting(x) => (7, x as u64),
                ThreadStatus::Terminated => (8, 0),
            };
            d.add(sd).add(sa);
            d.add(t.interrupted as u64);
            d.add(t.pending_push.map(|v| v as u64 ^ 0xFFFF).unwrap_or(0));
            for f in self.frames(t.tid) {
                d.add(f.method as u64).add(f.pc as u64).add(f.depth as u64);
                let cm = self.program.compiled(f.method);
                let Some(rm) = cm.ref_maps[f.pc as usize].as_ref() else {
                    continue;
                };
                let locals_base = f.fp + 3;
                for i in 0..f.nlocals as usize {
                    let v = self.heap.mem[locals_base as usize + i];
                    if rm.locals.get(i) {
                        d.add(0xF0 ^ self.obj_serial(v));
                        if v != NULL {
                            worklist.push(v);
                        }
                    } else {
                        d.add(v);
                    }
                }
                let stack_base = locals_base + f.nlocals as u64;
                for i in 0..f.depth {
                    let v = self.heap.mem[stack_base as usize + i];
                    if i < rm.stack_depth as usize && rm.stack.get(i) {
                        d.add(0xF1 ^ self.obj_serial(v));
                        if v != NULL {
                            worklist.push(v);
                        }
                    } else {
                        d.add(v);
                    }
                }
            }
        }

        // Loaded class statics.
        for (c, slot) in self.class_objects.iter().enumerate() {
            if let Some(a) = slot {
                d.add(0xC0 ^ c as u64);
                let layout = &self.program.static_layouts[c];
                for (i, ty) in layout.iter().enumerate() {
                    let v = self.heap.get_field(*a, i);
                    match ty {
                        Ty::Ref => {
                            d.add(0xF2 ^ self.obj_serial(v));
                            if v != NULL {
                                worklist.push(v);
                            }
                        }
                        Ty::Int => {
                            d.add(v);
                        }
                    }
                }
            }
        }

        // Reachable object graph, deterministic BFS.
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        while let Some(a) = worklist.pop() {
            let h = self.heap.header(a);
            if !visited.insert(h.serial) {
                continue;
            }
            d.add(0x0B1 ^ h.serial).add(h.class_id as u64);
            if h.is_stack {
                continue; // activation stacks digested via frames above
            }
            if h.is_array {
                let len = self.heap.array_len(a);
                d.add(len as u64);
                for i in 0..len {
                    let v = self.heap.get_elem(a, i);
                    if h.ref_elems {
                        d.add(0xF3 ^ self.obj_serial(v));
                        if v != NULL {
                            worklist.push(v);
                        }
                    } else {
                        d.add(v);
                    }
                }
            } else {
                let layout: &[Ty] = if h.is_classobj {
                    &self.program.static_layouts[h.class_id as usize]
                } else {
                    &self.program.field_layouts[h.class_id as usize]
                };
                for (i, ty) in layout.iter().enumerate() {
                    let v = self.heap.get_field(a, i);
                    match ty {
                        Ty::Ref => {
                            d.add(0xF4 ^ self.obj_serial(v));
                            if v != NULL {
                                worklist.push(v);
                            }
                        }
                        Ty::Int => {
                            d.add(v);
                        }
                    }
                }
            }
        }

        // Scheduler: monitors, sleepers, queues.
        d.add(0x5C4ED);
        for (&addr, m) in &self.sched.monitors {
            d.add(self.obj_serial(addr));
            d.add(m.owner.map(|t| t as u64 + 1).unwrap_or(0));
            d.add(m.recursion as u64);
            for e in &m.entry_queue {
                d.add(e.tid as u64)
                    .add(e.recursion as u64)
                    .add(e.push_status.map(|v| v as u64 + 1).unwrap_or(0));
            }
            for w in &m.wait_queue {
                d.add(w.tid as u64).add(w.recursion as u64);
            }
        }
        for s in &self.sched.sleepers {
            d.add(s.wake_at as u64).add(s.tid as u64);
        }
        for &t in &self.sched.ready {
            d.add(0x4EAD1 ^ t as u64);
        }

        // Output and status.
        for chunk in self.output.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            d.add(u64::from_le_bytes(w));
        }
        d.add(match self.status {
            VmStatus::Running => 1,
            VmStatus::Halted => 2,
            VmStatus::Deadlocked => 3,
            VmStatus::Error(e) => 0xE000 + e.kind as u64,
        });
        d.value()
    }

    /// Allocation serial of an object (0 for null) — the address-stable
    /// identity used in digests.
    fn obj_serial(&self, addr: Addr) -> u64 {
        if addr == NULL {
            0
        } else {
            self.heap.header(addr).serial
        }
    }
}

/// A complete copy of guest-visible VM state: everything needed to resume
/// execution from this point (the non-determinism sources — timer, wall
/// clock, natives — are exempt because a replayed VM never consults them).
/// This is the Igor/Boothe checkpoint object (paper §5).
#[derive(Clone)]
pub struct VmSnapshot {
    heap: crate::heap::HeapSnapshot,
    threads: Vec<ThreadState>,
    sched: Scheduler,
    cycles: u64,
    cycles_to_tick: u64,
    preempt_bit: bool,
    pending_switch: bool,
    instr_depth: u32,
    status: VmStatus,
    output: String,
    fingerprint: Fingerprint,
    counters: VmCounters,
    boot_image: BootImage,
    class_objects: Vec<Option<Addr>>,
    code_objects: Vec<Option<Addr>>,
    string_objects: Vec<Addr>,
    io_write_buf: Option<Addr>,
    io_read_buf: Option<Addr>,
    io_read_scratch: Option<Addr>,
    extra_roots: Vec<Addr>,
}

impl VmSnapshot {
    /// Approximate serialized size in bytes (dominated by the heap image).
    pub fn approx_bytes(&self) -> usize {
        // heap image + thread table + queues
        self.threads.len() * 96 + self.output.len() + self.heap_bytes()
    }

    fn heap_bytes(&self) -> usize {
        // HeapSnapshot is private-field; measure via a temporary accessor.
        std::mem::size_of_val(self) + self.output.len()
    }
}

impl Vm {
    /// Capture a checkpoint of all guest-visible state.
    pub fn snapshot(&self) -> VmSnapshot {
        VmSnapshot {
            heap: self.heap.snapshot(),
            threads: self.threads.clone(),
            sched: self.sched.clone(),
            cycles: self.cycles,
            cycles_to_tick: self.cycles_to_tick,
            preempt_bit: self.preempt_bit,
            pending_switch: self.pending_switch,
            instr_depth: self.instr_depth,
            status: self.status,
            output: self.output.clone(),
            fingerprint: self.fingerprint.clone(),
            counters: self.counters,
            boot_image: self.boot_image,
            class_objects: self.class_objects.clone(),
            code_objects: self.code_objects.clone(),
            string_objects: self.string_objects.clone(),
            io_write_buf: self.io_write_buf,
            io_read_buf: self.io_read_buf,
            io_read_scratch: self.io_read_scratch,
            extra_roots: self.extra_roots.clone(),
        }
    }

    /// Restore a checkpoint taken from this VM (same program/config).
    pub fn restore(&mut self, s: &VmSnapshot) {
        self.heap.restore(&s.heap);
        self.threads.clone_from(&s.threads);
        self.sched.clone_from(&s.sched);
        self.cycles = s.cycles;
        self.cycles_to_tick = s.cycles_to_tick;
        self.preempt_bit = s.preempt_bit;
        self.pending_switch = s.pending_switch;
        self.instr_depth = s.instr_depth;
        self.status = s.status;
        self.output.clone_from(&s.output);
        self.fingerprint = s.fingerprint.clone();
        self.counters = s.counters;
        self.boot_image = s.boot_image;
        self.class_objects.clone_from(&s.class_objects);
        self.code_objects.clone_from(&s.code_objects);
        self.string_objects.clone_from(&s.string_objects);
        self.io_write_buf = s.io_write_buf;
        self.io_read_buf = s.io_read_buf;
        self.io_read_scratch = s.io_read_scratch;
        self.extra_roots.clone_from(&s.extra_roots);
        // Telemetry is observer state, not guest state: a snapshot never
        // captures it, and a restore clears the ring so it only ever
        // describes the current timeline (histograms keep accumulating).
        self.telem.on_restore();
    }

    /// Approximate checkpoint size in bytes (heap image dominates).
    pub fn snapshot_size_bytes(&self) -> usize {
        self.heap.snapshot_bytes() + self.threads.len() * 96 + self.output.len()
    }
}

/// One activation frame, as seen by the GC / debugger / digest.
#[derive(Debug, Clone, Copy)]
pub struct FrameView {
    pub fp: Addr,
    pub method: MethodId,
    pub pc: u32,
    pub nlocals: u16,
    /// Operand-stack depth.
    pub depth: usize,
}
