//! Type-accurate garbage collection (paper §1).
//!
//! "To avoid memory leaks associated with conservative garbage collection
//! and to allow copying garbage collection, all of Jalapeño's garbage
//! collectors are type-accurate. This means that every reference to a live
//! object must be identified during garbage collection. Identifying such
//! references in the frames of a thread's activation stack is particularly
//! problematic" — which the per-pc **reference maps** of [`crate::compile`]
//! solve. GC can only trigger at allocation sites, and every thread that is
//! not running is stopped at a safe point (a yield point, a blocked
//! operation, or a call site), so a valid reference map exists for every
//! frame of every thread.
//!
//! Two collectors are provided, selected by [`crate::heap::GcKind`]:
//!
//! * **mark-sweep**: non-moving, address-ordered first-fit free list;
//! * **semispace copying**: moves objects (Cheney scan). Frame slots inside
//!   activation-stack arrays are forwarded precisely via reference maps,
//!   and the frame-pointer chain is rebased. Identity hashes survive moves
//!   because they are allocation serials.
//!
//! Both collectors are fully deterministic, which is load-bearing for the
//! paper's replay strategy: "the archetypical Java runtime service —
//! automatic memory management — is completely deterministic in Jalapeño."

use crate::heap::{forward_target, forward_word, is_forwarded, Addr, GcKind, Header, RESERVED};
use crate::thread::ThreadStatus;
use crate::vm::Vm;

/// Collect garbage. Called by the VM when an allocation fails.
pub fn collect(vm: &mut Vm) {
    // Occupancy peaks immediately before a collection; sample it here.
    vm.heap.note_peak();
    let words_before = vm.heap.stats.words_copied_or_swept;
    if let Some(p) = vm.telem.profile.as_deref_mut() {
        p.phase_begin(
            vm.sched.current,
            telemetry::profile::PHASE_GC,
            vm.heap.stats.collections + 1,
            vm.cycles,
        );
    }
    match vm.heap.kind() {
        GcKind::MarkSweep => mark_sweep(vm),
        GcKind::Copying => copying(vm),
    }
    vm.heap.stats.collections += 1;
    vm.fingerprint.event(0x6C, vm.heap.stats.collections, 0);
    let tid = vm.sched.current;
    vm.telem.event(
        tid,
        telemetry::EventKind::Gc {
            collection: vm.heap.stats.collections,
        },
    );
    if let Some(p) = vm.telem.profile.as_deref_mut() {
        // Zero-width in logical time (GC runs between guest instructions);
        // the work done is carried in the arg instead.
        p.phase_end(
            tid,
            telemetry::profile::PHASE_GC,
            vm.heap.stats.words_copied_or_swept - words_before,
            vm.cycles,
        );
    }
}

/// Every root *slot address-independent value* in the VM. Used by mark;
/// the copying collector instead updates slots in place.
fn root_values(vm: &Vm) -> Vec<Addr> {
    let mut roots = Vec::new();
    for t in &vm.threads {
        if t.thread_obj != 0 {
            roots.push(t.thread_obj);
        }
        if t.stack_obj != 0 {
            roots.push(t.stack_obj);
        }
        match t.status {
            ThreadStatus::BlockedMonitor(a)
            | ThreadStatus::Waiting(a)
            | ThreadStatus::TimedWaiting(a) => roots.push(a),
            _ => {}
        }
    }
    for slot in vm.class_objects.iter().flatten() {
        roots.push(*slot);
    }
    roots.extend(vm.string_objects.iter().copied());
    for slot in vm.code_objects.iter().flatten() {
        roots.push(*slot);
    }
    if let Some(a) = vm.io_write_buf {
        roots.push(a);
    }
    if let Some(a) = vm.io_read_buf {
        roots.push(a);
    }
    if let Some(a) = vm.io_read_scratch {
        roots.push(a);
    }
    if vm.boot_image.method_table != 0 {
        roots.push(vm.boot_image.method_table);
    }
    for &a in vm.sched.monitors.keys() {
        roots.push(a);
    }
    for s in &vm.sched.sleepers {
        if let Some(a) = s.monitor {
            roots.push(a);
        }
    }
    roots.extend(vm.extra_roots.iter().copied().filter(|&a| a != 0));
    roots.extend(vm.temp_roots.iter().copied().filter(|&a| a != 0));
    roots
}

/// Push every reference held in the frames of every thread.
fn frame_refs(vm: &Vm, out: &mut Vec<Addr>) {
    for tid in 0..vm.threads.len() {
        for f in vm.frames(tid as u32) {
            let Some(rm) = vm.program.compiled(f.method).ref_maps[f.pc as usize].as_ref() else {
                continue;
            };
            let locals_base = f.fp + 3;
            for i in rm.locals.iter_ones() {
                if i < f.nlocals as usize {
                    let v = vm.heap.mem[locals_base as usize + i];
                    if v != 0 {
                        out.push(v);
                    }
                }
            }
            let stack_base = locals_base + f.nlocals as u64;
            for i in rm.stack.iter_ones() {
                if i < f.depth {
                    let v = vm.heap.mem[stack_base as usize + i];
                    if v != 0 {
                        out.push(v);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Mark-sweep
// ---------------------------------------------------------------------

fn mark_sweep(vm: &mut Vm) {
    let mut worklist = root_values(vm);
    frame_refs(vm, &mut worklist);

    // Mark.
    while let Some(a) = worklist.pop() {
        let raw = vm.heap.raw_header(a);
        debug_assert!(!is_forwarded(raw));
        let h = Header::decode(raw);
        if h.marked {
            continue;
        }
        vm.heap
            .set_raw_header(a, Header { marked: true, ..h }.encode());
        push_children(vm, a, &h, &mut worklist);
    }

    // Sweep: linear heap parse, skipping known-free blocks.
    let total = vm.heap.total_words();
    let old_free = std::mem::take(&mut vm.heap.free);
    let mut new_free: Vec<(usize, usize)> = Vec::new();
    let mut fi = 0;
    let mut pos = RESERVED;
    let mut swept = 0u64;
    let add_free = |new_free: &mut Vec<(usize, usize)>, start: usize, len: usize| {
        if let Some(last) = new_free.last_mut() {
            if last.0 + last.1 == start {
                last.1 += len;
                return;
            }
        }
        new_free.push((start, len));
    };
    while pos < total {
        if fi < old_free.len() && old_free[fi].0 == pos {
            add_free(&mut new_free, pos, old_free[fi].1);
            pos += old_free[fi].1;
            fi += 1;
            continue;
        }
        let raw = vm.heap.raw_header(pos as Addr);
        let h = Header::decode(raw);
        let words = vm.heap.object_words(
            pos as Addr,
            &vm.program.field_layouts,
            &vm.program.static_layouts,
        );
        if h.marked {
            vm.heap
                .set_raw_header(pos as Addr, Header { marked: false, ..h }.encode());
        } else {
            add_free(&mut new_free, pos, words);
            swept += words as u64;
        }
        pos += words;
    }
    vm.heap.free = new_free;
    vm.heap.stats.words_copied_or_swept += swept;
}

fn push_children(vm: &Vm, a: Addr, h: &Header, out: &mut Vec<Addr>) {
    if h.is_stack {
        return; // scanned precisely via frames
    }
    if h.is_array {
        if h.ref_elems {
            let len = vm.heap.array_len(a);
            for i in 0..len {
                let v = vm.heap.get_elem(a, i);
                if v != 0 {
                    out.push(v);
                }
            }
        }
        return;
    }
    let layout = if h.is_classobj {
        &vm.program.static_layouts[h.class_id as usize]
    } else {
        &vm.program.field_layouts[h.class_id as usize]
    };
    for (i, ty) in layout.iter().enumerate() {
        if *ty == crate::bytecode::Ty::Ref {
            let v = vm.heap.get_field(a, i);
            if v != 0 {
                out.push(v);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Semispace copying
// ---------------------------------------------------------------------

fn copying(vm: &mut Vm) {
    let half = vm.heap.half;
    let from_base = vm.heap.active_base;
    let to_base = if from_base == RESERVED {
        RESERVED + half
    } else {
        RESERVED
    };
    let mut to_bump = to_base;

    // Forward one object: copy to to-space if not already, return new addr.
    fn forward(vm: &mut Vm, to_bump: &mut usize, a: Addr) -> Addr {
        if a == 0 {
            return 0;
        }
        let raw = vm.heap.raw_header(a);
        if is_forwarded(raw) {
            return forward_target(raw);
        }
        let words = vm
            .heap
            .object_words(a, &vm.program.field_layouts, &vm.program.static_layouts);
        let new = *to_bump as Addr;
        for i in 0..words {
            vm.heap.mem[*to_bump + i] = vm.heap.mem[a as usize + i];
        }
        *to_bump += words;
        vm.heap.set_raw_header(a, forward_word(new));
        vm.heap.stats.words_copied_or_swept += words as u64;
        new
    }

    // Phase 1: forward every root slot, updating the slots in place.
    for ti in 0..vm.threads.len() {
        let tobj = vm.threads[ti].thread_obj;
        let new_tobj = forward(vm, &mut to_bump, tobj);
        vm.threads[ti].thread_obj = new_tobj;
        let sobj = vm.threads[ti].stack_obj;
        if sobj != 0 {
            let new_sobj = forward(vm, &mut to_bump, sobj);
            let delta = new_sobj.wrapping_sub(sobj);
            let t = &mut vm.threads[ti];
            t.stack_obj = new_sobj;
            t.fp = t.fp.wrapping_add(delta);
            t.sp = t.sp.wrapping_add(delta);
            // Rebase the saved-fp chain inside the *new* copy.
            let mut fp = t.fp;
            loop {
                let sfp = vm.heap.mem[fp as usize];
                if sfp == 0 {
                    break;
                }
                let moved = sfp.wrapping_add(delta);
                vm.heap.mem[fp as usize] = moved;
                fp = moved;
            }
        }
        let st = vm.threads[ti].status;
        vm.threads[ti].status = match st {
            ThreadStatus::BlockedMonitor(a) => {
                ThreadStatus::BlockedMonitor(forward(vm, &mut to_bump, a))
            }
            ThreadStatus::Waiting(a) => ThreadStatus::Waiting(forward(vm, &mut to_bump, a)),
            ThreadStatus::TimedWaiting(a) => {
                ThreadStatus::TimedWaiting(forward(vm, &mut to_bump, a))
            }
            other => other,
        };
    }
    for ci in 0..vm.class_objects.len() {
        if let Some(a) = vm.class_objects[ci] {
            let new = forward(vm, &mut to_bump, a);
            vm.class_objects[ci] = Some(new);
        }
    }
    for si in 0..vm.string_objects.len() {
        let a = vm.string_objects[si];
        vm.string_objects[si] = forward(vm, &mut to_bump, a);
    }
    for mi in 0..vm.code_objects.len() {
        if let Some(a) = vm.code_objects[mi] {
            let new = forward(vm, &mut to_bump, a);
            vm.code_objects[mi] = Some(new);
        }
    }
    if let Some(a) = vm.io_write_buf {
        vm.io_write_buf = Some(forward(vm, &mut to_bump, a));
    }
    if let Some(a) = vm.io_read_buf {
        vm.io_read_buf = Some(forward(vm, &mut to_bump, a));
    }
    if let Some(a) = vm.io_read_scratch {
        vm.io_read_scratch = Some(forward(vm, &mut to_bump, a));
    }
    if vm.boot_image.method_table != 0 {
        let a = vm.boot_image.method_table;
        vm.boot_image.method_table = forward(vm, &mut to_bump, a);
    }
    for ri in 0..vm.extra_roots.len() {
        let a = vm.extra_roots[ri];
        if a != 0 {
            vm.extra_roots[ri] = forward(vm, &mut to_bump, a);
        }
    }
    for ri in 0..vm.temp_roots.len() {
        let a = vm.temp_roots[ri];
        if a != 0 {
            vm.temp_roots[ri] = forward(vm, &mut to_bump, a);
        }
    }
    // Monitors: rebuild the map with forwarded keys; sleeper monitors too.
    let monitors = std::mem::take(&mut vm.sched.monitors);
    let mut new_monitors = std::collections::BTreeMap::new();
    for (a, m) in monitors {
        let new = forward(vm, &mut to_bump, a);
        new_monitors.insert(new, m);
    }
    vm.sched.monitors = new_monitors;
    for si in 0..vm.sched.sleepers.len() {
        if let Some(a) = vm.sched.sleepers[si].monitor {
            let new = forward(vm, &mut to_bump, a);
            vm.sched.sleepers[si].monitor = Some(new);
        }
    }

    // Phase 2: forward every reference slot in every frame (the stacks
    // themselves have been copied; their payload still holds from-space
    // references).
    for tid in 0..vm.threads.len() as u32 {
        let frames = vm.frames(tid);
        for f in frames {
            let rm = vm.program.compiled(f.method).ref_maps[f.pc as usize]
                .clone()
                .expect("paused frame at unreachable pc");
            let locals_base = f.fp + 3;
            for i in rm.locals.iter_ones() {
                if i < f.nlocals as usize {
                    let v = vm.heap.mem[locals_base as usize + i];
                    if v != 0 {
                        let new = forward(vm, &mut to_bump, v);
                        vm.heap.mem[locals_base as usize + i] = new;
                    }
                }
            }
            let stack_base = locals_base + f.nlocals as u64;
            for i in rm.stack.iter_ones() {
                if i < f.depth {
                    let v = vm.heap.mem[stack_base as usize + i];
                    if v != 0 {
                        let new = forward(vm, &mut to_bump, v);
                        vm.heap.mem[stack_base as usize + i] = new;
                    }
                }
            }
        }
    }

    // Phase 3: Cheney scan of to-space.
    let mut scan = to_base;
    while scan < to_bump {
        let a = scan as Addr;
        let h = vm.heap.header(a);
        let words = vm
            .heap
            .object_words(a, &vm.program.field_layouts, &vm.program.static_layouts);
        if !h.is_stack {
            if h.is_array {
                if h.ref_elems {
                    let len = vm.heap.array_len(a);
                    for i in 0..len {
                        let v = vm.heap.get_elem(a, i);
                        if v != 0 {
                            let new = forward(vm, &mut to_bump, v);
                            vm.heap.set_elem(a, i, new);
                        }
                    }
                }
            } else {
                let layout: Vec<crate::bytecode::Ty> = if h.is_classobj {
                    vm.program.static_layouts[h.class_id as usize].clone()
                } else {
                    vm.program.field_layouts[h.class_id as usize].clone()
                };
                for (i, ty) in layout.iter().enumerate() {
                    if *ty == crate::bytecode::Ty::Ref {
                        let v = vm.heap.get_field(a, i);
                        if v != 0 {
                            let new = forward(vm, &mut to_bump, v);
                            vm.heap.set_field(a, i, new);
                        }
                    }
                }
            }
        }
        scan += words;
    }

    // Flip.
    vm.heap.active_base = to_base;
    vm.heap.bump = to_bump;
    // Scrub the old semispace in debug builds to catch stale pointers.
    #[cfg(debug_assertions)]
    {
        for w in &mut vm.heap.mem[from_base..from_base + half] {
            *w = 0xDEAD_DEAD_DEAD_DEAD;
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = from_base;
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::bytecode::Ty;
    use crate::clock::{CycleClock, FixedTimer};
    use crate::heap::GcKind;
    use crate::hook::Passthrough;
    use crate::interp::run;
    use crate::vm::{Vm, VmConfig, VmStatus};
    use std::sync::Arc;

    /// A program that allocates garbage in a loop while keeping a linked
    /// list alive, then checks the list — exercising the collector hard.
    fn churn_program() -> crate::program::Program {
        let mut pb = ProgramBuilder::new();
        let node = pb
            .class("Node")
            .field("v", Ty::Int)
            .field("next", Ty::Ref)
            .build();
        let m = pb.method("main", 0, 4).code(|a| {
            // Build a 50-node list: local0 = head.
            a.null().store(0);
            a.iconst(0).store(1);
            a.label("build");
            a.load(1).iconst(50).ge().if_nz("churn_init");
            a.new(node).store(2);
            a.load(2).load(1).put_field(0);
            a.load(2).load(0).put_field_ref(1);
            a.load(2).store(0);
            a.load(1).iconst(1).add().store(1);
            a.goto("build");
            // Allocate 2000 garbage arrays.
            a.label("churn_init");
            a.iconst(0).store(1);
            a.label("churn");
            a.load(1).iconst(2000).ge().if_nz("check");
            a.iconst(20).new_array_int().pop();
            a.load(1).iconst(1).add().store(1);
            a.goto("churn");
            // Sum the list: should be 0+1+...+49 = 1225.
            a.label("check");
            a.iconst(0).store(3);
            a.load(0).store(2);
            a.label("sum");
            a.load(2).null().ref_eq().if_nz("done");
            a.load(3).load(2).get_field(0).add().store(3);
            a.load(2).get_field_ref(1).store(2);
            a.goto("sum");
            a.label("done");
            a.load(3).print();
            a.halt();
        });
        pb.finish(m).unwrap()
    }

    fn run_churn(gc: GcKind) -> Vm {
        let p = churn_program();
        let mut vm = Vm::boot(
            Arc::new(p),
            VmConfig {
                heap_words: 16 * 1024, // small: forces many collections
                gc,
                ..VmConfig::default()
            },
            Box::new(FixedTimer::new(1000)),
            Box::new(CycleClock::new(0, 100)),
        )
        .unwrap();
        let mut hook = Passthrough;
        let st = run(&mut vm, &mut hook, 50_000_000);
        assert_eq!(st, VmStatus::Halted, "status: {:?}", vm.status);
        vm
    }

    #[test]
    fn mark_sweep_collects_and_preserves_liveness() {
        let vm = run_churn(GcKind::MarkSweep);
        assert_eq!(vm.output, "1225\n");
        assert!(vm.heap.stats.collections > 0, "GC must have run");
    }

    #[test]
    fn copying_collects_and_preserves_liveness() {
        let vm = run_churn(GcKind::Copying);
        assert_eq!(vm.output, "1225\n");
        assert!(vm.heap.stats.collections > 0, "GC must have run");
    }

    #[test]
    fn both_collectors_agree_on_program_behaviour() {
        let a = run_churn(GcKind::MarkSweep);
        let b = run_churn(GcKind::Copying);
        assert_eq!(a.output, b.output);
        // Identity (serial) based digests agree even though addresses moved.
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn identity_hash_stable_under_copying() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("O").field("x", Ty::Int).build();
        let m = pb.method("main", 0, 2).code(|a| {
            a.new(cls).store(0);
            a.load(0).identity_hash().store(1);
            // churn to force at least one copy
            a.iconst(0).put_static(cls, 0); // hmm no statics; use loop below
            a.halt();
        });
        // simpler: build program with statics-free churn
        let _ = m;
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("O").field("x", Ty::Int).build();
        let m = pb.method("main", 0, 3).code(|a| {
            a.new(cls).store(0);
            a.load(0).identity_hash().store(1);
            a.iconst(0).store(2);
            a.label("churn");
            a.load(2).iconst(500).ge().if_nz("check");
            a.iconst(30).new_array_int().pop();
            a.load(2).iconst(1).add().store(2);
            a.goto("churn");
            a.label("check");
            a.load(0).identity_hash().load(1).sub().print(); // 0 if stable
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let mut vm = Vm::boot(
            Arc::new(p),
            VmConfig {
                heap_words: 8 * 1024,
                gc: GcKind::Copying,
                ..VmConfig::default()
            },
            Box::new(FixedTimer::new(1000)),
            Box::new(CycleClock::new(0, 100)),
        )
        .unwrap();
        let mut hook = Passthrough;
        run(&mut vm, &mut hook, 10_000_000);
        assert!(vm.heap.stats.collections > 0);
        assert_eq!(vm.output, "0\n");
        let _ = cls;
    }

    #[test]
    fn oom_is_a_clean_error() {
        let mut pb = ProgramBuilder::new();
        let node = pb
            .class("Node")
            .field("v", Ty::Int)
            .field("next", Ty::Ref)
            .build();
        // Endless live list: must eventually OOM.
        let m = pb.method("main", 0, 2).code(|a| {
            a.null().store(0);
            a.label("top");
            a.new(node).store(1);
            a.load(1).load(0).put_field_ref(1);
            a.load(1).store(0);
            a.goto("top");
        });
        let p = pb.finish(m).unwrap();
        let mut vm = Vm::boot(
            Arc::new(p),
            VmConfig {
                heap_words: 4096,
                ..VmConfig::default()
            },
            Box::new(FixedTimer::new(1000)),
            Box::new(CycleClock::new(0, 100)),
        )
        .unwrap();
        let mut hook = Passthrough;
        let st = run(&mut vm, &mut hook, 10_000_000);
        assert!(
            matches!(st, VmStatus::Error(e) if e.kind == crate::vm::ErrKind::OutOfMemory),
            "got {st:?}"
        );
        let _ = node;
    }

    #[test]
    fn gc_with_multiple_threads_and_monitors() {
        let mut pb = ProgramBuilder::new();
        let g = pb
            .class("G")
            .static_field("lock", Ty::Ref)
            .static_field("sum", Ty::Int)
            .build();
        let lock_cls = pb.class("Lock").build();
        let worker = pb.method("worker", 0, 2).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(200).ge().if_nz("done");
            a.iconst(40).new_array_int().store(1); // garbage
            a.get_static(g, 0).monitor_enter();
            a.get_static(g, 1).iconst(1).add().put_static(g, 1);
            a.get_static(g, 0).monitor_exit();
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.ret();
        });
        let m = pb.method("main", 0, 2).code(|a| {
            a.new(lock_cls).put_static(g, 0);
            a.spawn(worker, 0).store(0);
            a.spawn(worker, 0).store(1);
            a.load(0).join();
            a.load(1).join();
            a.get_static(g, 1).print();
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        for gc in [GcKind::MarkSweep, GcKind::Copying] {
            let mut vm = Vm::boot(
                Arc::new(p.clone()),
                VmConfig {
                    heap_words: 16 * 1024,
                    gc,
                    ..VmConfig::default()
                },
                Box::new(FixedTimer::new(13)),
                Box::new(CycleClock::new(0, 100)),
            )
            .unwrap();
            let mut hook = Passthrough;
            let st = run(&mut vm, &mut hook, 50_000_000);
            assert_eq!(st, VmStatus::Halted);
            assert_eq!(vm.output, "400\n");
            assert!(vm.heap.stats.collections > 0);
        }
    }
}
