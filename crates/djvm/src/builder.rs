//! Assembler-style builder DSL for constructing guest programs.
//!
//! Workloads and tests use this instead of a textual assembler. Labels are
//! symbolic and resolved when the method is finished; the builder tracks a
//! current source line so the paper's line-number reflection example
//! (Fig. 3) has real data to chew on.
//!
//! ```
//! use djvm::builder::ProgramBuilder;
//!
//! let mut pb = ProgramBuilder::new();
//! let entry = pb.method("main", 0, 1).code(|a| {
//!     a.iconst(0).store(0);
//!     a.label("loop");
//!     a.load(0).iconst(1).add().store(0);
//!     a.load(0).iconst(10).lt().if_nz("loop");
//!     a.load(0).print();
//!     a.halt();
//! });
//! let program = pb.finish(entry).unwrap();
//! // user method + injected builtin helper methods
//! assert!(program.methods.len() >= 1);
//! assert_eq!(program.entry, entry);
//! ```

use crate::bytecode::{ClassId, MethodId, NativeId, Op, StrId, Ty};
use crate::compile::{compile_program, CompileError};
use crate::program::{Class, FieldDecl, Method, NativeDecl, Program};
use std::collections::HashMap;

/// Builds a [`Program`], verifying and baseline-compiling it in
/// [`ProgramBuilder::finish`].
#[derive(Default)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    methods: Vec<Method>,
    strings: Vec<String>,
    string_ids: HashMap<String, StrId>,
    natives: Vec<NativeDecl>,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a class with no superclass.
    pub fn class(&mut self, name: &str) -> ClassBuilder<'_> {
        self.class_extends(name, None)
    }

    /// Start a class extending `super_class`.
    pub fn class_extends(&mut self, name: &str, super_class: Option<ClassId>) -> ClassBuilder<'_> {
        let (vtable, vslots) = match super_class {
            Some(s) => {
                let sc = &self.classes[s as usize];
                (sc.vtable.clone(), sc.vslots.clone())
            }
            None => (Vec::new(), HashMap::new()),
        };
        self.classes.push(Class {
            name: name.to_string(),
            super_class,
            fields: vec![],
            statics: vec![],
            vtable,
            vslots,
        });
        let id = (self.classes.len() - 1) as ClassId;
        ClassBuilder { pb: self, id }
    }

    /// Intern a string, returning its pool id.
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.strings.len() as StrId;
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), id);
        id
    }

    /// Declare a native function (its Rust implementation is registered on
    /// the VM via [`crate::native::NativeRegistry`]).
    pub fn native(&mut self, name: &str, nargs: u8, returns: bool) -> NativeId {
        self.natives.push(NativeDecl {
            name: name.to_string(),
            nargs,
            returns,
        });
        (self.natives.len() - 1) as NativeId
    }

    /// Start a free (static) method with `nargs` int arguments.
    pub fn method(&mut self, name: &str, nargs: u16, nlocals: u16) -> MethodBuilder<'_> {
        self.method_typed(name, vec![Ty::Int; nargs as usize], nlocals, None)
    }

    /// Start a free method returning an int.
    pub fn func(&mut self, name: &str, nargs: u16, nlocals: u16) -> MethodBuilder<'_> {
        self.method_typed(name, vec![Ty::Int; nargs as usize], nlocals, Some(Ty::Int))
    }

    /// Start a free method with explicit argument types and return type.
    pub fn method_typed(
        &mut self,
        name: &str,
        arg_types: Vec<Ty>,
        nlocals: u16,
        ret: Option<Ty>,
    ) -> MethodBuilder<'_> {
        let nargs = arg_types.len() as u16;
        assert!(nlocals >= nargs, "nlocals must cover the arguments");
        self.methods.push(Method {
            name: name.to_string(),
            owner: None,
            nargs,
            nlocals,
            arg_types,
            ret,
            ops: vec![],
            lines: vec![],
            compiled: None,
        });
        let id = (self.methods.len() - 1) as MethodId;
        MethodBuilder {
            pb: self,
            id,
            asm: Asm::empty(),
        }
    }

    /// Start a virtual method on `owner`; the receiver is argument 0 (a
    /// Ref). Installs/overrides the vtable slot named `name`.
    pub fn virtual_method(
        &mut self,
        owner: ClassId,
        name: &str,
        extra_args: Vec<Ty>,
        nlocals: u16,
        ret: Option<Ty>,
    ) -> MethodBuilder<'_> {
        let mut arg_types = vec![Ty::Ref];
        arg_types.extend(extra_args);
        let nargs = arg_types.len() as u16;
        assert!(nlocals >= nargs);
        self.methods.push(Method {
            name: name.to_string(),
            owner: Some(owner),
            nargs,
            nlocals,
            arg_types,
            ret,
            ops: vec![],
            lines: vec![],
            compiled: None,
        });
        let id = (self.methods.len() - 1) as MethodId;
        let class = &mut self.classes[owner as usize];
        if let Some(&slot) = class.vslots.get(name) {
            class.vtable[slot as usize] = id;
        } else {
            let slot = class.vtable.len() as u16;
            class.vtable.push(id);
            class.vslots.insert(name.to_string(), slot);
        }
        MethodBuilder {
            pb: self,
            id,
            asm: Asm::empty(),
        }
    }

    /// The vtable slot of a named virtual method on a class.
    pub fn vslot(&self, class: ClassId, name: &str) -> u16 {
        *self.classes[class as usize]
            .vslots
            .get(name)
            .unwrap_or_else(|| panic!("no virtual method {name}"))
    }

    /// Verify and baseline-compile the program with entry method `entry`.
    pub fn finish(self, entry: MethodId) -> Result<Program, CompileError> {
        let mut program = Program {
            classes: self.classes,
            methods: self.methods,
            strings: self.strings,
            natives: self.natives,
            entry,
            ..Default::default()
        };
        compile_program(&mut program)?;
        Ok(program)
    }
}

/// Fluent class-definition helper returned by [`ProgramBuilder::class`].
pub struct ClassBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    id: ClassId,
}

impl ClassBuilder<'_> {
    pub fn field(self, name: &str, ty: Ty) -> Self {
        self.pb.classes[self.id as usize].fields.push(FieldDecl {
            name: name.to_string(),
            ty,
        });
        self
    }

    pub fn static_field(self, name: &str, ty: Ty) -> Self {
        self.pb.classes[self.id as usize].statics.push(FieldDecl {
            name: name.to_string(),
            ty,
        });
        self
    }

    /// Flattened index of a declared instance field (for GetField/PutField).
    pub fn field_index(&self, name: &str) -> u16 {
        field_index_of(&self.pb.classes, self.id, name)
    }

    pub fn id(&self) -> ClassId {
        self.id
    }

    pub fn build(self) -> ClassId {
        self.id
    }
}

/// Flattened instance-field index for `name` on `class` (inherited fields
/// come first).
pub fn field_index_of(classes: &[Class], class: ClassId, name: &str) -> u16 {
    fn flatten(classes: &[Class], class: ClassId, out: &mut Vec<String>) {
        let c = &classes[class as usize];
        if let Some(s) = c.super_class {
            flatten(classes, s, out);
        }
        out.extend(c.fields.iter().map(|f| f.name.clone()));
    }
    let mut names = Vec::new();
    flatten(classes, class, &mut names);
    names
        .iter()
        .position(|n| n == name)
        .unwrap_or_else(|| panic!("no field {name}")) as u16
}

/// Method-body assembler with symbolic labels.
pub struct MethodBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    id: MethodId,
    asm: Asm,
}

impl MethodBuilder<'_> {
    /// Assemble the body with closure `f` and finish the method, returning
    /// its id.
    pub fn code(mut self, f: impl FnOnce(&mut Asm)) -> MethodId {
        f(&mut self.asm);
        let (ops, lines) = self.asm.finish();
        let m = &mut self.pb.methods[self.id as usize];
        m.ops = ops;
        m.lines = lines;
        self.id
    }

    /// Like [`MethodBuilder::code`] but gives the closure access to the
    /// program builder too (for interning strings mid-body).
    pub fn code_with(mut self, f: impl FnOnce(&mut Asm, &mut ProgramBuilder)) -> MethodId {
        f(&mut self.asm, self.pb);
        let (ops, lines) = self.asm.finish();
        let m = &mut self.pb.methods[self.id as usize];
        m.ops = ops;
        m.lines = lines;
        self.id
    }

    pub fn id(&self) -> MethodId {
        self.id
    }
}

/// The instruction assembler. Every emit method returns `&mut Self` so
/// straight-line sequences chain fluently.
pub struct Asm {
    ops: Vec<Op>,
    lines: Vec<u32>,
    line: u32,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
}

impl Asm {
    fn empty() -> Self {
        Self {
            ops: vec![],
            lines: vec![],
            line: 1,
            labels: HashMap::new(),
            fixups: vec![],
        }
    }

    fn emit(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self.lines.push(self.line);
        self
    }

    /// Set the current source line for subsequently emitted instructions.
    pub fn line(&mut self, line: u32) -> &mut Self {
        self.line = line;
        self
    }

    /// Define a label at the current pc.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_string(), self.ops.len() as u32);
        assert!(prev.is_none(), "duplicate label {name}");
        self
    }

    fn branch(&mut self, make: fn(u32) -> Op, target: &str) -> &mut Self {
        self.fixups.push((self.ops.len(), target.to_string()));
        self.emit(make(u32::MAX))
    }

    // -- constants / locals / stack --
    pub fn iconst(&mut self, v: i64) -> &mut Self {
        self.emit(Op::Const(v))
    }
    pub fn null(&mut self) -> &mut Self {
        self.emit(Op::Null)
    }
    pub fn strref(&mut self, s: StrId) -> &mut Self {
        self.emit(Op::Str(s))
    }
    pub fn load(&mut self, n: u16) -> &mut Self {
        self.emit(Op::Load(n))
    }
    pub fn store(&mut self, n: u16) -> &mut Self {
        self.emit(Op::Store(n))
    }
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Op::Dup)
    }
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Op::Pop)
    }
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Op::Swap)
    }

    // -- arithmetic --
    pub fn add(&mut self) -> &mut Self {
        self.emit(Op::Add)
    }
    pub fn sub(&mut self) -> &mut Self {
        self.emit(Op::Sub)
    }
    pub fn mul(&mut self) -> &mut Self {
        self.emit(Op::Mul)
    }
    pub fn div(&mut self) -> &mut Self {
        self.emit(Op::Div)
    }
    pub fn rem(&mut self) -> &mut Self {
        self.emit(Op::Rem)
    }
    pub fn neg(&mut self) -> &mut Self {
        self.emit(Op::Neg)
    }
    pub fn band(&mut self) -> &mut Self {
        self.emit(Op::BitAnd)
    }
    pub fn bor(&mut self) -> &mut Self {
        self.emit(Op::BitOr)
    }
    pub fn bxor(&mut self) -> &mut Self {
        self.emit(Op::BitXor)
    }
    pub fn shl(&mut self) -> &mut Self {
        self.emit(Op::Shl)
    }
    pub fn shr(&mut self) -> &mut Self {
        self.emit(Op::Shr)
    }

    // -- comparisons --
    pub fn eq(&mut self) -> &mut Self {
        self.emit(Op::Eq)
    }
    pub fn ne(&mut self) -> &mut Self {
        self.emit(Op::Ne)
    }
    pub fn lt(&mut self) -> &mut Self {
        self.emit(Op::Lt)
    }
    pub fn le(&mut self) -> &mut Self {
        self.emit(Op::Le)
    }
    pub fn gt(&mut self) -> &mut Self {
        self.emit(Op::Gt)
    }
    pub fn ge(&mut self) -> &mut Self {
        self.emit(Op::Ge)
    }
    pub fn ref_eq(&mut self) -> &mut Self {
        self.emit(Op::RefEq)
    }

    // -- control flow --
    pub fn goto(&mut self, target: &str) -> &mut Self {
        self.branch(Op::Goto, target)
    }
    /// Pop; branch if non-zero.
    pub fn if_nz(&mut self, target: &str) -> &mut Self {
        self.branch(Op::If, target)
    }
    /// Pop; branch if zero.
    pub fn if_z(&mut self, target: &str) -> &mut Self {
        self.branch(Op::IfZ, target)
    }

    // -- objects --
    pub fn new(&mut self, class: ClassId) -> &mut Self {
        self.emit(Op::New(class))
    }
    /// Load an Int instance field.
    pub fn get_field(&mut self, idx: u16) -> &mut Self {
        self.emit(Op::GetField { idx, ty: Ty::Int })
    }
    /// Load a Ref instance field.
    pub fn get_field_ref(&mut self, idx: u16) -> &mut Self {
        self.emit(Op::GetField { idx, ty: Ty::Ref })
    }
    /// Store an Int instance field.
    pub fn put_field(&mut self, idx: u16) -> &mut Self {
        self.emit(Op::PutField { idx, ty: Ty::Int })
    }
    /// Store a Ref instance field.
    pub fn put_field_ref(&mut self, idx: u16) -> &mut Self {
        self.emit(Op::PutField { idx, ty: Ty::Ref })
    }
    pub fn get_static(&mut self, class: ClassId, n: u16) -> &mut Self {
        self.emit(Op::GetStatic(class, n))
    }
    pub fn put_static(&mut self, class: ClassId, n: u16) -> &mut Self {
        self.emit(Op::PutStatic(class, n))
    }
    pub fn new_array_int(&mut self) -> &mut Self {
        self.emit(Op::NewArray(Ty::Int))
    }
    pub fn new_array_ref(&mut self) -> &mut Self {
        self.emit(Op::NewArray(Ty::Ref))
    }
    /// Load from an int array.
    pub fn aload(&mut self) -> &mut Self {
        self.emit(Op::ALoad(Ty::Int))
    }
    /// Load from a ref array.
    pub fn aload_ref(&mut self) -> &mut Self {
        self.emit(Op::ALoad(Ty::Ref))
    }
    /// Store into an int array.
    pub fn astore(&mut self) -> &mut Self {
        self.emit(Op::AStore(Ty::Int))
    }
    /// Store into a ref array.
    pub fn astore_ref(&mut self) -> &mut Self {
        self.emit(Op::AStore(Ty::Ref))
    }
    pub fn array_len(&mut self) -> &mut Self {
        self.emit(Op::ArrayLen)
    }
    pub fn identity_hash(&mut self) -> &mut Self {
        self.emit(Op::IdentityHash)
    }
    pub fn instance_of(&mut self, class: ClassId) -> &mut Self {
        self.emit(Op::InstanceOf(class))
    }

    // -- calls --
    pub fn call(&mut self, m: MethodId) -> &mut Self {
        self.emit(Op::Call(m))
    }
    pub fn call_virtual(&mut self, class: ClassId, slot: u16) -> &mut Self {
        self.emit(Op::CallVirtual { class, slot })
    }
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Op::Ret)
    }
    pub fn ret_val(&mut self) -> &mut Self {
        self.emit(Op::RetVal)
    }

    // -- synchronization --
    pub fn monitor_enter(&mut self) -> &mut Self {
        self.emit(Op::MonitorEnter)
    }
    pub fn monitor_exit(&mut self) -> &mut Self {
        self.emit(Op::MonitorExit)
    }
    pub fn wait(&mut self) -> &mut Self {
        self.emit(Op::Wait)
    }
    pub fn timed_wait(&mut self) -> &mut Self {
        self.emit(Op::TimedWait)
    }
    pub fn notify(&mut self) -> &mut Self {
        self.emit(Op::Notify)
    }
    pub fn notify_all(&mut self) -> &mut Self {
        self.emit(Op::NotifyAll)
    }

    // -- threads --
    pub fn spawn(&mut self, method: MethodId, nargs: u8) -> &mut Self {
        self.emit(Op::Spawn { method, nargs })
    }
    pub fn join(&mut self) -> &mut Self {
        self.emit(Op::Join)
    }
    pub fn interrupt(&mut self) -> &mut Self {
        self.emit(Op::Interrupt)
    }
    pub fn yield_now(&mut self) -> &mut Self {
        self.emit(Op::YieldNow)
    }
    pub fn sleep(&mut self) -> &mut Self {
        self.emit(Op::Sleep)
    }
    pub fn current_thread(&mut self) -> &mut Self {
        self.emit(Op::CurrentThread)
    }

    // -- environment / misc --
    pub fn now(&mut self) -> &mut Self {
        self.emit(Op::Now)
    }
    pub fn native_call(&mut self, native: NativeId, nargs: u8) -> &mut Self {
        self.emit(Op::NativeCall { native, nargs })
    }
    pub fn print(&mut self) -> &mut Self {
        self.emit(Op::Print)
    }
    pub fn print_str(&mut self, s: StrId) -> &mut Self {
        self.emit(Op::PrintStr(s))
    }
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Op::Halt)
    }

    fn finish(mut self) -> (Vec<Op>, Vec<u32>) {
        for (pc, label) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(&label)
                .unwrap_or_else(|| panic!("undefined label {label}"));
            self.ops[pc] = match self.ops[pc] {
                Op::Goto(_) => Op::Goto(target),
                Op::If(_) => Op::If(target),
                Op::IfZ(_) => Op::IfZ(target),
                other => other,
            };
        }
        (self.ops, self.lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_backward_and_forward() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(3).ge().if_nz("done");
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let ops = &p.methods[0].ops;
        // the goto must point back at "top" (pc 2) and the if forward.
        assert_eq!(ops[ops.len() - 2], Op::Goto(2));
        assert!(matches!(ops[5], Op::If(t) if t as usize == ops.len() - 1));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut pb = ProgramBuilder::new();
        pb.method("m", 0, 0).code(|a| {
            a.label("x");
            a.label("x");
        });
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut pb = ProgramBuilder::new();
        pb.method("m", 0, 0).code(|a| {
            a.goto("nowhere");
        });
    }

    #[test]
    fn interning_deduplicates() {
        let mut pb = ProgramBuilder::new();
        let a = pb.intern("hello");
        let b = pb.intern("hello");
        let c = pb.intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vtable_inheritance_and_override() {
        let mut pb = ProgramBuilder::new();
        let base = pb.class("Base").build();
        let m1 = pb
            .virtual_method(base, "f", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(1).ret_val();
            });
        let derived = pb.class_extends("Derived", Some(base)).build();
        let m2 = pb
            .virtual_method(derived, "f", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(2).ret_val();
            });
        assert_eq!(pb.vslot(base, "f"), pb.vslot(derived, "f"));
        let main = pb.method("main", 0, 0).code(|a| {
            a.halt();
        });
        let p = pb.finish(main).unwrap();
        assert_eq!(p.classes[base as usize].vtable[0], m1);
        assert_eq!(p.classes[derived as usize].vtable[0], m2);
    }

    #[test]
    fn line_numbers_recorded() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 0).code(|a| {
            a.line(10).iconst(1).pop();
            a.line(20).halt();
        });
        let p = pb.finish(m).unwrap();
        assert_eq!(p.methods[0].lines, vec![10, 10, 20]);
    }
}
