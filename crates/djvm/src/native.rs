//! JNI-like native interface (paper §2.5).
//!
//! Native code can affect the guest only through **return values** and
//! **callbacks** — Jalapeño's JNI "does not allow native code to obtain
//! direct pointers into the Java heap", and neither does ours: natives see
//! integer arguments and produce an integer result plus an optional list of
//! callback invocations (guest methods to run with integer arguments).
//!
//! During record, DejaVu captures the result and the callback parameters;
//! during replay, the native is **not executed** — the recorded outcome is
//! regenerated at the corresponding execution point.

use crate::bytecode::{MethodId, NativeId};

/// A callback the native asks the VM to perform: run `method` with the
/// given integer arguments on the current thread (result discarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallbackReq {
    pub method: MethodId,
    pub args: Vec<i64>,
}

/// Everything a native call did that the guest can observe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NativeOutcome {
    /// Return value (ignored if the native is declared void).
    pub ret: i64,
    /// Callbacks to perform, in order, before the caller continues.
    pub callbacks: Vec<CallbackReq>,
}

impl NativeOutcome {
    pub fn value(ret: i64) -> Self {
        Self {
            ret,
            callbacks: Vec::new(),
        }
    }
}

/// Context handed to a native implementation.
pub struct NativeCtx<'a> {
    pub args: &'a [i64],
    /// The wall-clock value at call time (natives often depend on time).
    pub now_millis: i64,
}

/// A registered native implementation. `FnMut` so natives may carry their
/// own (non-deterministic) state, e.g. a seeded RNG or an input stream.
pub type NativeFn = Box<dyn FnMut(&NativeCtx) -> NativeOutcome + Send>;

/// Registry mapping declared natives to host implementations.
#[derive(Default)]
pub struct NativeRegistry {
    fns: Vec<Option<NativeFn>>,
}

impl NativeRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&mut self, id: NativeId, f: NativeFn) {
        let i = id as usize;
        if i >= self.fns.len() {
            self.fns.resize_with(i + 1, || None);
        }
        self.fns[i] = Some(f);
    }

    /// Execute a native. Panics if unregistered — programs declare their
    /// natives, so an unregistered one is a harness bug, not a guest error.
    pub fn call(&mut self, id: NativeId, ctx: &NativeCtx) -> NativeOutcome {
        let f = self
            .fns
            .get_mut(id as usize)
            .and_then(|o| o.as_mut())
            .unwrap_or_else(|| panic!("native {id} not registered"));
        f(ctx)
    }

    pub fn is_registered(&self, id: NativeId) -> bool {
        self.fns.get(id as usize).is_some_and(|o| o.is_some())
    }
}

impl std::fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeRegistry({} slots)", self.fns.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_call() {
        let mut r = NativeRegistry::new();
        r.register(0, Box::new(|ctx| NativeOutcome::value(ctx.args[0] * 2)));
        let out = r.call(
            0,
            &NativeCtx {
                args: &[21],
                now_millis: 0,
            },
        );
        assert_eq!(out.ret, 42);
        assert!(out.callbacks.is_empty());
    }

    #[test]
    fn stateful_native() {
        let mut r = NativeRegistry::new();
        let mut counter = 0i64;
        r.register(
            0,
            Box::new(move |_| {
                counter += 1;
                NativeOutcome::value(counter)
            }),
        );
        let ctx = NativeCtx {
            args: &[],
            now_millis: 0,
        };
        assert_eq!(r.call(0, &ctx).ret, 1);
        assert_eq!(r.call(0, &ctx).ret, 2);
    }

    #[test]
    fn callbacks_carried() {
        let mut r = NativeRegistry::new();
        r.register(
            3,
            Box::new(|_| NativeOutcome {
                ret: 0,
                callbacks: vec![CallbackReq {
                    method: 7,
                    args: vec![1, 2],
                }],
            }),
        );
        let out = r.call(
            3,
            &NativeCtx {
                args: &[],
                now_millis: 0,
            },
        );
        assert_eq!(out.callbacks.len(), 1);
        assert_eq!(out.callbacks[0].method, 7);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_panics() {
        let mut r = NativeRegistry::new();
        r.call(
            5,
            &NativeCtx {
                args: &[],
                now_millis: 0,
            },
        );
    }
}
