//! The baseline compiler: verification, reference maps, yield points.
//!
//! DejaVu runs on Jalapeño's *baseline* compiler (paper §1, footnote 2).
//! Our analogue performs, per method:
//!
//! 1. **Verification** — an abstract interpretation over slot types
//!    (`Int` / `Ref` / dead) that rejects stack underflow, type confusion,
//!    bad branch targets and signature mismatches.
//! 2. **Reference maps** (paper §1: "Jalapeño reference maps specify these
//!    locations for predefined safe-points") — for *every* pc, which locals
//!    and operand-stack slots hold references. The type-accurate GC walks
//!    paused frames with these maps.
//! 3. **Yield-point identification** — method prologues plus loop
//!    backedges, the only program points where a preemptive thread switch
//!    may occur, and hence the ticks of DejaVu's logical clock.
//! 4. **Frame sizing** — max operand-stack depth, so activation-stack
//!    overflow checks (and the eager-growth symmetry of §2.4) are exact.
//! 5. **Quickening** — every method is rewritten into an internal [`QOp`]
//!    stream with pre-decoded operands (jump targets carry their backedge
//!    bit, monomorphic virtual calls are devirtualized) and fused
//!    superinstructions for common pairs/triples. The quickened stream is
//!    *derived* metadata: it is recomputed on every compile (the codec
//!    never serializes it) and the interpreter's quickened dispatch loop
//!    is proven bit-identical to the unfused one (see `interp`).
//!
//! The pass also injects the VM's builtin classes and the interpreted
//! instrumentation helper methods (the boot-image analogue).

use crate::bytecode::{ClassId, MethodId, Op, Ty};
use crate::program::{Class, FieldDecl, Method, Program};
use std::collections::{HashMap, VecDeque};

/// Verifier slot type: `Dead` slots are unusable (uninitialized or merge of
/// incompatible types); they are treated as non-references by the GC, which
/// is sound because the verifier rejects any *use* of a dead slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsTy {
    Dead,
    Int,
    Ref,
}

impl AbsTy {
    fn merge(self, other: AbsTy) -> AbsTy {
        if self == other {
            self
        } else {
            AbsTy::Dead
        }
    }

    fn of(ty: Ty) -> AbsTy {
        match ty {
            Ty::Int => AbsTy::Int,
            Ty::Ref => AbsTy::Ref,
        }
    }
}

/// Which slots of a frame hold references at a given pc (state *before*
/// executing the instruction at that pc).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefMap {
    /// Operand stack depth at this pc.
    pub stack_depth: u16,
    /// Bit i set => local slot i holds a reference.
    pub locals: BitSet,
    /// Bit i set => operand-stack slot i (from the bottom) holds a reference.
    pub stack: BitSet,
}

/// A compact bitset over frame slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    pub fn set(&mut self, i: usize, v: bool) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if v {
            self.words[w] |= 1 << (i % 64);
        } else {
            self.words[w] &= !(1 << (i % 64));
        }
    }

    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }

    /// Build from a slice of booleans (index i set iff `bits[i]`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut s = Self::with_capacity(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.set(i, true);
            }
        }
        s
    }
}

/// Pre-decoded integer ALU function for the *fusible* binary ops. `Div`
/// and `Rem` are deliberately absent: they can fail (divide by zero), and
/// superinstruction constituents must be total so the quickened loop can
/// batch its cycle accounting ahead of the effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluFn {
    Add,
    Sub,
    Mul,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl AluFn {
    pub fn of(op: Op) -> Option<AluFn> {
        Some(match op {
            Op::Add => AluFn::Add,
            Op::Sub => AluFn::Sub,
            Op::Mul => AluFn::Mul,
            Op::BitAnd => AluFn::BitAnd,
            Op::BitOr => AluFn::BitOr,
            Op::BitXor => AluFn::BitXor,
            Op::Shl => AluFn::Shl,
            Op::Shr => AluFn::Shr,
            _ => return None,
        })
    }

    /// Must agree exactly with the generic interpreter's arithmetic.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluFn::Add => a.wrapping_add(b),
            AluFn::Sub => a.wrapping_sub(b),
            AluFn::Mul => a.wrapping_mul(b),
            AluFn::BitAnd => a & b,
            AluFn::BitOr => a | b,
            AluFn::BitXor => a ^ b,
            AluFn::Shl => a.wrapping_shl(b as u32 & 63),
            AluFn::Shr => a.wrapping_shr(b as u32 & 63),
        }
    }
}

/// Pre-decoded integer comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpFn {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpFn {
    pub fn of(op: Op) -> Option<CmpFn> {
        Some(match op {
            Op::Eq => CmpFn::Eq,
            Op::Ne => CmpFn::Ne,
            Op::Lt => CmpFn::Lt,
            Op::Le => CmpFn::Le,
            Op::Gt => CmpFn::Gt,
            Op::Ge => CmpFn::Ge,
            _ => return None,
        })
    }

    #[inline]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpFn::Eq => a == b,
            CmpFn::Ne => a != b,
            CmpFn::Lt => a < b,
            CmpFn::Le => a <= b,
            CmpFn::Gt => a > b,
            CmpFn::Ge => a >= b,
        }
    }
}

/// A quickened instruction. The quickened stream is a *parallel* array
/// with exactly one entry per source pc: a fused superinstruction lives at
/// its head pc, while every interior pc keeps its own single-op quickened
/// form. Jumps into the middle of a fusion therefore need no pc remapping,
/// and the interpreter can resume mid-pattern after a timer split, an
/// access-gate retry, or a thread switch.
///
/// Only ops that cannot fail, block, allocate, emit telemetry, or consult
/// the hook are given fast quickened forms — everything else is `Gen` and
/// runs through the generic one-instruction path, which keeps the error /
/// gate / instrumentation semantics in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QOp {
    /// Not quickened: execute via the generic interpreter path.
    Gen(Op),
    // ---- pre-decoded singles (width 1) ----
    Const(i64),
    Load(u16),
    Store(u16),
    Dup,
    Pop,
    Swap,
    Neg,
    RefEq,
    Alu(AluFn),
    Cmp(CmpFn),
    /// Branches carry their backedge bit so the dispatch loop needs no
    /// side-table probe.
    Goto {
        target: u32,
        backedge: bool,
    },
    If {
        target: u32,
        backedge: bool,
    },
    IfZ {
        target: u32,
        backedge: bool,
    },
    /// `CallVirtual` whose receiver class is statically unique (no loaded
    /// subclass overrides the slot): dispatches directly to `callee` after
    /// the same null / subclass checks, skipping both vtable probes.
    CallMono {
        class: ClassId,
        callee: MethodId,
        nargs: u16,
    },
    // ---- superinstructions ----
    /// `Const v; Store local` (width 2).
    ConstStore {
        v: i64,
        local: u16,
    },
    /// `Load a; Load b; <alu>` (width 3).
    LoadLoadAlu {
        a: u16,
        b: u16,
        f: AluFn,
    },
    /// `Load a; Const v; <alu>` (width 3).
    LoadConstAlu {
        a: u16,
        v: i64,
        f: AluFn,
    },
    /// `<cmp>; If/IfZ target` (width 2). `jump_if` is the comparison
    /// result that takes the branch (`true` for `If`, `false` for `IfZ`).
    CmpIf {
        f: CmpFn,
        target: u32,
        backedge: bool,
        jump_if: bool,
    },
    /// `Load a; Const v; <cmp>; If/IfZ target` (width 4) — the canonical
    /// loop-exit test.
    LoadConstCmpIf {
        a: u16,
        v: i64,
        f: CmpFn,
        target: u32,
        backedge: bool,
        jump_if: bool,
    },
}

impl QOp {
    /// Number of source instructions this quickened op executes.
    #[inline]
    pub fn width(self) -> u32 {
        match self {
            QOp::ConstStore { .. } | QOp::CmpIf { .. } => 2,
            QOp::LoadLoadAlu { .. } | QOp::LoadConstAlu { .. } => 3,
            QOp::LoadConstCmpIf { .. } => 4,
            _ => 1,
        }
    }

    /// Index into the profiler's QOp attribution table (parallel to
    /// [`QOP_KIND_NAMES`]). One slot per variant: the profiler's per-QOp
    /// cycle counters are keyed by the *kind* of quickened op, not its
    /// operands.
    #[inline]
    pub fn kind_index(self) -> usize {
        match self {
            QOp::Gen(_) => 0,
            QOp::Const(_) => 1,
            QOp::Load(_) => 2,
            QOp::Store(_) => 3,
            QOp::Dup => 4,
            QOp::Pop => 5,
            QOp::Swap => 6,
            QOp::Neg => 7,
            QOp::RefEq => 8,
            QOp::Alu(_) => 9,
            QOp::Cmp(_) => 10,
            QOp::Goto { .. } => 11,
            QOp::If { .. } => 12,
            QOp::IfZ { .. } => 13,
            QOp::CallMono { .. } => 14,
            QOp::ConstStore { .. } => 15,
            QOp::LoadLoadAlu { .. } => 16,
            QOp::LoadConstAlu { .. } => 17,
            QOp::CmpIf { .. } => 18,
            QOp::LoadConstCmpIf { .. } => 19,
        }
    }
}

/// Number of [`QOp`] kinds ([`QOp::kind_index`] domain).
pub const QOP_KIND_COUNT: usize = 20;

/// Display names for the profiler's QOp attribution table, indexed by
/// [`QOp::kind_index`].
pub const QOP_KIND_NAMES: [&str; QOP_KIND_COUNT] = [
    "gen",
    "const",
    "load",
    "store",
    "dup",
    "pop",
    "swap",
    "neg",
    "ref_eq",
    "alu",
    "cmp",
    "goto",
    "if",
    "if_z",
    "call_mono",
    "const_store",
    "load_load_alu",
    "load_const_alu",
    "cmp_if",
    "load_const_cmp_if",
];

/// Baseline-compiler output attached to each method.
#[derive(Debug, Clone, Default)]
pub struct CompiledMethod {
    /// Maximum operand-stack depth over all pcs.
    pub max_stack: u16,
    /// Words needed for a frame: header (3) + locals + max_stack.
    pub frame_words: u32,
    /// Bit `pc` set — instruction at `pc` is a branch whose target is
    /// not after it. Taking it is a yield point.
    pub backedge: BitSet,
    /// Per-pc reference maps (None for unreachable code).
    pub ref_maps: Vec<Option<RefMap>>,
    /// Quickened instruction stream, parallel to the source ops (one entry
    /// per pc; fusion heads carry the superinstruction, interior pcs keep
    /// their single-op form). Derived metadata — never serialized.
    pub qops: Vec<QOp>,
}

impl CompiledMethod {
    /// Size of the method's "compiled code" object in words: one word per
    /// instruction plus a 4-word header. This is the guest-visible
    /// allocation the lazy compiler performs on first invocation, so it
    /// must stay a pure function of the method body (`ref_maps` is per-pc,
    /// hence exactly the instruction count — quickening must NOT change
    /// this, or it would perturb guest allocation order).
    pub fn code_words(&self) -> usize {
        self.ref_maps.len() + 4
    }
}

/// Words of frame header: saved fp, method id, saved pc/flags.
pub const FRAME_HEADER_WORDS: u32 = 3;

/// Verification / compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    StackUnderflow {
        method: String,
        pc: usize,
    },
    StackOverflowStatic {
        method: String,
        pc: usize,
    },
    TypeMismatch {
        method: String,
        pc: usize,
        expected: &'static str,
        found: &'static str,
    },
    BadLocal {
        method: String,
        pc: usize,
        local: u16,
    },
    DeadSlotUse {
        method: String,
        pc: usize,
        local: u16,
    },
    BadBranchTarget {
        method: String,
        pc: usize,
        target: u32,
    },
    FallsOffEnd {
        method: String,
    },
    BadCallee {
        method: String,
        pc: usize,
    },
    SignatureMismatch {
        method: String,
        pc: usize,
        detail: String,
    },
    InconsistentStackDepth {
        method: String,
        pc: usize,
    },
    BadStaticField {
        method: String,
        pc: usize,
    },
    ReturnMismatch {
        method: String,
        pc: usize,
    },
    EmptyMethod {
        method: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::StackUnderflow { method, pc } => {
                write!(f, "{method}@{pc}: operand stack underflow")
            }
            CompileError::StackOverflowStatic { method, pc } => {
                write!(f, "{method}@{pc}: operand stack exceeds limit")
            }
            CompileError::TypeMismatch {
                method,
                pc,
                expected,
                found,
            } => {
                write!(f, "{method}@{pc}: expected {expected}, found {found}")
            }
            CompileError::BadLocal { method, pc, local } => {
                write!(f, "{method}@{pc}: local {local} out of range")
            }
            CompileError::DeadSlotUse { method, pc, local } => {
                write!(f, "{method}@{pc}: use of dead/uninitialized local {local}")
            }
            CompileError::BadBranchTarget { method, pc, target } => {
                write!(f, "{method}@{pc}: branch target {target} out of range")
            }
            CompileError::FallsOffEnd { method } => {
                write!(f, "{method}: control falls off the end of the method")
            }
            CompileError::BadCallee { method, pc } => {
                write!(f, "{method}@{pc}: callee does not exist")
            }
            CompileError::SignatureMismatch { method, pc, detail } => {
                write!(f, "{method}@{pc}: signature mismatch: {detail}")
            }
            CompileError::InconsistentStackDepth { method, pc } => {
                write!(f, "{method}@{pc}: inconsistent stack depth at merge point")
            }
            CompileError::BadStaticField { method, pc } => {
                write!(f, "{method}@{pc}: static field out of range")
            }
            CompileError::ReturnMismatch { method, pc } => {
                write!(f, "{method}@{pc}: return does not match method signature")
            }
            CompileError::EmptyMethod { method } => write!(f, "{method}: empty body"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Hard cap on operand-stack depth per frame (catches runaway codegen).
const MAX_OPERAND_STACK: usize = 4096;

/// Inject builtins, compute layouts, verify and compile every method.
pub fn compile_program(program: &mut Program) -> Result<(), CompileError> {
    inject_builtins(program);
    program.field_layouts = (0..program.classes.len())
        .map(|c| {
            program
                .flattened_fields(c as ClassId)
                .iter()
                .map(|f| f.ty)
                .collect()
        })
        .collect();
    program.static_layouts = program
        .classes
        .iter()
        .map(|c| c.statics.iter().map(|f| f.ty).collect())
        .collect();

    for id in 0..program.methods.len() {
        let compiled = compile_method(program, id as MethodId)?;
        program.methods[id].compiled = Some(compiled);
    }
    Ok(())
}

fn inject_builtins(program: &mut Program) {
    let mut class_by_name: HashMap<String, ClassId> = program
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.clone(), i as ClassId))
        .collect();
    let mut ensure_class = |program: &mut Program, name: &str, fields: Vec<(&str, Ty)>| {
        if let Some(&id) = class_by_name.get(name) {
            return id;
        }
        program.classes.push(Class {
            name: name.to_string(),
            super_class: None,
            fields: fields
                .into_iter()
                .map(|(n, ty)| FieldDecl { name: n.into(), ty })
                .collect(),
            statics: vec![],
            vtable: vec![],
            vslots: HashMap::new(),
        });
        let id = (program.classes.len() - 1) as ClassId;
        class_by_name.insert(name.to_string(), id);
        id
    };

    let thread_class = ensure_class(program, "Thread", vec![("tid", Ty::Int)]);
    let string_class = ensure_class(program, "String", vec![("chars", Ty::Ref)]);
    let vm_method_class = ensure_class(
        program,
        "VM_Method",
        vec![
            ("methodId", Ty::Int),
            ("name", Ty::Ref),
            ("lineTable", Ty::Ref),
        ],
    );

    // VM_Method.getLineNumberAt(offset): the reflective query of Fig. 3.
    //   if (offset >= lineTable.length) return 0; return lineTable[offset];
    // Injection must be idempotent — a program that already carries the
    // builtins (e.g. one decoded from the JSON codec and recompiled) is
    // re-resolved, never extended twice.
    let existing_glna = {
        let c = &program.classes[vm_method_class as usize];
        c.vslots
            .get("getLineNumberAt")
            .map(|&slot| c.vtable[slot as usize])
    };
    let get_line_number_at = if let Some(id) = existing_glna {
        id
    } else {
        let line_table_idx = 2u16; // third field of VM_Method
        let ops = vec![
            Op::Load(0), // this
            Op::GetField {
                idx: line_table_idx,
                ty: Ty::Ref,
            }, // lineTable
            Op::Store(2),
            Op::Load(1), // offset
            Op::Load(2),
            Op::ArrayLen,
            Op::Lt,
            Op::If(10),
            Op::Const(0),
            Op::RetVal,
            Op::Load(2), // pc 10
            Op::Load(1),
            Op::ALoad(Ty::Int),
            Op::RetVal,
        ];
        let lines = vec![1; ops.len()];
        program.methods.push(Method {
            name: "getLineNumberAt".into(),
            owner: Some(vm_method_class),
            nargs: 2,
            nlocals: 3,
            arg_types: vec![Ty::Ref, Ty::Int],
            ret: Some(Ty::Int),
            ops,
            lines,
            compiled: None,
        });
        let id = (program.methods.len() - 1) as MethodId;
        let c = &mut program.classes[vm_method_class as usize];
        let slot = c.vtable.len() as u16;
        c.vtable.push(id);
        c.vslots.insert("getLineNumberAt".into(), slot);
        id
    };

    // Interpreted instrumentation helpers. Both loop (so they execute yield
    // points), but with *different* trip counts, frame sizes and call
    // depth: record's flush is deliberately heavier than replay's fill.
    // These asymmetries are what §2.4's symmetry machinery must hide — the
    // logical clock (liveClock) hides the differing yield-point counts,
    // pre-compilation hides the differing lazy-compilation footprints, and
    // eager stack growth hides the differing frame sizes.
    let make_helper = |program: &mut Program,
                       name: &str,
                       iters: i64,
                       body_pad: usize,
                       nlocals: u16,
                       nested: Option<MethodId>| {
        let mut ops = vec![Op::Const(0), Op::Store(1)];
        if let Some(callee) = nested {
            ops.push(Op::Const(2));
            ops.push(Op::Call(callee));
            ops.push(Op::Pop);
        }
        let loop_top = ops.len() as u32;
        ops.push(Op::Load(1)); // pc loop_top
        ops.push(Op::Const(iters));
        ops.push(Op::Ge);
        let exit_fix = ops.len();
        ops.push(Op::If(u32::MAX)); // patched below
        for _ in 0..body_pad {
            ops.push(Op::Load(0));
            ops.push(Op::Const(3));
            ops.push(Op::Add);
            ops.push(Op::Store(0));
        }
        ops.push(Op::Load(1));
        ops.push(Op::Const(1));
        ops.push(Op::Add);
        ops.push(Op::Store(1));
        ops.push(Op::Goto(loop_top));
        let exit = ops.len() as u32;
        ops[exit_fix] = Op::If(exit);
        ops.push(Op::Load(0));
        ops.push(Op::RetVal);
        let lines = vec![1; ops.len()];
        program.methods.push(Method {
            name: name.to_string(),
            owner: None,
            nargs: 1,
            nlocals,
            arg_types: vec![Ty::Int],
            ret: Some(Ty::Int),
            ops,
            lines,
            compiled: None,
        });
        (program.methods.len() - 1) as MethodId
    };

    // Leaf helper used only by the record-side flush: lazily compiling it
    // is an extra allocation that replay would never perform.
    let flush_low = program
        .method_id_by_name("sys$flushLow")
        .unwrap_or_else(|| make_helper(program, "sys$flushLow", 2, 0, 2, None));
    let flush_method = program
        .method_id_by_name("sys$flushTrace")
        .unwrap_or_else(|| make_helper(program, "sys$flushTrace", 8, 3, 10, Some(flush_low)));
    let fill_method = program
        .method_id_by_name("sys$fillTrace")
        .unwrap_or_else(|| make_helper(program, "sys$fillTrace", 5, 1, 2, None));

    // sys$getMethods: the VM_Dictionary.getMethods() analogue. Stub body —
    // a tool JVM *maps* this method (intercepting its invocation to return
    // a remote object); it is never meant to execute.
    let get_methods = program
        .method_id_by_name("sys$getMethods")
        .unwrap_or_else(|| {
            program.methods.push(Method {
                name: "sys$getMethods".into(),
                owner: None,
                nargs: 0,
                nlocals: 0,
                arg_types: vec![],
                ret: Some(Ty::Ref),
                ops: vec![Op::Null, Op::RetVal],
                lines: vec![1, 1],
                compiled: None,
            });
            (program.methods.len() - 1) as MethodId
        });

    // sys$lineNumberOf(methodNumber, offset): the paper's Figure 3 query:
    //   VM_Method[] mtable = VM_Dictionary.getMethods();
    //   VM_Method candidate = mtable[methodNumber];
    //   return candidate.getLineNumberAt(offset);
    let line_number_of = program
        .method_id_by_name("sys$lineNumberOf")
        .unwrap_or_else(|| {
            let slot = program.classes[vm_method_class as usize].vslots["getLineNumberAt"];
            program.methods.push(Method {
                name: "sys$lineNumberOf".into(),
                owner: None,
                nargs: 2,
                nlocals: 3,
                arg_types: vec![Ty::Int, Ty::Int],
                ret: Some(Ty::Int),
                ops: vec![
                    Op::Call(get_methods), // mtable
                    Op::Load(0),           // methodNumber
                    Op::ALoad(Ty::Ref),    // candidate
                    Op::Store(2),
                    Op::Load(2),
                    Op::Load(1), // offset
                    Op::CallVirtual {
                        class: vm_method_class,
                        slot,
                    },
                    Op::RetVal,
                ],
                lines: vec![2, 3, 3, 3, 4, 4, 4, 4],
                compiled: None,
            });
            (program.methods.len() - 1) as MethodId
        });

    program.builtins = crate::program::Builtins {
        thread_class,
        string_class,
        vm_method_class,
        flush_method,
        fill_method,
        get_methods,
        line_number_of,
        get_line_number_at,
    };
}

struct Verifier<'p> {
    program: &'p Program,
    method: &'p Method,
    name: String,
}

type State = (Vec<AbsTy>, Vec<AbsTy>); // (locals, stack)

impl<'p> Verifier<'p> {
    fn err_ty(&self, pc: usize, expected: &'static str, found: AbsTy) -> CompileError {
        CompileError::TypeMismatch {
            method: self.name.clone(),
            pc,
            expected,
            found: match found {
                AbsTy::Dead => "dead",
                AbsTy::Int => "int",
                AbsTy::Ref => "ref",
            },
        }
    }

    fn pop(&self, pc: usize, stack: &mut Vec<AbsTy>) -> Result<AbsTy, CompileError> {
        stack.pop().ok_or(CompileError::StackUnderflow {
            method: self.name.clone(),
            pc,
        })
    }

    fn pop_expect(
        &self,
        pc: usize,
        stack: &mut Vec<AbsTy>,
        want: AbsTy,
        what: &'static str,
    ) -> Result<(), CompileError> {
        let got = self.pop(pc, stack)?;
        if got != want {
            return Err(self.err_ty(pc, what, got));
        }
        Ok(())
    }

    fn check_args(
        &self,
        pc: usize,
        stack: &mut Vec<AbsTy>,
        callee: &Method,
    ) -> Result<(), CompileError> {
        // Args were pushed left to right: rightmost on top.
        for i in (0..callee.nargs as usize).rev() {
            let got = self.pop(pc, stack)?;
            let want = AbsTy::of(callee.arg_types[i]);
            if got != want {
                return Err(CompileError::SignatureMismatch {
                    method: self.name.clone(),
                    pc,
                    detail: format!("argument {i} of {}", callee.name),
                });
            }
        }
        Ok(())
    }

    fn run(&self) -> Result<CompiledMethod, CompileError> {
        let m = self.method;
        let n = m.ops.len();
        if n == 0 {
            return Err(CompileError::EmptyMethod {
                method: self.name.clone(),
            });
        }
        // Entry state: args in locals 0..nargs, rest dead, empty stack.
        let mut entry_locals = vec![AbsTy::Dead; m.nlocals as usize];
        for (i, &t) in m.arg_types.iter().enumerate() {
            entry_locals[i] = AbsTy::of(t);
        }
        let mut states: Vec<Option<State>> = vec![None; n];
        states[0] = Some((entry_locals, Vec::new()));
        let mut work: VecDeque<usize> = VecDeque::from([0]);

        let flow_to = |states: &mut Vec<Option<State>>,
                       work: &mut VecDeque<usize>,
                       pc: usize,
                       to: usize,
                       st: &State|
         -> Result<(), CompileError> {
            if to >= n {
                return Err(CompileError::BadBranchTarget {
                    method: self.name.clone(),
                    pc,
                    target: to as u32,
                });
            }
            match &mut states[to] {
                None => {
                    states[to] = Some(st.clone());
                    work.push_back(to);
                }
                Some(existing) => {
                    if existing.1.len() != st.1.len() {
                        return Err(CompileError::InconsistentStackDepth {
                            method: self.name.clone(),
                            pc: to,
                        });
                    }
                    let mut changed = false;
                    for (e, &v) in existing.0.iter_mut().zip(st.0.iter()) {
                        let merged = e.merge(v);
                        if merged != *e {
                            *e = merged;
                            changed = true;
                        }
                    }
                    for (e, &v) in existing.1.iter_mut().zip(st.1.iter()) {
                        let merged = e.merge(v);
                        if merged != *e {
                            *e = merged;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push_back(to);
                    }
                }
            }
            Ok(())
        };

        while let Some(pc) = work.pop_front() {
            let (mut locals, mut stack) = states[pc].clone().expect("state present");
            let op = m.ops[pc];
            let mut next: Vec<usize> = Vec::with_capacity(2);
            let mut terminal = false;

            macro_rules! bin_int {
                () => {{
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                    stack.push(AbsTy::Int);
                }};
            }

            match op {
                Op::Const(_) => stack.push(AbsTy::Int),
                Op::Null | Op::Str(_) => stack.push(AbsTy::Ref),
                Op::Load(i) => {
                    let i = i as usize;
                    if i >= locals.len() {
                        return Err(CompileError::BadLocal {
                            method: self.name.clone(),
                            pc,
                            local: i as u16,
                        });
                    }
                    if locals[i] == AbsTy::Dead {
                        return Err(CompileError::DeadSlotUse {
                            method: self.name.clone(),
                            pc,
                            local: i as u16,
                        });
                    }
                    stack.push(locals[i]);
                }
                Op::Store(i) => {
                    let i = i as usize;
                    if i >= locals.len() {
                        return Err(CompileError::BadLocal {
                            method: self.name.clone(),
                            pc,
                            local: i as u16,
                        });
                    }
                    let v = self.pop(pc, &mut stack)?;
                    if v == AbsTy::Dead {
                        return Err(self.err_ty(pc, "live value", v));
                    }
                    locals[i] = v;
                }
                Op::Dup => {
                    let v = self.pop(pc, &mut stack)?;
                    stack.push(v);
                    stack.push(v);
                }
                Op::Pop => {
                    self.pop(pc, &mut stack)?;
                }
                Op::Swap => {
                    let a = self.pop(pc, &mut stack)?;
                    let b = self.pop(pc, &mut stack)?;
                    stack.push(a);
                    stack.push(b);
                }
                Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Div
                | Op::Rem
                | Op::BitAnd
                | Op::BitOr
                | Op::BitXor
                | Op::Shl
                | Op::Shr => bin_int!(),
                Op::Neg => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                    stack.push(AbsTy::Int);
                }
                Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => bin_int!(),
                Op::RefEq => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    stack.push(AbsTy::Int);
                }
                Op::Goto(t) => {
                    next.push(t as usize);
                    terminal = true;
                }
                Op::If(t) | Op::IfZ(t) => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                    next.push(t as usize);
                }
                Op::New(c) => {
                    if c as usize >= self.program.classes.len() {
                        return Err(CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        });
                    }
                    stack.push(AbsTy::Ref);
                }
                Op::GetField { ty, .. } => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    stack.push(AbsTy::of(ty));
                }
                Op::PutField { ty, .. } => {
                    self.pop_expect(pc, &mut stack, AbsTy::of(ty), "field value")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                }
                Op::GetStatic(c, i) => {
                    let layout = self.program.classes.get(c as usize).ok_or(
                        CompileError::BadStaticField {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    let decl =
                        layout
                            .statics
                            .get(i as usize)
                            .ok_or(CompileError::BadStaticField {
                                method: self.name.clone(),
                                pc,
                            })?;
                    stack.push(AbsTy::of(decl.ty));
                }
                Op::PutStatic(c, i) => {
                    let layout = self.program.classes.get(c as usize).ok_or(
                        CompileError::BadStaticField {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    let decl =
                        layout
                            .statics
                            .get(i as usize)
                            .ok_or(CompileError::BadStaticField {
                                method: self.name.clone(),
                                pc,
                            })?;
                    self.pop_expect(pc, &mut stack, AbsTy::of(decl.ty), "static value")?;
                }
                Op::NewArray(_) => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int length")?;
                    stack.push(AbsTy::Ref);
                }
                Op::ALoad(ty) => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int index")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "array ref")?;
                    stack.push(AbsTy::of(ty));
                }
                Op::AStore(ty) => {
                    self.pop_expect(pc, &mut stack, AbsTy::of(ty), "element value")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int index")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "array ref")?;
                }
                Op::ArrayLen | Op::IdentityHash => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    stack.push(AbsTy::Int);
                }
                Op::InstanceOf(_) => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    stack.push(AbsTy::Int);
                }
                Op::Call(callee) => {
                    let callee = self.program.methods.get(callee as usize).ok_or(
                        CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    self.check_args(pc, &mut stack, callee)?;
                    if let Some(r) = callee.ret {
                        stack.push(AbsTy::of(r));
                    }
                }
                Op::CallVirtual { class, slot } => {
                    let c = self.program.classes.get(class as usize).ok_or(
                        CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    let &mid = c.vtable.get(slot as usize).ok_or(CompileError::BadCallee {
                        method: self.name.clone(),
                        pc,
                    })?;
                    let callee = &self.program.methods[mid as usize];
                    self.check_args(pc, &mut stack, callee)?;
                    if let Some(r) = callee.ret {
                        stack.push(AbsTy::of(r));
                    }
                }
                Op::Ret => {
                    if m.ret.is_some() {
                        return Err(CompileError::ReturnMismatch {
                            method: self.name.clone(),
                            pc,
                        });
                    }
                    terminal = true;
                }
                Op::RetVal => {
                    let want = m.ret.ok_or(CompileError::ReturnMismatch {
                        method: self.name.clone(),
                        pc,
                    })?;
                    self.pop_expect(pc, &mut stack, AbsTy::of(want), "return value")?;
                    terminal = true;
                }
                Op::MonitorEnter | Op::MonitorExit | Op::Notify | Op::NotifyAll => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "monitor ref")?;
                }
                Op::Wait => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "monitor ref")?;
                    stack.push(AbsTy::Int); // status
                }
                Op::TimedWait => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "millis")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "monitor ref")?;
                    stack.push(AbsTy::Int);
                }
                Op::Spawn { method, nargs } => {
                    let callee = self.program.methods.get(method as usize).ok_or(
                        CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    if callee.nargs != nargs as u16 {
                        return Err(CompileError::SignatureMismatch {
                            method: self.name.clone(),
                            pc,
                            detail: format!("Spawn nargs {} != {}", nargs, callee.nargs),
                        });
                    }
                    self.check_args(pc, &mut stack, callee)?;
                    stack.push(AbsTy::Ref); // Thread object
                }
                Op::Join | Op::Interrupt => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "thread ref")?;
                }
                Op::YieldNow => {}
                Op::Sleep => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "millis")?;
                    stack.push(AbsTy::Int); // status
                }
                Op::CurrentThread => stack.push(AbsTy::Ref),
                Op::Now => stack.push(AbsTy::Int),
                Op::NativeCall { native, nargs } => {
                    let decl = self.program.natives.get(native as usize).ok_or(
                        CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    if decl.nargs != nargs {
                        return Err(CompileError::SignatureMismatch {
                            method: self.name.clone(),
                            pc,
                            detail: format!("native {} expects {} args", decl.name, decl.nargs),
                        });
                    }
                    for _ in 0..nargs {
                        self.pop_expect(pc, &mut stack, AbsTy::Int, "native arg")?;
                    }
                    if decl.returns {
                        stack.push(AbsTy::Int);
                    }
                }
                Op::Print => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                }
                Op::PrintStr(_) => {}
                Op::Halt => terminal = true,
            }

            if stack.len() > MAX_OPERAND_STACK {
                return Err(CompileError::StackOverflowStatic {
                    method: self.name.clone(),
                    pc,
                });
            }

            if !terminal {
                if pc + 1 >= n {
                    return Err(CompileError::FallsOffEnd {
                        method: self.name.clone(),
                    });
                }
                next.push(pc + 1);
            }
            let st = (locals, stack);
            for to in next {
                flow_to(&mut states, &mut work, pc, to, &st)?;
            }
        }

        // Build the compiled artifact from the fixed point.
        let mut max_stack = 0u16;
        let mut ref_maps = Vec::with_capacity(n);
        for st in &states {
            match st {
                None => ref_maps.push(None),
                Some((locals, stack)) => {
                    max_stack = max_stack.max(stack.len() as u16);
                    let mut lm = BitSet::with_capacity(locals.len());
                    for (i, &t) in locals.iter().enumerate() {
                        if t == AbsTy::Ref {
                            lm.set(i, true);
                        }
                    }
                    let mut sm = BitSet::with_capacity(stack.len());
                    for (i, &t) in stack.iter().enumerate() {
                        if t == AbsTy::Ref {
                            sm.set(i, true);
                        }
                    }
                    ref_maps.push(Some(RefMap {
                        stack_depth: stack.len() as u16,
                        locals: lm,
                        stack: sm,
                    }));
                }
            }
        }

        let backedge_bools: Vec<bool> = m
            .ops
            .iter()
            .enumerate()
            .map(|(pc, op)| op.branch_target().is_some_and(|t| t as usize <= pc))
            .collect();
        let qops = quicken(self.program, &m.ops, &backedge_bools);
        let backedge = BitSet::from_bools(&backedge_bools);

        Ok(CompiledMethod {
            max_stack,
            frame_words: FRAME_HEADER_WORDS + m.nlocals as u32 + max_stack as u32,
            backedge,
            ref_maps,
            qops,
        })
    }
}

/// The unique callee a `CallVirtual { class, slot }` can ever dispatch to,
/// if the program's class hierarchy makes the site monomorphic: every
/// class that `is_subclass` of the static receiver type resolves the slot
/// to the same method. The class set is closed at compile time (there is
/// no dynamic class loading of *new* classes, only lazy initialization),
/// so the answer is stable for the life of the program.
fn monomorphic_target(program: &Program, class: ClassId, slot: u16) -> Option<MethodId> {
    let mut target: Option<MethodId> = None;
    for (cid, c) in program.classes.iter().enumerate() {
        if !program.is_subclass(cid as ClassId, class) {
            continue;
        }
        let &m = c.vtable.get(slot as usize)?;
        match target {
            None => target = Some(m),
            Some(t) if t == m => {}
            Some(_) => return None,
        }
    }
    target
}

/// The single-op quickened form of one source instruction.
fn quicken_single(program: &Program, op: Op, pc: usize, backedge: &[bool]) -> QOp {
    if let Some(f) = AluFn::of(op) {
        return QOp::Alu(f);
    }
    if let Some(f) = CmpFn::of(op) {
        return QOp::Cmp(f);
    }
    match op {
        Op::Const(v) => QOp::Const(v),
        Op::Load(i) => QOp::Load(i),
        Op::Store(i) => QOp::Store(i),
        Op::Dup => QOp::Dup,
        Op::Pop => QOp::Pop,
        Op::Swap => QOp::Swap,
        Op::Neg => QOp::Neg,
        Op::RefEq => QOp::RefEq,
        Op::Goto(t) => QOp::Goto {
            target: t,
            backedge: backedge[pc],
        },
        Op::If(t) => QOp::If {
            target: t,
            backedge: backedge[pc],
        },
        Op::IfZ(t) => QOp::IfZ {
            target: t,
            backedge: backedge[pc],
        },
        Op::CallVirtual { class, slot } => match monomorphic_target(program, class, slot) {
            Some(callee) => QOp::CallMono {
                class,
                callee,
                nargs: program.methods[callee as usize].nargs,
            },
            None => QOp::Gen(op),
        },
        _ => QOp::Gen(op),
    }
}

/// Try to fuse a superinstruction headed at `pc` (longest pattern first).
/// Constituents are all total (no failure / block / alloc / hook path), so
/// the dispatch loop may batch their cycle accounting before the combined
/// effect — and the loop splits the fusion at run time whenever the timer
/// would expire mid-pattern, so tick boundaries stay cycle-exact.
fn try_fuse(ops: &[Op], pc: usize, backedge: &[bool]) -> Option<QOp> {
    let branch = |pc: usize| -> Option<(u32, bool, bool)> {
        match ops[pc] {
            Op::If(t) => Some((t, backedge[pc], true)),
            Op::IfZ(t) => Some((t, backedge[pc], false)),
            _ => None,
        }
    };
    // Load a; Const v; <cmp>; If/IfZ  (width 4)
    if pc + 3 < ops.len() {
        if let (Op::Load(a), Op::Const(v), Some(f), Some((target, backedge, jump_if))) =
            (ops[pc], ops[pc + 1], CmpFn::of(ops[pc + 2]), branch(pc + 3))
        {
            return Some(QOp::LoadConstCmpIf {
                a,
                v,
                f,
                target,
                backedge,
                jump_if,
            });
        }
    }
    if pc + 2 < ops.len() {
        // Load a; Load b; <alu>  (width 3)
        if let (Op::Load(a), Op::Load(b), Some(f)) = (ops[pc], ops[pc + 1], AluFn::of(ops[pc + 2]))
        {
            return Some(QOp::LoadLoadAlu { a, b, f });
        }
        // Load a; Const v; <alu>  (width 3)
        if let (Op::Load(a), Op::Const(v), Some(f)) = (ops[pc], ops[pc + 1], AluFn::of(ops[pc + 2]))
        {
            return Some(QOp::LoadConstAlu { a, v, f });
        }
    }
    if pc + 1 < ops.len() {
        // Const v; Store local  (width 2)
        if let (Op::Const(v), Op::Store(local)) = (ops[pc], ops[pc + 1]) {
            return Some(QOp::ConstStore { v, local });
        }
        // <cmp>; If/IfZ  (width 2)
        if let (Some(f), Some((target, backedge, jump_if))) = (CmpFn::of(ops[pc]), branch(pc + 1)) {
            return Some(QOp::CmpIf {
                f,
                target,
                backedge,
                jump_if,
            });
        }
    }
    None
}

/// The quickening pass: one [`QOp`] per source pc. Pure function of the
/// (verified) method body and the program's class hierarchy — re-running
/// it (e.g. after a codec round trip) reproduces the same stream.
fn quicken(program: &Program, ops: &[Op], backedge: &[bool]) -> Vec<QOp> {
    let mut q: Vec<QOp> = ops
        .iter()
        .enumerate()
        .map(|(pc, &op)| quicken_single(program, op, pc, backedge))
        .collect();
    for pc in 0..ops.len() {
        if let Some(fused) = try_fuse(ops, pc, backedge) {
            q[pc] = fused;
        }
    }
    q
}

// ---------------------------------------------------------------------------
// Tier-2: megablock compilation (hot-loop traces with deopt guards)
// ---------------------------------------------------------------------------

/// Taken-backedge count at which a loop head tiers up: the threshold-th
/// taken backedge of a loop triggers one `compile_loop` attempt. The
/// crossing is a pure function of the deterministic execution, so it fires
/// at the identical instruction in passthrough, record, and replay.
pub const MEGA_HOT_THRESHOLD: u32 = 64;

/// Cap on micro-ops per megablock. Blocks must stay narrow enough that the
/// per-iteration `cycles_to_tick > width` gate almost always passes
/// (timer intervals are a few hundred cycles).
const MEGA_MAX_STEPS: usize = 48;

/// Cap on the quickened length of a callee inlined through `CallMono`.
const MEGA_MAX_INLINE_OPS: usize = 16;

/// One pre-resolved micro-op of a megablock. Jump decoding, vtable probes,
/// and type/null checks are hoisted into guards: a *guard* micro-op either
/// proceeds along the traced path or side-exits to the quickened
/// interpreter *before* executing anything, so the deopt pc re-executes
/// the instruction with full generic semantics (error events, hook
/// consults) in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MegaOp {
    // ---- total micro-ops (cannot fail, block, allocate, or consult) ----
    Const(i64),
    Load(u16),
    Store(u16),
    Dup,
    Pop,
    Swap,
    Neg,
    RefEq,
    Alu(AluFn),
    Cmp(CmpFn),
    ConstStore {
        v: i64,
        local: u16,
    },
    LoadLoadAlu {
        a: u16,
        b: u16,
        f: AluFn,
    },
    LoadConstAlu {
        a: u16,
        v: i64,
        f: AluFn,
    },
    /// A forward `Goto` interior to the trace: control transfer is implicit
    /// in step order, so this is pure accounting (one cycle, one pc mix).
    Jump,
    // ---- guarded micro-ops (each one is a side exit) ----
    /// `Div`/`Rem` with the zero-divisor check as the guard.
    Div,
    Rem,
    /// Interior conditional branch traced as *fallthrough*: peeks the
    /// condition and side-exits if the branch would be taken (`jump_if` is
    /// the condition sense that takes it: `If` => true, `IfZ` => false).
    GuardIf {
        jump_if: bool,
    },
    /// Interior fused `<cmp>; If/IfZ` traced as fallthrough.
    GuardCmpIf {
        f: CmpFn,
        jump_if: bool,
    },
    /// Interior fused `Load a; Const v; <cmp>; If/IfZ` traced as
    /// fallthrough.
    GuardLoadConstCmpIf {
        a: u16,
        v: i64,
        f: CmpFn,
        jump_if: bool,
    },
    /// Devirtualized call: the hoisted null + dispatch check is the guard;
    /// on the traced path a *real* frame is pushed (inlining here means
    /// tracing through the call, never eliding the frame — physical writes
    /// stay identical to the quickened tier).
    Call {
        class: ClassId,
        callee: MethodId,
        nargs: u16,
    },
    /// Return from an inlined callee frame (real frame pop).
    Ret {
        has_val: bool,
    },
    // ---- backedge terminators (always the final step) ----
    /// Unconditional backedge to the loop head: iteration complete.
    BackGoto,
    /// Conditional backedge traced as *taken*: side-exits on fallthrough.
    BackIf {
        jump_if: bool,
    },
    BackCmpIf {
        f: CmpFn,
        jump_if: bool,
    },
    BackLoadConstCmpIf {
        a: u16,
        v: i64,
        f: CmpFn,
        jump_if: bool,
    },
}

impl MegaOp {
    /// Whether this micro-op can side-exit (a deopt point). Forced-deopt
    /// injection enumerates guards by their order within the block.
    pub fn is_guard(self) -> bool {
        matches!(
            self,
            MegaOp::Div
                | MegaOp::Rem
                | MegaOp::GuardIf { .. }
                | MegaOp::GuardCmpIf { .. }
                | MegaOp::GuardLoadConstCmpIf { .. }
                | MegaOp::Call { .. }
                | MegaOp::BackIf { .. }
                | MegaOp::BackCmpIf { .. }
                | MegaOp::BackLoadConstCmpIf { .. }
        )
    }
}

/// One step of a megablock: the micro-op plus everything needed to (a)
/// account for it exactly as the quickened tier would, and (b) reconstruct
/// interpreter state if its guard fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegaStep {
    pub op: MegaOp,
    /// Source pc of the constituent QOp — the deopt target, and the base
    /// pc of the step's fingerprint mixes.
    pub pc: u32,
    /// Method the step executes in (differs from the loop's method inside
    /// an inlined callee).
    pub method: MethodId,
    /// Source instructions this step executes (the constituent QOp width).
    pub width: u32,
    /// Operand-stack depth *before* this step, relative to the executing
    /// frame's stack base (from the verifier's ref map — deopt sets
    /// `sp = stack_base + depth`).
    pub depth: u16,
    /// Profiler attribution kind (the constituent's `QOp::kind_index`), so
    /// megablock execution unfolds into the same per-QOp cycle counters
    /// the quickened tier feeds.
    pub kind: usize,
}

/// A compiled hot-loop body: one iteration, head pc through the taken
/// backedge, as a flat array of guarded micro-ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MegaBlock {
    /// Method owning the loop.
    pub method: MethodId,
    /// Loop-head pc (block entry point; the backedge target).
    pub head: u32,
    /// Source instructions (= cycles) per full iteration: sum of step
    /// widths. The entry gate `cycles_to_tick > width` makes a timer tick
    /// inside a batched iteration impossible.
    pub width: u64,
    /// Yield points consumed per full iteration: the taken backedge plus
    /// one method-prologue yield per inlined call.
    pub yields: u64,
    /// Number of guard steps (side exits) per iteration.
    pub guards: u32,
    pub steps: Vec<MegaStep>,
    /// Closed-form stepper for canonical counting loops (see
    /// [`ClosedLoop::detect`]): lets the tier-2 engine retire a whole
    /// batch of iterations with one multiply instead of stepping, when no
    /// per-step observer (full fingerprint, profiler, deopt injection) is
    /// attached. `None` for every other loop shape.
    pub closed: Option<ClosedLoop>,
}

/// Closed-form description of a single-induction-variable counting loop:
/// per iteration the induction local advances by `step` (wrapping add) and
/// a single order-comparison guard against `bound` decides whether the
/// iteration runs. Everything else in the iteration is transient operand
/// stack traffic with no observable effect (the state digest and GC walk
/// live stack depth only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoop {
    /// The induction local (frame-relative).
    pub local: u16,
    /// Per-iteration increment.
    pub step: i64,
    /// Guard comparison bound.
    pub bound: i64,
    /// Guard comparison (order comparisons only).
    pub f: CmpFn,
    /// The loop exits (deopts) when `f.apply(x, bound) == exit_if`.
    pub exit_if: bool,
    /// Index offset of the guarded evaluation: 0 when the guard reads the
    /// induction variable before the increment (head-guarded loop), 1 when
    /// it reads the incremented value (tail-guarded / do-while).
    pub eval_offset: u32,
}

/// All loop-head pcs of a compiled method: targets of its backedge
/// branches, ascending. Shared by the runtime tier-up path and `dis
/// --mega` (which compiles hotness-independently).
pub fn loop_heads(c: &CompiledMethod) -> Vec<u32> {
    let mut heads: Vec<u32> = c
        .qops
        .iter()
        .filter_map(|q| match *q {
            QOp::Goto {
                target,
                backedge: true,
            }
            | QOp::If {
                target,
                backedge: true,
            }
            | QOp::IfZ {
                target,
                backedge: true,
            }
            | QOp::CmpIf {
                target,
                backedge: true,
                ..
            }
            | QOp::LoadConstCmpIf {
                target,
                backedge: true,
                ..
            } => Some(target),
            _ => None,
        })
        .collect();
    heads.sort_unstable();
    heads.dedup();
    heads
}

/// Trace one loop iteration starting at `head` into a megablock, or
/// `None` if the body is not traceable: only total QOps, `Div`/`Rem`,
/// forward branches (traced as fallthrough), straight-line `CallMono`
/// inlining, and a single backedge returning to `head` qualify. Anything
/// that can block, allocate, emit output, consult the hook per-access, or
/// branch irregularly aborts the trace — those loops simply stay tier-1.
///
/// Pure function of the compiled program: compiling allocates nothing
/// guest-visible, so tier-up does not perturb the execution it speeds up.
pub fn compile_loop(program: &Program, method: MethodId, head: u32) -> Option<MegaBlock> {
    let c = program.methods[method as usize].compiled.as_ref()?;
    let depth_at =
        |c: &CompiledMethod, pc: usize| c.ref_maps.get(pc)?.as_ref().map(|m| m.stack_depth);

    let mut steps: Vec<MegaStep> = Vec::new();
    let mut yields = 1u64; // the taken backedge ending each iteration
    let mut pc = head as usize;

    macro_rules! step {
        ($op:expr, $pc:expr, $method:expr, $width:expr, $depth:expr, $kind:expr) => {{
            if steps.len() >= MEGA_MAX_STEPS {
                return None;
            }
            steps.push(MegaStep {
                op: $op,
                pc: $pc as u32,
                method: $method,
                width: $width,
                depth: $depth,
                kind: $kind,
            });
        }};
    }

    loop {
        let q = *c.qops.get(pc)?;
        let depth = depth_at(c, pc)?;
        let (width, kind) = (q.width(), q.kind_index());
        macro_rules! emit {
            ($op:expr) => {
                step!($op, pc, method, width, depth, kind)
            };
        }
        // Conditional-branch triage: backedge-to-head terminates the
        // trace (expected taken), any other backward branch aborts, and a
        // forward branch becomes a fallthrough guard.
        macro_rules! branch {
            ($target:expr, $backedge:expr, $guard:expr, $back:expr) => {{
                if $backedge {
                    if $target != head {
                        return None;
                    }
                    emit!($back);
                    break;
                }
                emit!($guard);
                pc += width as usize;
            }};
        }
        match q {
            QOp::Const(v) => {
                emit!(MegaOp::Const(v));
                pc += 1;
            }
            QOp::Load(i) => {
                emit!(MegaOp::Load(i));
                pc += 1;
            }
            QOp::Store(i) => {
                emit!(MegaOp::Store(i));
                pc += 1;
            }
            QOp::Dup => {
                emit!(MegaOp::Dup);
                pc += 1;
            }
            QOp::Pop => {
                emit!(MegaOp::Pop);
                pc += 1;
            }
            QOp::Swap => {
                emit!(MegaOp::Swap);
                pc += 1;
            }
            QOp::Neg => {
                emit!(MegaOp::Neg);
                pc += 1;
            }
            QOp::RefEq => {
                emit!(MegaOp::RefEq);
                pc += 1;
            }
            QOp::Alu(f) => {
                emit!(MegaOp::Alu(f));
                pc += 1;
            }
            QOp::Cmp(f) => {
                emit!(MegaOp::Cmp(f));
                pc += 1;
            }
            QOp::ConstStore { v, local } => {
                emit!(MegaOp::ConstStore { v, local });
                pc += 2;
            }
            QOp::LoadLoadAlu { a, b, f } => {
                emit!(MegaOp::LoadLoadAlu { a, b, f });
                pc += 3;
            }
            QOp::LoadConstAlu { a, v, f } => {
                emit!(MegaOp::LoadConstAlu { a, v, f });
                pc += 3;
            }
            QOp::Goto { target, backedge } => {
                if backedge {
                    if target != head {
                        return None;
                    }
                    emit!(MegaOp::BackGoto);
                    break;
                }
                emit!(MegaOp::Jump);
                pc = target as usize;
            }
            QOp::If { target, backedge } => branch!(
                target,
                backedge,
                MegaOp::GuardIf { jump_if: true },
                MegaOp::BackIf { jump_if: true }
            ),
            QOp::IfZ { target, backedge } => branch!(
                target,
                backedge,
                MegaOp::GuardIf { jump_if: false },
                MegaOp::BackIf { jump_if: false }
            ),
            QOp::CmpIf {
                f,
                target,
                backedge,
                jump_if,
            } => branch!(
                target,
                backedge,
                MegaOp::GuardCmpIf { f, jump_if },
                MegaOp::BackCmpIf { f, jump_if }
            ),
            QOp::LoadConstCmpIf {
                a,
                v,
                f,
                target,
                backedge,
                jump_if,
            } => branch!(
                target,
                backedge,
                MegaOp::GuardLoadConstCmpIf { a, v, f, jump_if },
                MegaOp::BackLoadConstCmpIf { a, v, f, jump_if }
            ),
            QOp::CallMono {
                class,
                callee,
                nargs,
            } => {
                // Inline only a straight-line callee of total micro-ops
                // ending in Ret/RetVal (no branches, calls, or ops with
                // failure/hook paths). The call itself keeps its guard and
                // pushes a real frame.
                let cc = program.methods[callee as usize].compiled.as_ref()?;
                if cc.qops.len() > MEGA_MAX_INLINE_OPS {
                    return None;
                }
                emit!(MegaOp::Call {
                    class,
                    callee,
                    nargs
                });
                let mut cpc = 0usize;
                loop {
                    let cq = *cc.qops.get(cpc)?;
                    let cdepth = depth_at(cc, cpc)?;
                    let (cw, ck) = (cq.width(), cq.kind_index());
                    let op = match cq {
                        QOp::Const(v) => MegaOp::Const(v),
                        QOp::Load(i) => MegaOp::Load(i),
                        QOp::Store(i) => MegaOp::Store(i),
                        QOp::Dup => MegaOp::Dup,
                        QOp::Pop => MegaOp::Pop,
                        QOp::Swap => MegaOp::Swap,
                        QOp::Neg => MegaOp::Neg,
                        QOp::RefEq => MegaOp::RefEq,
                        QOp::Alu(f) => MegaOp::Alu(f),
                        QOp::Cmp(f) => MegaOp::Cmp(f),
                        QOp::ConstStore { v, local } => MegaOp::ConstStore { v, local },
                        QOp::LoadLoadAlu { a, b, f } => MegaOp::LoadLoadAlu { a, b, f },
                        QOp::LoadConstAlu { a, v, f } => MegaOp::LoadConstAlu { a, v, f },
                        QOp::Gen(Op::Div) => MegaOp::Div,
                        QOp::Gen(Op::Rem) => MegaOp::Rem,
                        QOp::Gen(Op::Ret) => MegaOp::Ret { has_val: false },
                        QOp::Gen(Op::RetVal) => MegaOp::Ret { has_val: true },
                        _ => return None,
                    };
                    step!(op, cpc, callee, cw, cdepth, ck);
                    if matches!(op, MegaOp::Ret { .. }) {
                        break;
                    }
                    cpc += cw as usize;
                }
                yields += 1; // the callee's method-prologue yield point
                pc += 1;
            }
            QOp::Gen(Op::Div) => {
                emit!(MegaOp::Div);
                pc += 1;
            }
            QOp::Gen(Op::Rem) => {
                emit!(MegaOp::Rem);
                pc += 1;
            }
            QOp::Gen(_) => return None,
        }
    }

    let width: u64 = steps.iter().map(|s| s.width as u64).sum();
    let guards = steps.iter().filter(|s| s.op.is_guard()).count() as u32;
    let closed = ClosedLoop::detect(&steps);
    Some(MegaBlock {
        method,
        head,
        width,
        yields,
        guards,
        steps,
        closed,
    })
}

impl CmpFn {
    /// [`CmpFn::apply`] lifted to `i128`: agrees with the `i64` version on
    /// every pair of in-range values (the closed-form stepper only ever
    /// evaluates trajectories it has proven stay inside `i64`).
    #[inline]
    pub fn apply_i128(self, a: i128, b: i128) -> bool {
        match self {
            CmpFn::Eq => a == b,
            CmpFn::Ne => a != b,
            CmpFn::Lt => a < b,
            CmpFn::Le => a <= b,
            CmpFn::Gt => a > b,
            CmpFn::Ge => a >= b,
        }
    }
}

impl ClosedLoop {
    /// Recognize the two canonical counting-loop shapes:
    ///
    /// * head-guarded: `[GuardLoadConstCmpIf, LoadConstAlu(Add), Store,
    ///   BackGoto]` over a single induction local (fig. 1's delay loops);
    /// * tail-guarded (do-while): `[LoadConstAlu(Add), Store,
    ///   BackLoadConstCmpIf]` over a single induction local.
    ///
    /// Only order comparisons qualify: with a monotone trajectory they
    /// make the per-iteration pass predicate prefix-monotone, which is
    /// what lets [`ClosedLoop::passes`] binary-search the deopt point.
    /// (`Eq`/`Ne` guards can pass again *after* failing once, so they stay
    /// on the step-by-step path.)
    fn detect(steps: &[MegaStep]) -> Option<ClosedLoop> {
        let order = |f: CmpFn| matches!(f, CmpFn::Lt | CmpFn::Le | CmpFn::Gt | CmpFn::Ge);
        match steps {
            [g, inc, st, term] => {
                let (
                    MegaOp::GuardLoadConstCmpIf { a, v, f, jump_if },
                    MegaOp::LoadConstAlu {
                        a: a2,
                        v: step,
                        f: AluFn::Add,
                    },
                    MegaOp::Store(a3),
                    MegaOp::BackGoto,
                ) = (g.op, inc.op, st.op, term.op)
                else {
                    return None;
                };
                (a == a2 && a2 == a3 && order(f)).then_some(ClosedLoop {
                    local: a,
                    step,
                    bound: v,
                    f,
                    exit_if: jump_if,
                    eval_offset: 0,
                })
            }
            [inc, st, term] => {
                let (
                    MegaOp::LoadConstAlu {
                        a,
                        v: step,
                        f: AluFn::Add,
                    },
                    MegaOp::Store(a2),
                    MegaOp::BackLoadConstCmpIf {
                        a: a3,
                        v,
                        f,
                        jump_if,
                    },
                ) = (inc.op, st.op, term.op)
                else {
                    return None;
                };
                (a == a2 && a2 == a3 && order(f)).then_some(ClosedLoop {
                    local: a,
                    step,
                    bound: v,
                    f,
                    exit_if: !jump_if,
                    eval_offset: 1,
                })
            }
            _ => None,
        }
    }

    /// How many consecutive iterations pass their guard starting from
    /// induction value `x0`, capped at `cap`. Exact by construction: the
    /// predicate is evaluated in `i128` (no overflow), and the count never
    /// crosses an `i64` wrap of the induction variable — the step-by-step
    /// loop executes the wrapping iteration with true wrapping semantics.
    pub fn passes(&self, x0: i64, cap: u64) -> u64 {
        let x0 = x0 as i128;
        let step = self.step as i128;
        let off = self.eval_offset as i128;
        // Highest iteration count whose last evaluated index keeps the
        // trajectory inside i64 (division operands kept non-negative so
        // truncation == floor).
        let idx_max = if step > 0 {
            (i64::MAX as i128 - x0) / step
        } else if step < 0 {
            (x0 - i64::MIN as i128) / -step
        } else {
            i128::MAX
        };
        // Saturating: `step == 0` makes `idx_max` unbounded (i128::MAX).
        let cap = (cap as i128)
            .min(idx_max.saturating_sub(off).saturating_add(1))
            .max(0);
        let pass =
            |i: i128| self.f.apply_i128(x0 + (i + off) * step, self.bound as i128) != self.exit_if;
        if cap == 0 || !pass(0) {
            return 0;
        }
        // First failing iteration in [1, cap); pass() is prefix-monotone
        // (order comparison × monotone trajectory), so binary search.
        let (mut lo, mut hi) = (1i128, cap);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pass(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u64
    }
}

fn compile_method(program: &Program, id: MethodId) -> Result<CompiledMethod, CompileError> {
    let method = &program.methods[id as usize];
    let v = Verifier {
        program,
        method,
        name: method.qualified_name(program),
    };
    v.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn bitset_roundtrip() {
        let mut b = BitSet::with_capacity(130);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 129]);
    }

    #[test]
    fn simple_loop_compiles_with_backedge() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(1).add().store(0);
            a.load(0).iconst(5).lt().if_nz("top");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        // Exactly one backedge: the conditional branch back to "top".
        assert_eq!(c.backedge.iter_ones().count(), 1);
        assert!(c.max_stack >= 2);
        assert_eq!(c.frame_words, 3 + 1 + c.max_stack as u32);
    }

    #[test]
    fn refmap_tracks_reference_local() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("Box").field("v", Ty::Int).build();
        let m = pb.method("m", 0, 2).code(|a| {
            a.iconst(7).store(0); // local 0: int
            a.new(cls).store(1); // local 1: ref
            a.load(1).get_field(0).print();
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        // After both stores (pc 4 = Load(1)), local 1 is a ref, local 0 not.
        let rm = c.ref_maps[4].as_ref().unwrap();
        assert!(rm.locals.get(1));
        assert!(!rm.locals.get(0));
    }

    #[test]
    fn refmap_tracks_stack_slots() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("Box").field("v", Ty::Int).build();
        let m = pb.method("m", 0, 1).code(|a| {
            a.new(cls); // stack: [ref]
            a.iconst(3); // stack: [ref, int]
            a.pop().pop();
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        let rm = c.ref_maps[2].as_ref().unwrap(); // before first Pop
        assert_eq!(rm.stack_depth, 2);
        assert!(rm.stack.get(0));
        assert!(!rm.stack.get(1));
    }

    #[test]
    fn merge_of_int_and_ref_is_dead_and_unusable() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("Box").field("v", Ty::Int).build();
        // local 0 is int on one path, ref on the other; using it after the
        // merge must be rejected.
        let m = pb.method("m", 1, 2).code(|a| {
            a.load(0).if_nz("refpath");
            a.iconst(1).store(1);
            a.goto("merge");
            a.label("refpath");
            a.new(cls).store(1);
            a.label("merge");
            a.load(1).pop();
            a.halt();
        });
        let err = pb.finish(m).unwrap_err();
        assert!(matches!(err, CompileError::DeadSlotUse { .. }));
    }

    #[test]
    fn dead_merge_slot_is_not_in_refmap() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("Box").field("v", Ty::Int).build();
        let m = pb.method("m", 1, 2).code(|a| {
            a.load(0).if_nz("refpath");
            a.iconst(1).store(1);
            a.goto("merge");
            a.label("refpath");
            a.new(cls).store(1);
            a.label("merge");
            a.halt(); // never uses local 1
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        let halt_pc = p.methods[m as usize].ops.len() - 1;
        let rm = c.ref_maps[halt_pc].as_ref().unwrap();
        assert!(!rm.locals.get(1), "dead merged slot must not be marked ref");
    }

    #[test]
    fn stack_underflow_rejected() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 0).code(|a| {
            a.add().halt();
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::StackUnderflow { .. }
        ));
    }

    #[test]
    fn type_confusion_rejected() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 0).code(|a| {
            a.null().iconst(1).add().pop().halt();
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn falls_off_end_rejected() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 0).code(|a| {
            a.iconst(1).pop();
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::FallsOffEnd { .. }
        ));
    }

    #[test]
    fn inconsistent_merge_depth_rejected() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 1, 1).code(|a| {
            a.load(0).if_nz("push2");
            a.iconst(1);
            a.goto("merge");
            a.label("push2");
            a.iconst(1).iconst(2);
            a.label("merge");
            a.pop().halt();
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::InconsistentStackDepth { .. }
        ));
    }

    #[test]
    fn return_type_checked() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 0).code(|a| {
            a.iconst(1).ret_val(); // method declared with no return
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::ReturnMismatch { .. }
        ));
    }

    #[test]
    fn builtins_are_injected_and_helper_methods_verify() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 0).code(|a| {
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let b = p.builtins;
        assert_eq!(p.class(b.thread_class).name, "Thread");
        assert_eq!(p.class(b.string_class).name, "String");
        assert_eq!(p.class(b.vm_method_class).name, "VM_Method");
        // The instrumentation helpers verified (they have compiled forms)
        // and contain at least one backedge each (a yield point inside
        // instrumentation — the liveClock hazard).
        for helper in [b.flush_method, b.fill_method] {
            let c = p.compiled(helper);
            assert!(c.backedge.iter_ones().next().is_some());
        }
        // getLineNumberAt sits in VM_Method's vtable.
        assert_eq!(
            p.class(b.vm_method_class).vtable
                [p.class(b.vm_method_class).vslots["getLineNumberAt"] as usize],
            b.get_line_number_at
        );
    }

    #[test]
    fn call_signature_checked() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.func("f", 1, 1).code(|a| {
            a.load(0).ret_val();
        });
        let m = pb.method("m", 0, 0).code(|a| {
            a.null().call(callee).pop().halt(); // ref where int expected
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::SignatureMismatch { .. }
        ));
    }

    #[test]
    fn quickening_covers_every_pc_and_fuses_patterns() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 2).code(|a| {
            a.iconst(0).store(0); // ConstStore head at pc 0
            a.iconst(0).store(1); // ConstStore head at pc 2
            a.label("top");
            a.load(0).iconst(10).ge().if_nz("done"); // LoadConstCmpIf head at pc 4
            a.load(1).load(0).add().store(1); // LoadLoadAlu head at pc 8
            a.load(0).iconst(1).add().store(0); // LoadConstAlu head at pc 12
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        let n = p.method(m).ops.len();
        assert_eq!(c.qops.len(), n, "one QOp per source pc");
        assert!(matches!(c.qops[0], QOp::ConstStore { v: 0, local: 0 }));
        // Interior pc of the fusion keeps its own single-op form.
        assert!(matches!(c.qops[1], QOp::Store(0)));
        assert!(matches!(
            c.qops[4],
            QOp::LoadConstCmpIf {
                a: 0,
                v: 10,
                f: CmpFn::Ge,
                jump_if: true,
                ..
            }
        ));
        assert!(matches!(
            c.qops[8],
            QOp::LoadLoadAlu {
                a: 1,
                b: 0,
                f: AluFn::Add
            }
        ));
        assert!(matches!(
            c.qops[12],
            QOp::LoadConstAlu {
                a: 0,
                v: 1,
                f: AluFn::Add
            }
        ));
        // The goto back to "top" bakes its backedge bit.
        let goto_pc = (0..n)
            .find(|&pc| matches!(p.method(m).ops[pc], Op::Goto(_)))
            .unwrap();
        assert!(matches!(c.qops[goto_pc], QOp::Goto { backedge: true, .. }));
        // Widths cover the stream without gaps when walked from the entry.
        let mut pc = 0usize;
        let mut seen = 0;
        while pc < 4 {
            pc += c.qops[pc].width() as usize;
            seen += 1;
        }
        assert!(seen <= 2, "entry block is fused into at most 2 dispatches");
    }

    #[test]
    fn div_and_rem_are_never_fused() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 2).code(|a| {
            a.iconst(7).store(0);
            a.load(0).load(0).div().pop(); // Load;Load;Div must NOT fuse
            a.load(0).iconst(2).rem().pop(); // Load;Const;Rem must NOT fuse
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        assert!(c
            .qops
            .iter()
            .all(|q| !matches!(q, QOp::LoadLoadAlu { .. } | QOp::LoadConstAlu { .. })));
        assert!(c
            .qops
            .iter()
            .any(|q| matches!(q, QOp::Gen(Op::Div) | QOp::Gen(Op::Rem))));
    }

    #[test]
    fn monomorphic_virtual_calls_devirtualize_overridden_ones_do_not() {
        let mut pb = ProgramBuilder::new();
        let base = pb.class("Base").build();
        pb.virtual_method(base, "f", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(1).ret_val();
            });
        pb.virtual_method(base, "g", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(3).ret_val();
            });
        let derived = pb.class_extends("Derived", Some(base)).build();
        pb.virtual_method(derived, "f", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(2).ret_val();
            });
        let f_slot = pb.vslot(base, "f");
        let g_slot = pb.vslot(base, "g");
        let m = pb.method("main", 0, 1).code(|a| {
            a.new(derived).store(0);
            a.load(0).call_virtual(base, f_slot).print(); // polymorphic
            a.load(0).call_virtual(base, g_slot).print(); // monomorphic
            a.load(0).call_virtual(derived, f_slot).print(); // mono via Derived
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        let virtual_qops: Vec<&QOp> = p
            .method(m)
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, Op::CallVirtual { .. }))
            .map(|(pc, _)| &c.qops[pc])
            .collect();
        assert!(matches!(virtual_qops[0], QOp::Gen(Op::CallVirtual { .. })));
        assert!(matches!(virtual_qops[1], QOp::CallMono { nargs: 1, .. }));
        assert!(matches!(virtual_qops[2], QOp::CallMono { nargs: 1, .. }));
    }

    #[test]
    fn quickening_is_deterministic() {
        let build = || {
            let mut pb = ProgramBuilder::new();
            let m = pb.method("m", 0, 2).code(|a| {
                a.iconst(0).store(0);
                a.label("top");
                a.load(0).iconst(100).ge().if_nz("done");
                a.load(0).iconst(1).add().store(0);
                a.goto("top");
                a.label("done");
                a.halt();
            });
            pb.finish(m).unwrap()
        };
        let (a, b) = (build(), build());
        for (ma, mb) in a.methods.iter().zip(b.methods.iter()) {
            assert_eq!(
                ma.compiled.as_ref().unwrap().qops,
                mb.compiled.as_ref().unwrap().qops
            );
        }
    }

    #[test]
    fn virtual_call_types_its_result() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("C").build();
        pb.virtual_method(cls, "f", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(42).ret_val();
            });
        let slot = pb.vslot(cls, "f");
        let m = pb.method("m", 0, 1).code(|a| {
            a.new(cls).store(0);
            a.load(0).call_virtual(cls, slot).print();
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        assert!(p.compiled(m).max_stack >= 1);
    }

    #[test]
    fn megablock_traces_fig1_style_counting_loop() {
        // Same loop shape as the fig1_hot workload's inner loop:
        //   top: load l0; const; ge; ifnz done   => GuardLoadConstCmpIf (4)
        //        load l0; const; add             => LoadConstAlu        (3)
        //        store l0                        => Store               (1)
        //        goto top                        => BackGoto            (1)
        let mut pb = ProgramBuilder::new();
        let m = pb.method("hot", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(100).ge().if_nz("done");
            a.load(0).iconst(1).add();
            a.store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let heads = loop_heads(p.compiled(m));
        assert_eq!(heads, vec![2], "one loop head at the label pc");
        let b = compile_loop(&p, m, 2).expect("loop is traceable");
        assert_eq!(b.head, 2);
        assert_eq!(b.width, 9, "4 + 3 + 1 + 1 source instructions");
        assert_eq!(b.yields, 1, "just the taken backedge");
        assert_eq!(b.guards, 1, "the interior exit branch");
        assert_eq!(b.steps.len(), 4);
        assert!(matches!(
            b.steps[0].op,
            MegaOp::GuardLoadConstCmpIf {
                a: 0,
                v: 100,
                f: CmpFn::Ge,
                jump_if: true
            }
        ));
        assert!(matches!(
            b.steps[1].op,
            MegaOp::LoadConstAlu {
                a: 0,
                v: 1,
                f: AluFn::Add
            }
        ));
        assert!(matches!(b.steps[2].op, MegaOp::Store(0)));
        assert!(matches!(b.steps[3].op, MegaOp::BackGoto));
        // Deopt metadata: pcs are the constituent heads, depths pre-step.
        assert_eq!(b.steps[0].pc, 2);
        assert_eq!(b.steps[0].depth, 0);
        assert_eq!(b.steps[2].depth, 1, "the Alu result is on the stack");
        assert_eq!(b.width, b.steps.iter().map(|s| s.width as u64).sum::<u64>());
    }

    #[test]
    fn megablock_inlines_monomorphic_call_with_frame_steps() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("C").build();
        pb.virtual_method(cls, "twice", vec![Ty::Int], 2, Some(Ty::Int))
            .code(|a| {
                a.load(1).iconst(2).mul().ret_val();
            });
        let slot = pb.vslot(cls, "twice");
        let m = pb.method("main", 0, 2).code(|a| {
            a.new(cls).store(1);
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(50).ge().if_nz("done");
            a.load(1).load(0).call_virtual(cls, slot).store(0);
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let heads = loop_heads(p.compiled(m));
        assert_eq!(heads.len(), 1);
        let b = compile_loop(&p, m, heads[0]).expect("call loop is traceable");
        assert_eq!(b.yields, 2, "backedge + inlined callee prologue");
        let call_ix = b
            .steps
            .iter()
            .position(|s| matches!(s.op, MegaOp::Call { .. }))
            .expect("call step present");
        // The inlined callee's steps carry the *callee* method id and the
        // callee's pcs, ending in a real-frame return.
        let callee = match b.steps[call_ix].op {
            MegaOp::Call { callee, .. } => callee,
            _ => unreachable!(),
        };
        assert_eq!(b.steps[call_ix + 1].method, callee);
        assert_eq!(b.steps[call_ix + 1].pc, 0);
        assert!(b.steps[call_ix..]
            .iter()
            .any(|s| matches!(s.op, MegaOp::Ret { has_val: true })));
        let ret_ix = b
            .steps
            .iter()
            .position(|s| matches!(s.op, MegaOp::Ret { .. }))
            .unwrap();
        // After the return, steps are back in the caller.
        assert_eq!(b.steps[ret_ix + 1].method, m);
        // Call guard counts toward the guard total.
        assert!(b.guards >= 2, "exit branch + call dispatch guard");
    }

    #[test]
    fn megablock_rejects_untraceable_bodies() {
        // Allocation in the body: not traceable.
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("Box").field("v", Ty::Int).build();
        let m = pb.method("alloc_loop", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(5).ge().if_nz("done");
            a.new(cls).pop();
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let heads = loop_heads(p.compiled(m));
        assert_eq!(heads.len(), 1);
        assert!(compile_loop(&p, m, heads[0]).is_none());

        // Output in the body: not traceable.
        let mut pb = ProgramBuilder::new();
        let m = pb.method("print_loop", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(5).ge().if_nz("done");
            a.load(0).print();
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let heads = loop_heads(p.compiled(m));
        assert!(compile_loop(&p, m, heads[0]).is_none());
    }

    #[test]
    fn megablock_traces_div_and_interior_forward_goto() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("divloop", 0, 2).code(|a| {
            a.iconst(1).store(0);
            a.iconst(7).store(1);
            a.label("top");
            a.load(0).iconst(60).ge().if_nz("done");
            a.load(0).load(1).div().pop(); // guard: divisor != 0
            a.goto("skip"); // interior forward goto => Jump
            a.label("skip");
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let heads = loop_heads(p.compiled(m));
        assert_eq!(heads.len(), 1);
        let b = compile_loop(&p, m, heads[0]).expect("div loop is traceable");
        assert!(b.steps.iter().any(|s| matches!(s.op, MegaOp::Div)));
        assert!(b.steps.iter().any(|s| matches!(s.op, MegaOp::Jump)));
        assert_eq!(b.guards, 2, "exit branch + div");
        // The Jump costs one cycle like the Goto it replaces.
        let jump = b
            .steps
            .iter()
            .find(|s| matches!(s.op, MegaOp::Jump))
            .unwrap();
        assert_eq!(jump.width, 1);
    }

    #[test]
    fn megablock_compilation_is_deterministic() {
        let build = || {
            let mut pb = ProgramBuilder::new();
            let m = pb.method("m", 0, 2).code(|a| {
                a.iconst(0).store(0);
                a.label("top");
                a.load(0).iconst(100).ge().if_nz("done");
                a.load(0).iconst(1).add().store(0);
                a.goto("top");
                a.label("done");
                a.halt();
            });
            pb.finish(m).unwrap()
        };
        let (pa, pb_) = (build(), build());
        let (ea, eb) = (pa.entry, pb_.entry);
        let (ha, hb) = (loop_heads(pa.compiled(ea)), loop_heads(pb_.compiled(eb)));
        assert_eq!(ha, hb);
        assert!(!ha.is_empty(), "the entry method's loop is found");
        for (&a, &b) in ha.iter().zip(hb.iter()) {
            let (ba, bb) = (compile_loop(&pa, ea, a), compile_loop(&pb_, eb, b));
            assert!(ba.is_some(), "the loop compiles");
            assert_eq!(ba, bb);
        }
    }

    /// Compile the entry method's sole loop and return its megablock.
    fn sole_block(p: &Program) -> MegaBlock {
        let heads = loop_heads(p.compiled(p.entry));
        assert_eq!(heads.len(), 1);
        compile_loop(p, p.entry, heads[0]).expect("loop is traceable")
    }

    #[test]
    fn closed_loop_detects_head_guarded_counting_loop() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(100).ge().if_nz("done");
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let cl = sole_block(&p).closed.expect("shape A is recognized");
        assert_eq!(
            cl,
            ClosedLoop {
                local: 0,
                step: 1,
                bound: 100,
                f: CmpFn::Ge,
                exit_if: true,
                eval_offset: 0,
            }
        );
        // Starting at 0 with room to spare, all 100 guard passes retire
        // in one closed-form call; at 99 exactly one remains.
        assert_eq!(cl.passes(0, 1_000), 100);
        assert_eq!(cl.passes(99, 1_000), 1);
        assert_eq!(cl.passes(100, 1_000), 0);
        assert_eq!(cl.passes(0, 7), 7, "cap limits the batch");
    }

    #[test]
    fn closed_loop_detects_tail_guarded_counting_loop() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(1).add().store(0);
            a.load(0).iconst(64).lt().if_nz("top");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let cl = sole_block(&p).closed.expect("shape B is recognized");
        assert_eq!(cl.local, 0);
        assert_eq!(cl.step, 1);
        assert_eq!(cl.bound, 64);
        assert_eq!(cl.eval_offset, 1, "guard evaluates the post-step value");
        // exit_if is inverted: the branch *continues* the loop.
        assert!(!cl.exit_if);
        // From 0 the post-step values 1..=63 pass `< 64`; value 64 fails.
        assert_eq!(cl.passes(0, 1_000), 63);
        assert_eq!(cl.passes(63, 1_000), 0);
    }

    #[test]
    fn closed_loop_rejects_non_monotone_guards_and_extra_ops() {
        // Eq guard: the pass set is not prefix-monotone — must stay on the
        // step-by-step path.
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(100).eq().if_nz("done");
            a.load(0).iconst(3).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        assert!(sole_block(&p).closed.is_none(), "Eq guard rejected");

        // Extra body work: still a megablock, but not closed-form.
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 2).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(100).ge().if_nz("done");
            a.load(0).iconst(7).mul().store(1);
            a.load(0).iconst(1).add().store(0);
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let b = sole_block(&p);
        assert!(b.closed.is_none(), "non-canonical body rejected");
        assert!(b.steps.len() > 4);
    }

    #[test]
    fn closed_loop_passes_matches_brute_force() {
        // Sweep step signs, offsets, and comparison kinds against a
        // literal per-iteration evaluation of the same predicate.
        let cases = [
            (1i64, 50i64, CmpFn::Ge, true, 0u32),
            (3, 49, CmpFn::Ge, true, 0),
            (-2, -30, CmpFn::Le, true, 0),
            (5, 64, CmpFn::Lt, false, 1),
            (-1, 0, CmpFn::Gt, false, 1),
        ];
        for (step, bound, f, exit_if, eval_offset) in cases {
            let cl = ClosedLoop {
                local: 0,
                step,
                bound,
                f,
                exit_if,
                eval_offset,
            };
            for x0 in [-40i64, -1, 0, 1, 17] {
                for cap in [0u64, 1, 2, 13, 200] {
                    let mut brute = 0u64;
                    while brute < cap {
                        let x = x0 as i128 + (brute as i128 + eval_offset as i128) * step as i128;
                        if cl.f.apply_i128(x, bound as i128) == exit_if {
                            break;
                        }
                        brute += 1;
                    }
                    assert_eq!(
                        cl.passes(x0, cap),
                        brute,
                        "step={step} bound={bound} f={f:?} exit_if={exit_if} \
                         off={eval_offset} x0={x0} cap={cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn closed_loop_passes_stops_at_the_i64_wrap_horizon() {
        // Counting up from near i64::MAX: the closed form may retire the
        // last in-range guard evaluations, but the write-back wraps exactly
        // like the interpreter's wrapping add.
        let cl = ClosedLoop {
            local: 0,
            step: 3,
            bound: 0,
            f: CmpFn::Lt,
            exit_if: true,
            eval_offset: 0,
        };
        let x0 = i64::MAX - 5;
        // Guard evaluations at MAX-5 and MAX-2 stay in range; the next
        // index would cross the wrap, so the batch stops there even though
        // the predicate (x >= 0) would keep passing.
        assert_eq!(cl.passes(x0, 1_000), 2);

        // Zero step: unbounded horizon must not overflow; the predicate is
        // constant, so every requested iteration passes.
        let idle = ClosedLoop {
            local: 0,
            step: 0,
            bound: 10,
            f: CmpFn::Lt,
            exit_if: false,
            eval_offset: 0,
        };
        assert_eq!(idle.passes(3, 1_000), 1_000);
        assert_eq!(idle.passes(30, 1_000), 0, "constant-false exits at once");

        // Counting down toward i64::MIN mirrors the cap.
        let down = ClosedLoop {
            local: 0,
            step: -4,
            bound: 0,
            f: CmpFn::Lt,
            exit_if: false,
            eval_offset: 0,
        };
        assert_eq!(down.passes(i64::MIN + 9, 1_000), 3);
    }
}
