//! The baseline compiler: verification, reference maps, yield points.
//!
//! DejaVu runs on Jalapeño's *baseline* compiler (paper §1, footnote 2).
//! Our analogue performs, per method:
//!
//! 1. **Verification** — an abstract interpretation over slot types
//!    (`Int` / `Ref` / dead) that rejects stack underflow, type confusion,
//!    bad branch targets and signature mismatches.
//! 2. **Reference maps** (paper §1: "Jalapeño reference maps specify these
//!    locations for predefined safe-points") — for *every* pc, which locals
//!    and operand-stack slots hold references. The type-accurate GC walks
//!    paused frames with these maps.
//! 3. **Yield-point identification** — method prologues plus loop
//!    backedges, the only program points where a preemptive thread switch
//!    may occur, and hence the ticks of DejaVu's logical clock.
//! 4. **Frame sizing** — max operand-stack depth, so activation-stack
//!    overflow checks (and the eager-growth symmetry of §2.4) are exact.
//! 5. **Quickening** — every method is rewritten into an internal [`QOp`]
//!    stream with pre-decoded operands (jump targets carry their backedge
//!    bit, monomorphic virtual calls are devirtualized) and fused
//!    superinstructions for common pairs/triples. The quickened stream is
//!    *derived* metadata: it is recomputed on every compile (the codec
//!    never serializes it) and the interpreter's quickened dispatch loop
//!    is proven bit-identical to the unfused one (see `interp`).
//!
//! The pass also injects the VM's builtin classes and the interpreted
//! instrumentation helper methods (the boot-image analogue).

use crate::bytecode::{ClassId, MethodId, Op, Ty};
use crate::program::{Class, FieldDecl, Method, Program};
use std::collections::{HashMap, VecDeque};

/// Verifier slot type: `Dead` slots are unusable (uninitialized or merge of
/// incompatible types); they are treated as non-references by the GC, which
/// is sound because the verifier rejects any *use* of a dead slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsTy {
    Dead,
    Int,
    Ref,
}

impl AbsTy {
    fn merge(self, other: AbsTy) -> AbsTy {
        if self == other {
            self
        } else {
            AbsTy::Dead
        }
    }

    fn of(ty: Ty) -> AbsTy {
        match ty {
            Ty::Int => AbsTy::Int,
            Ty::Ref => AbsTy::Ref,
        }
    }

}

/// Which slots of a frame hold references at a given pc (state *before*
/// executing the instruction at that pc).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefMap {
    /// Operand stack depth at this pc.
    pub stack_depth: u16,
    /// Bit i set => local slot i holds a reference.
    pub locals: BitSet,
    /// Bit i set => operand-stack slot i (from the bottom) holds a reference.
    pub stack: BitSet,
}

/// A compact bitset over frame slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    pub fn set(&mut self, i: usize, v: bool) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if v {
            self.words[w] |= 1 << (i % 64);
        } else {
            self.words[w] &= !(1 << (i % 64));
        }
    }

    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }

    /// Build from a slice of booleans (index i set iff `bits[i]`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut s = Self::with_capacity(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.set(i, true);
            }
        }
        s
    }
}

/// Pre-decoded integer ALU function for the *fusible* binary ops. `Div`
/// and `Rem` are deliberately absent: they can fail (divide by zero), and
/// superinstruction constituents must be total so the quickened loop can
/// batch its cycle accounting ahead of the effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluFn {
    Add,
    Sub,
    Mul,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl AluFn {
    pub fn of(op: Op) -> Option<AluFn> {
        Some(match op {
            Op::Add => AluFn::Add,
            Op::Sub => AluFn::Sub,
            Op::Mul => AluFn::Mul,
            Op::BitAnd => AluFn::BitAnd,
            Op::BitOr => AluFn::BitOr,
            Op::BitXor => AluFn::BitXor,
            Op::Shl => AluFn::Shl,
            Op::Shr => AluFn::Shr,
            _ => return None,
        })
    }

    /// Must agree exactly with the generic interpreter's arithmetic.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluFn::Add => a.wrapping_add(b),
            AluFn::Sub => a.wrapping_sub(b),
            AluFn::Mul => a.wrapping_mul(b),
            AluFn::BitAnd => a & b,
            AluFn::BitOr => a | b,
            AluFn::BitXor => a ^ b,
            AluFn::Shl => a.wrapping_shl(b as u32 & 63),
            AluFn::Shr => a.wrapping_shr(b as u32 & 63),
        }
    }
}

/// Pre-decoded integer comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpFn {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpFn {
    pub fn of(op: Op) -> Option<CmpFn> {
        Some(match op {
            Op::Eq => CmpFn::Eq,
            Op::Ne => CmpFn::Ne,
            Op::Lt => CmpFn::Lt,
            Op::Le => CmpFn::Le,
            Op::Gt => CmpFn::Gt,
            Op::Ge => CmpFn::Ge,
            _ => return None,
        })
    }

    #[inline]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpFn::Eq => a == b,
            CmpFn::Ne => a != b,
            CmpFn::Lt => a < b,
            CmpFn::Le => a <= b,
            CmpFn::Gt => a > b,
            CmpFn::Ge => a >= b,
        }
    }
}

/// A quickened instruction. The quickened stream is a *parallel* array
/// with exactly one entry per source pc: a fused superinstruction lives at
/// its head pc, while every interior pc keeps its own single-op quickened
/// form. Jumps into the middle of a fusion therefore need no pc remapping,
/// and the interpreter can resume mid-pattern after a timer split, an
/// access-gate retry, or a thread switch.
///
/// Only ops that cannot fail, block, allocate, emit telemetry, or consult
/// the hook are given fast quickened forms — everything else is `Gen` and
/// runs through the generic one-instruction path, which keeps the error /
/// gate / instrumentation semantics in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QOp {
    /// Not quickened: execute via the generic interpreter path.
    Gen(Op),
    // ---- pre-decoded singles (width 1) ----
    Const(i64),
    Load(u16),
    Store(u16),
    Dup,
    Pop,
    Swap,
    Neg,
    RefEq,
    Alu(AluFn),
    Cmp(CmpFn),
    /// Branches carry their backedge bit so the dispatch loop needs no
    /// side-table probe.
    Goto { target: u32, backedge: bool },
    If { target: u32, backedge: bool },
    IfZ { target: u32, backedge: bool },
    /// `CallVirtual` whose receiver class is statically unique (no loaded
    /// subclass overrides the slot): dispatches directly to `callee` after
    /// the same null / subclass checks, skipping both vtable probes.
    CallMono {
        class: ClassId,
        callee: MethodId,
        nargs: u16,
    },
    // ---- superinstructions ----
    /// `Const v; Store local` (width 2).
    ConstStore { v: i64, local: u16 },
    /// `Load a; Load b; <alu>` (width 3).
    LoadLoadAlu { a: u16, b: u16, f: AluFn },
    /// `Load a; Const v; <alu>` (width 3).
    LoadConstAlu { a: u16, v: i64, f: AluFn },
    /// `<cmp>; If/IfZ target` (width 2). `jump_if` is the comparison
    /// result that takes the branch (`true` for `If`, `false` for `IfZ`).
    CmpIf {
        f: CmpFn,
        target: u32,
        backedge: bool,
        jump_if: bool,
    },
    /// `Load a; Const v; <cmp>; If/IfZ target` (width 4) — the canonical
    /// loop-exit test.
    LoadConstCmpIf {
        a: u16,
        v: i64,
        f: CmpFn,
        target: u32,
        backedge: bool,
        jump_if: bool,
    },
}

impl QOp {
    /// Number of source instructions this quickened op executes.
    #[inline]
    pub fn width(self) -> u32 {
        match self {
            QOp::ConstStore { .. } | QOp::CmpIf { .. } => 2,
            QOp::LoadLoadAlu { .. } | QOp::LoadConstAlu { .. } => 3,
            QOp::LoadConstCmpIf { .. } => 4,
            _ => 1,
        }
    }

    /// Index into the profiler's QOp attribution table (parallel to
    /// [`QOP_KIND_NAMES`]). One slot per variant: the profiler's per-QOp
    /// cycle counters are keyed by the *kind* of quickened op, not its
    /// operands.
    #[inline]
    pub fn kind_index(self) -> usize {
        match self {
            QOp::Gen(_) => 0,
            QOp::Const(_) => 1,
            QOp::Load(_) => 2,
            QOp::Store(_) => 3,
            QOp::Dup => 4,
            QOp::Pop => 5,
            QOp::Swap => 6,
            QOp::Neg => 7,
            QOp::RefEq => 8,
            QOp::Alu(_) => 9,
            QOp::Cmp(_) => 10,
            QOp::Goto { .. } => 11,
            QOp::If { .. } => 12,
            QOp::IfZ { .. } => 13,
            QOp::CallMono { .. } => 14,
            QOp::ConstStore { .. } => 15,
            QOp::LoadLoadAlu { .. } => 16,
            QOp::LoadConstAlu { .. } => 17,
            QOp::CmpIf { .. } => 18,
            QOp::LoadConstCmpIf { .. } => 19,
        }
    }
}

/// Number of [`QOp`] kinds ([`QOp::kind_index`] domain).
pub const QOP_KIND_COUNT: usize = 20;

/// Display names for the profiler's QOp attribution table, indexed by
/// [`QOp::kind_index`].
pub const QOP_KIND_NAMES: [&str; QOP_KIND_COUNT] = [
    "gen",
    "const",
    "load",
    "store",
    "dup",
    "pop",
    "swap",
    "neg",
    "ref_eq",
    "alu",
    "cmp",
    "goto",
    "if",
    "if_z",
    "call_mono",
    "const_store",
    "load_load_alu",
    "load_const_alu",
    "cmp_if",
    "load_const_cmp_if",
];

/// Baseline-compiler output attached to each method.
#[derive(Debug, Clone, Default)]
pub struct CompiledMethod {
    /// Maximum operand-stack depth over all pcs.
    pub max_stack: u16,
    /// Words needed for a frame: header (3) + locals + max_stack.
    pub frame_words: u32,
    /// Bit `pc` set — instruction at `pc` is a branch whose target is
    /// not after it. Taking it is a yield point.
    pub backedge: BitSet,
    /// Per-pc reference maps (None for unreachable code).
    pub ref_maps: Vec<Option<RefMap>>,
    /// Quickened instruction stream, parallel to the source ops (one entry
    /// per pc; fusion heads carry the superinstruction, interior pcs keep
    /// their single-op form). Derived metadata — never serialized.
    pub qops: Vec<QOp>,
}

impl CompiledMethod {
    /// Size of the method's "compiled code" object in words: one word per
    /// instruction plus a 4-word header. This is the guest-visible
    /// allocation the lazy compiler performs on first invocation, so it
    /// must stay a pure function of the method body (`ref_maps` is per-pc,
    /// hence exactly the instruction count — quickening must NOT change
    /// this, or it would perturb guest allocation order).
    pub fn code_words(&self) -> usize {
        self.ref_maps.len() + 4
    }
}

/// Words of frame header: saved fp, method id, saved pc/flags.
pub const FRAME_HEADER_WORDS: u32 = 3;

/// Verification / compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    StackUnderflow { method: String, pc: usize },
    StackOverflowStatic { method: String, pc: usize },
    TypeMismatch { method: String, pc: usize, expected: &'static str, found: &'static str },
    BadLocal { method: String, pc: usize, local: u16 },
    DeadSlotUse { method: String, pc: usize, local: u16 },
    BadBranchTarget { method: String, pc: usize, target: u32 },
    FallsOffEnd { method: String },
    BadCallee { method: String, pc: usize },
    SignatureMismatch { method: String, pc: usize, detail: String },
    InconsistentStackDepth { method: String, pc: usize },
    BadStaticField { method: String, pc: usize },
    ReturnMismatch { method: String, pc: usize },
    EmptyMethod { method: String },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::StackUnderflow { method, pc } => {
                write!(f, "{method}@{pc}: operand stack underflow")
            }
            CompileError::StackOverflowStatic { method, pc } => {
                write!(f, "{method}@{pc}: operand stack exceeds limit")
            }
            CompileError::TypeMismatch { method, pc, expected, found } => {
                write!(f, "{method}@{pc}: expected {expected}, found {found}")
            }
            CompileError::BadLocal { method, pc, local } => {
                write!(f, "{method}@{pc}: local {local} out of range")
            }
            CompileError::DeadSlotUse { method, pc, local } => {
                write!(f, "{method}@{pc}: use of dead/uninitialized local {local}")
            }
            CompileError::BadBranchTarget { method, pc, target } => {
                write!(f, "{method}@{pc}: branch target {target} out of range")
            }
            CompileError::FallsOffEnd { method } => {
                write!(f, "{method}: control falls off the end of the method")
            }
            CompileError::BadCallee { method, pc } => {
                write!(f, "{method}@{pc}: callee does not exist")
            }
            CompileError::SignatureMismatch { method, pc, detail } => {
                write!(f, "{method}@{pc}: signature mismatch: {detail}")
            }
            CompileError::InconsistentStackDepth { method, pc } => {
                write!(f, "{method}@{pc}: inconsistent stack depth at merge point")
            }
            CompileError::BadStaticField { method, pc } => {
                write!(f, "{method}@{pc}: static field out of range")
            }
            CompileError::ReturnMismatch { method, pc } => {
                write!(f, "{method}@{pc}: return does not match method signature")
            }
            CompileError::EmptyMethod { method } => write!(f, "{method}: empty body"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Hard cap on operand-stack depth per frame (catches runaway codegen).
const MAX_OPERAND_STACK: usize = 4096;

/// Inject builtins, compute layouts, verify and compile every method.
pub fn compile_program(program: &mut Program) -> Result<(), CompileError> {
    inject_builtins(program);
    program.field_layouts = (0..program.classes.len())
        .map(|c| {
            program
                .flattened_fields(c as ClassId)
                .iter()
                .map(|f| f.ty)
                .collect()
        })
        .collect();
    program.static_layouts = program
        .classes
        .iter()
        .map(|c| c.statics.iter().map(|f| f.ty).collect())
        .collect();

    for id in 0..program.methods.len() {
        let compiled = compile_method(program, id as MethodId)?;
        program.methods[id].compiled = Some(compiled);
    }
    Ok(())
}

fn inject_builtins(program: &mut Program) {
    let mut class_by_name: HashMap<String, ClassId> = program
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.clone(), i as ClassId))
        .collect();
    let mut ensure_class = |program: &mut Program, name: &str, fields: Vec<(&str, Ty)>| {
        if let Some(&id) = class_by_name.get(name) {
            return id;
        }
        program.classes.push(Class {
            name: name.to_string(),
            super_class: None,
            fields: fields
                .into_iter()
                .map(|(n, ty)| FieldDecl { name: n.into(), ty })
                .collect(),
            statics: vec![],
            vtable: vec![],
            vslots: HashMap::new(),
        });
        let id = (program.classes.len() - 1) as ClassId;
        class_by_name.insert(name.to_string(), id);
        id
    };

    let thread_class = ensure_class(program, "Thread", vec![("tid", Ty::Int)]);
    let string_class = ensure_class(program, "String", vec![("chars", Ty::Ref)]);
    let vm_method_class = ensure_class(
        program,
        "VM_Method",
        vec![("methodId", Ty::Int), ("name", Ty::Ref), ("lineTable", Ty::Ref)],
    );

    // VM_Method.getLineNumberAt(offset): the reflective query of Fig. 3.
    //   if (offset >= lineTable.length) return 0; return lineTable[offset];
    // Injection must be idempotent — a program that already carries the
    // builtins (e.g. one decoded from the JSON codec and recompiled) is
    // re-resolved, never extended twice.
    let existing_glna = {
        let c = &program.classes[vm_method_class as usize];
        c.vslots
            .get("getLineNumberAt")
            .map(|&slot| c.vtable[slot as usize])
    };
    let get_line_number_at = if let Some(id) = existing_glna {
        id
    } else {
        let line_table_idx = 2u16; // third field of VM_Method
        let ops = vec![
            Op::Load(0),                                    // this
            Op::GetField { idx: line_table_idx, ty: Ty::Ref }, // lineTable
            Op::Store(2),
            Op::Load(1),                                    // offset
            Op::Load(2),
            Op::ArrayLen,
            Op::Lt,
            Op::If(10),
            Op::Const(0),
            Op::RetVal,
            Op::Load(2), // pc 10
            Op::Load(1),
            Op::ALoad(Ty::Int),
            Op::RetVal,
        ];
        let lines = vec![1; ops.len()];
        program.methods.push(Method {
            name: "getLineNumberAt".into(),
            owner: Some(vm_method_class),
            nargs: 2,
            nlocals: 3,
            arg_types: vec![Ty::Ref, Ty::Int],
            ret: Some(Ty::Int),
            ops,
            lines,
            compiled: None,
        });
        let id = (program.methods.len() - 1) as MethodId;
        let c = &mut program.classes[vm_method_class as usize];
        let slot = c.vtable.len() as u16;
        c.vtable.push(id);
        c.vslots.insert("getLineNumberAt".into(), slot);
        id
    };

    // Interpreted instrumentation helpers. Both loop (so they execute yield
    // points), but with *different* trip counts, frame sizes and call
    // depth: record's flush is deliberately heavier than replay's fill.
    // These asymmetries are what §2.4's symmetry machinery must hide — the
    // logical clock (liveClock) hides the differing yield-point counts,
    // pre-compilation hides the differing lazy-compilation footprints, and
    // eager stack growth hides the differing frame sizes.
    let make_helper = |program: &mut Program,
                       name: &str,
                       iters: i64,
                       body_pad: usize,
                       nlocals: u16,
                       nested: Option<MethodId>| {
        let mut ops = vec![Op::Const(0), Op::Store(1)];
        if let Some(callee) = nested {
            ops.push(Op::Const(2));
            ops.push(Op::Call(callee));
            ops.push(Op::Pop);
        }
        let loop_top = ops.len() as u32;
        ops.push(Op::Load(1)); // pc loop_top
        ops.push(Op::Const(iters));
        ops.push(Op::Ge);
        let exit_fix = ops.len();
        ops.push(Op::If(u32::MAX)); // patched below
        for _ in 0..body_pad {
            ops.push(Op::Load(0));
            ops.push(Op::Const(3));
            ops.push(Op::Add);
            ops.push(Op::Store(0));
        }
        ops.push(Op::Load(1));
        ops.push(Op::Const(1));
        ops.push(Op::Add);
        ops.push(Op::Store(1));
        ops.push(Op::Goto(loop_top));
        let exit = ops.len() as u32;
        ops[exit_fix] = Op::If(exit);
        ops.push(Op::Load(0));
        ops.push(Op::RetVal);
        let lines = vec![1; ops.len()];
        program.methods.push(Method {
            name: name.to_string(),
            owner: None,
            nargs: 1,
            nlocals,
            arg_types: vec![Ty::Int],
            ret: Some(Ty::Int),
            ops,
            lines,
            compiled: None,
        });
        (program.methods.len() - 1) as MethodId
    };

    // Leaf helper used only by the record-side flush: lazily compiling it
    // is an extra allocation that replay would never perform.
    let flush_low = program
        .method_id_by_name("sys$flushLow")
        .unwrap_or_else(|| make_helper(program, "sys$flushLow", 2, 0, 2, None));
    let flush_method = program
        .method_id_by_name("sys$flushTrace")
        .unwrap_or_else(|| make_helper(program, "sys$flushTrace", 8, 3, 10, Some(flush_low)));
    let fill_method = program
        .method_id_by_name("sys$fillTrace")
        .unwrap_or_else(|| make_helper(program, "sys$fillTrace", 5, 1, 2, None));

    // sys$getMethods: the VM_Dictionary.getMethods() analogue. Stub body —
    // a tool JVM *maps* this method (intercepting its invocation to return
    // a remote object); it is never meant to execute.
    let get_methods = program.method_id_by_name("sys$getMethods").unwrap_or_else(|| {
        program.methods.push(Method {
            name: "sys$getMethods".into(),
            owner: None,
            nargs: 0,
            nlocals: 0,
            arg_types: vec![],
            ret: Some(Ty::Ref),
            ops: vec![Op::Null, Op::RetVal],
            lines: vec![1, 1],
            compiled: None,
        });
        (program.methods.len() - 1) as MethodId
    });

    // sys$lineNumberOf(methodNumber, offset): the paper's Figure 3 query:
    //   VM_Method[] mtable = VM_Dictionary.getMethods();
    //   VM_Method candidate = mtable[methodNumber];
    //   return candidate.getLineNumberAt(offset);
    let line_number_of = program.method_id_by_name("sys$lineNumberOf").unwrap_or_else(|| {
        let slot = program.classes[vm_method_class as usize].vslots["getLineNumberAt"];
        program.methods.push(Method {
            name: "sys$lineNumberOf".into(),
            owner: None,
            nargs: 2,
            nlocals: 3,
            arg_types: vec![Ty::Int, Ty::Int],
            ret: Some(Ty::Int),
            ops: vec![
                Op::Call(get_methods),   // mtable
                Op::Load(0),             // methodNumber
                Op::ALoad(Ty::Ref),      // candidate
                Op::Store(2),
                Op::Load(2),
                Op::Load(1),             // offset
                Op::CallVirtual {
                    class: vm_method_class,
                    slot,
                },
                Op::RetVal,
            ],
            lines: vec![2, 3, 3, 3, 4, 4, 4, 4],
            compiled: None,
        });
        (program.methods.len() - 1) as MethodId
    });

    program.builtins = crate::program::Builtins {
        thread_class,
        string_class,
        vm_method_class,
        flush_method,
        fill_method,
        get_methods,
        line_number_of,
        get_line_number_at,
    };
}

struct Verifier<'p> {
    program: &'p Program,
    method: &'p Method,
    name: String,
}

type State = (Vec<AbsTy>, Vec<AbsTy>); // (locals, stack)

impl<'p> Verifier<'p> {
    fn err_ty(&self, pc: usize, expected: &'static str, found: AbsTy) -> CompileError {
        CompileError::TypeMismatch {
            method: self.name.clone(),
            pc,
            expected,
            found: match found {
                AbsTy::Dead => "dead",
                AbsTy::Int => "int",
                AbsTy::Ref => "ref",
            },
        }
    }

    fn pop(&self, pc: usize, stack: &mut Vec<AbsTy>) -> Result<AbsTy, CompileError> {
        stack.pop().ok_or(CompileError::StackUnderflow {
            method: self.name.clone(),
            pc,
        })
    }

    fn pop_expect(
        &self,
        pc: usize,
        stack: &mut Vec<AbsTy>,
        want: AbsTy,
        what: &'static str,
    ) -> Result<(), CompileError> {
        let got = self.pop(pc, stack)?;
        if got != want {
            return Err(self.err_ty(pc, what, got));
        }
        Ok(())
    }

    fn check_args(
        &self,
        pc: usize,
        stack: &mut Vec<AbsTy>,
        callee: &Method,
    ) -> Result<(), CompileError> {
        // Args were pushed left to right: rightmost on top.
        for i in (0..callee.nargs as usize).rev() {
            let got = self.pop(pc, stack)?;
            let want = AbsTy::of(callee.arg_types[i]);
            if got != want {
                return Err(CompileError::SignatureMismatch {
                    method: self.name.clone(),
                    pc,
                    detail: format!("argument {i} of {}", callee.name),
                });
            }
        }
        Ok(())
    }

    fn run(&self) -> Result<CompiledMethod, CompileError> {
        let m = self.method;
        let n = m.ops.len();
        if n == 0 {
            return Err(CompileError::EmptyMethod {
                method: self.name.clone(),
            });
        }
        // Entry state: args in locals 0..nargs, rest dead, empty stack.
        let mut entry_locals = vec![AbsTy::Dead; m.nlocals as usize];
        for (i, &t) in m.arg_types.iter().enumerate() {
            entry_locals[i] = AbsTy::of(t);
        }
        let mut states: Vec<Option<State>> = vec![None; n];
        states[0] = Some((entry_locals, Vec::new()));
        let mut work: VecDeque<usize> = VecDeque::from([0]);

        let flow_to =
            |states: &mut Vec<Option<State>>, work: &mut VecDeque<usize>, pc: usize, to: usize, st: &State| -> Result<(), CompileError> {
                if to >= n {
                    return Err(CompileError::BadBranchTarget {
                        method: self.name.clone(),
                        pc,
                        target: to as u32,
                    });
                }
                match &mut states[to] {
                    None => {
                        states[to] = Some(st.clone());
                        work.push_back(to);
                    }
                    Some(existing) => {
                        if existing.1.len() != st.1.len() {
                            return Err(CompileError::InconsistentStackDepth {
                                method: self.name.clone(),
                                pc: to,
                            });
                        }
                        let mut changed = false;
                        for (e, &v) in existing.0.iter_mut().zip(st.0.iter()) {
                            let merged = e.merge(v);
                            if merged != *e {
                                *e = merged;
                                changed = true;
                            }
                        }
                        for (e, &v) in existing.1.iter_mut().zip(st.1.iter()) {
                            let merged = e.merge(v);
                            if merged != *e {
                                *e = merged;
                                changed = true;
                            }
                        }
                        if changed {
                            work.push_back(to);
                        }
                    }
                }
                Ok(())
            };

        while let Some(pc) = work.pop_front() {
            let (mut locals, mut stack) = states[pc].clone().expect("state present");
            let op = m.ops[pc];
            let mut next: Vec<usize> = Vec::with_capacity(2);
            let mut terminal = false;

            macro_rules! bin_int {
                () => {{
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                    stack.push(AbsTy::Int);
                }};
            }

            match op {
                Op::Const(_) => stack.push(AbsTy::Int),
                Op::Null | Op::Str(_) => stack.push(AbsTy::Ref),
                Op::Load(i) => {
                    let i = i as usize;
                    if i >= locals.len() {
                        return Err(CompileError::BadLocal {
                            method: self.name.clone(),
                            pc,
                            local: i as u16,
                        });
                    }
                    if locals[i] == AbsTy::Dead {
                        return Err(CompileError::DeadSlotUse {
                            method: self.name.clone(),
                            pc,
                            local: i as u16,
                        });
                    }
                    stack.push(locals[i]);
                }
                Op::Store(i) => {
                    let i = i as usize;
                    if i >= locals.len() {
                        return Err(CompileError::BadLocal {
                            method: self.name.clone(),
                            pc,
                            local: i as u16,
                        });
                    }
                    let v = self.pop(pc, &mut stack)?;
                    if v == AbsTy::Dead {
                        return Err(self.err_ty(pc, "live value", v));
                    }
                    locals[i] = v;
                }
                Op::Dup => {
                    let v = self.pop(pc, &mut stack)?;
                    stack.push(v);
                    stack.push(v);
                }
                Op::Pop => {
                    self.pop(pc, &mut stack)?;
                }
                Op::Swap => {
                    let a = self.pop(pc, &mut stack)?;
                    let b = self.pop(pc, &mut stack)?;
                    stack.push(a);
                    stack.push(b);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem | Op::BitAnd | Op::BitOr
                | Op::BitXor | Op::Shl | Op::Shr => bin_int!(),
                Op::Neg => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                    stack.push(AbsTy::Int);
                }
                Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => bin_int!(),
                Op::RefEq => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    stack.push(AbsTy::Int);
                }
                Op::Goto(t) => {
                    next.push(t as usize);
                    terminal = true;
                }
                Op::If(t) | Op::IfZ(t) => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                    next.push(t as usize);
                }
                Op::New(c) => {
                    if c as usize >= self.program.classes.len() {
                        return Err(CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        });
                    }
                    stack.push(AbsTy::Ref);
                }
                Op::GetField { ty, .. } => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    stack.push(AbsTy::of(ty));
                }
                Op::PutField { ty, .. } => {
                    self.pop_expect(pc, &mut stack, AbsTy::of(ty), "field value")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                }
                Op::GetStatic(c, i) => {
                    let layout = self
                        .program
                        .classes
                        .get(c as usize)
                        .ok_or(CompileError::BadStaticField {
                            method: self.name.clone(),
                            pc,
                        })?;
                    let decl = layout.statics.get(i as usize).ok_or(
                        CompileError::BadStaticField {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    stack.push(AbsTy::of(decl.ty));
                }
                Op::PutStatic(c, i) => {
                    let layout = self
                        .program
                        .classes
                        .get(c as usize)
                        .ok_or(CompileError::BadStaticField {
                            method: self.name.clone(),
                            pc,
                        })?;
                    let decl = layout.statics.get(i as usize).ok_or(
                        CompileError::BadStaticField {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    self.pop_expect(pc, &mut stack, AbsTy::of(decl.ty), "static value")?;
                }
                Op::NewArray(_) => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int length")?;
                    stack.push(AbsTy::Ref);
                }
                Op::ALoad(ty) => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int index")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "array ref")?;
                    stack.push(AbsTy::of(ty));
                }
                Op::AStore(ty) => {
                    self.pop_expect(pc, &mut stack, AbsTy::of(ty), "element value")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int index")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "array ref")?;
                }
                Op::ArrayLen | Op::IdentityHash => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    stack.push(AbsTy::Int);
                }
                Op::InstanceOf(_) => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "ref")?;
                    stack.push(AbsTy::Int);
                }
                Op::Call(callee) => {
                    let callee = self.program.methods.get(callee as usize).ok_or(
                        CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    self.check_args(pc, &mut stack, callee)?;
                    if let Some(r) = callee.ret {
                        stack.push(AbsTy::of(r));
                    }
                }
                Op::CallVirtual { class, slot } => {
                    let c = self.program.classes.get(class as usize).ok_or(
                        CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    let &mid = c.vtable.get(slot as usize).ok_or(CompileError::BadCallee {
                        method: self.name.clone(),
                        pc,
                    })?;
                    let callee = &self.program.methods[mid as usize];
                    self.check_args(pc, &mut stack, callee)?;
                    if let Some(r) = callee.ret {
                        stack.push(AbsTy::of(r));
                    }
                }
                Op::Ret => {
                    if m.ret.is_some() {
                        return Err(CompileError::ReturnMismatch {
                            method: self.name.clone(),
                            pc,
                        });
                    }
                    terminal = true;
                }
                Op::RetVal => {
                    let want = m.ret.ok_or(CompileError::ReturnMismatch {
                        method: self.name.clone(),
                        pc,
                    })?;
                    self.pop_expect(pc, &mut stack, AbsTy::of(want), "return value")?;
                    terminal = true;
                }
                Op::MonitorEnter | Op::MonitorExit | Op::Notify | Op::NotifyAll => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "monitor ref")?;
                }
                Op::Wait => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "monitor ref")?;
                    stack.push(AbsTy::Int); // status
                }
                Op::TimedWait => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "millis")?;
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "monitor ref")?;
                    stack.push(AbsTy::Int);
                }
                Op::Spawn { method, nargs } => {
                    let callee = self.program.methods.get(method as usize).ok_or(
                        CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    if callee.nargs != nargs as u16 {
                        return Err(CompileError::SignatureMismatch {
                            method: self.name.clone(),
                            pc,
                            detail: format!("Spawn nargs {} != {}", nargs, callee.nargs),
                        });
                    }
                    self.check_args(pc, &mut stack, callee)?;
                    stack.push(AbsTy::Ref); // Thread object
                }
                Op::Join | Op::Interrupt => {
                    self.pop_expect(pc, &mut stack, AbsTy::Ref, "thread ref")?;
                }
                Op::YieldNow => {}
                Op::Sleep => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "millis")?;
                    stack.push(AbsTy::Int); // status
                }
                Op::CurrentThread => stack.push(AbsTy::Ref),
                Op::Now => stack.push(AbsTy::Int),
                Op::NativeCall { native, nargs } => {
                    let decl = self.program.natives.get(native as usize).ok_or(
                        CompileError::BadCallee {
                            method: self.name.clone(),
                            pc,
                        },
                    )?;
                    if decl.nargs != nargs {
                        return Err(CompileError::SignatureMismatch {
                            method: self.name.clone(),
                            pc,
                            detail: format!("native {} expects {} args", decl.name, decl.nargs),
                        });
                    }
                    for _ in 0..nargs {
                        self.pop_expect(pc, &mut stack, AbsTy::Int, "native arg")?;
                    }
                    if decl.returns {
                        stack.push(AbsTy::Int);
                    }
                }
                Op::Print => {
                    self.pop_expect(pc, &mut stack, AbsTy::Int, "int")?;
                }
                Op::PrintStr(_) => {}
                Op::Halt => terminal = true,
            }

            if stack.len() > MAX_OPERAND_STACK {
                return Err(CompileError::StackOverflowStatic {
                    method: self.name.clone(),
                    pc,
                });
            }

            if !terminal {
                if pc + 1 >= n {
                    return Err(CompileError::FallsOffEnd {
                        method: self.name.clone(),
                    });
                }
                next.push(pc + 1);
            }
            let st = (locals, stack);
            for to in next {
                flow_to(&mut states, &mut work, pc, to, &st)?;
            }
        }

        // Build the compiled artifact from the fixed point.
        let mut max_stack = 0u16;
        let mut ref_maps = Vec::with_capacity(n);
        for st in &states {
            match st {
                None => ref_maps.push(None),
                Some((locals, stack)) => {
                    max_stack = max_stack.max(stack.len() as u16);
                    let mut lm = BitSet::with_capacity(locals.len());
                    for (i, &t) in locals.iter().enumerate() {
                        if t == AbsTy::Ref {
                            lm.set(i, true);
                        }
                    }
                    let mut sm = BitSet::with_capacity(stack.len());
                    for (i, &t) in stack.iter().enumerate() {
                        if t == AbsTy::Ref {
                            sm.set(i, true);
                        }
                    }
                    ref_maps.push(Some(RefMap {
                        stack_depth: stack.len() as u16,
                        locals: lm,
                        stack: sm,
                    }));
                }
            }
        }

        let backedge_bools: Vec<bool> = m
            .ops
            .iter()
            .enumerate()
            .map(|(pc, op)| op.branch_target().is_some_and(|t| t as usize <= pc))
            .collect();
        let qops = quicken(self.program, &m.ops, &backedge_bools);
        let backedge = BitSet::from_bools(&backedge_bools);

        Ok(CompiledMethod {
            max_stack,
            frame_words: FRAME_HEADER_WORDS + m.nlocals as u32 + max_stack as u32,
            backedge,
            ref_maps,
            qops,
        })
    }
}

/// The unique callee a `CallVirtual { class, slot }` can ever dispatch to,
/// if the program's class hierarchy makes the site monomorphic: every
/// class that `is_subclass` of the static receiver type resolves the slot
/// to the same method. The class set is closed at compile time (there is
/// no dynamic class loading of *new* classes, only lazy initialization),
/// so the answer is stable for the life of the program.
fn monomorphic_target(program: &Program, class: ClassId, slot: u16) -> Option<MethodId> {
    let mut target: Option<MethodId> = None;
    for (cid, c) in program.classes.iter().enumerate() {
        if !program.is_subclass(cid as ClassId, class) {
            continue;
        }
        let &m = c.vtable.get(slot as usize)?;
        match target {
            None => target = Some(m),
            Some(t) if t == m => {}
            Some(_) => return None,
        }
    }
    target
}

/// The single-op quickened form of one source instruction.
fn quicken_single(program: &Program, op: Op, pc: usize, backedge: &[bool]) -> QOp {
    if let Some(f) = AluFn::of(op) {
        return QOp::Alu(f);
    }
    if let Some(f) = CmpFn::of(op) {
        return QOp::Cmp(f);
    }
    match op {
        Op::Const(v) => QOp::Const(v),
        Op::Load(i) => QOp::Load(i),
        Op::Store(i) => QOp::Store(i),
        Op::Dup => QOp::Dup,
        Op::Pop => QOp::Pop,
        Op::Swap => QOp::Swap,
        Op::Neg => QOp::Neg,
        Op::RefEq => QOp::RefEq,
        Op::Goto(t) => QOp::Goto {
            target: t,
            backedge: backedge[pc],
        },
        Op::If(t) => QOp::If {
            target: t,
            backedge: backedge[pc],
        },
        Op::IfZ(t) => QOp::IfZ {
            target: t,
            backedge: backedge[pc],
        },
        Op::CallVirtual { class, slot } => match monomorphic_target(program, class, slot) {
            Some(callee) => QOp::CallMono {
                class,
                callee,
                nargs: program.methods[callee as usize].nargs,
            },
            None => QOp::Gen(op),
        },
        _ => QOp::Gen(op),
    }
}

/// Try to fuse a superinstruction headed at `pc` (longest pattern first).
/// Constituents are all total (no failure / block / alloc / hook path), so
/// the dispatch loop may batch their cycle accounting before the combined
/// effect — and the loop splits the fusion at run time whenever the timer
/// would expire mid-pattern, so tick boundaries stay cycle-exact.
fn try_fuse(ops: &[Op], pc: usize, backedge: &[bool]) -> Option<QOp> {
    let branch = |pc: usize| -> Option<(u32, bool, bool)> {
        match ops[pc] {
            Op::If(t) => Some((t, backedge[pc], true)),
            Op::IfZ(t) => Some((t, backedge[pc], false)),
            _ => None,
        }
    };
    // Load a; Const v; <cmp>; If/IfZ  (width 4)
    if pc + 3 < ops.len() {
        if let (Op::Load(a), Op::Const(v), Some(f), Some((target, backedge, jump_if))) =
            (ops[pc], ops[pc + 1], CmpFn::of(ops[pc + 2]), branch(pc + 3))
        {
            return Some(QOp::LoadConstCmpIf {
                a,
                v,
                f,
                target,
                backedge,
                jump_if,
            });
        }
    }
    if pc + 2 < ops.len() {
        // Load a; Load b; <alu>  (width 3)
        if let (Op::Load(a), Op::Load(b), Some(f)) = (ops[pc], ops[pc + 1], AluFn::of(ops[pc + 2]))
        {
            return Some(QOp::LoadLoadAlu { a, b, f });
        }
        // Load a; Const v; <alu>  (width 3)
        if let (Op::Load(a), Op::Const(v), Some(f)) = (ops[pc], ops[pc + 1], AluFn::of(ops[pc + 2]))
        {
            return Some(QOp::LoadConstAlu { a, v, f });
        }
    }
    if pc + 1 < ops.len() {
        // Const v; Store local  (width 2)
        if let (Op::Const(v), Op::Store(local)) = (ops[pc], ops[pc + 1]) {
            return Some(QOp::ConstStore { v, local });
        }
        // <cmp>; If/IfZ  (width 2)
        if let (Some(f), Some((target, backedge, jump_if))) = (CmpFn::of(ops[pc]), branch(pc + 1)) {
            return Some(QOp::CmpIf {
                f,
                target,
                backedge,
                jump_if,
            });
        }
    }
    None
}

/// The quickening pass: one [`QOp`] per source pc. Pure function of the
/// (verified) method body and the program's class hierarchy — re-running
/// it (e.g. after a codec round trip) reproduces the same stream.
fn quicken(program: &Program, ops: &[Op], backedge: &[bool]) -> Vec<QOp> {
    let mut q: Vec<QOp> = ops
        .iter()
        .enumerate()
        .map(|(pc, &op)| quicken_single(program, op, pc, backedge))
        .collect();
    for pc in 0..ops.len() {
        if let Some(fused) = try_fuse(ops, pc, backedge) {
            q[pc] = fused;
        }
    }
    q
}

fn compile_method(program: &Program, id: MethodId) -> Result<CompiledMethod, CompileError> {
    let method = &program.methods[id as usize];
    let v = Verifier {
        program,
        method,
        name: method.qualified_name(program),
    };
    v.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn bitset_roundtrip() {
        let mut b = BitSet::with_capacity(130);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 129]);
    }

    #[test]
    fn simple_loop_compiles_with_backedge() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 1).code(|a| {
            a.iconst(0).store(0);
            a.label("top");
            a.load(0).iconst(1).add().store(0);
            a.load(0).iconst(5).lt().if_nz("top");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        // Exactly one backedge: the conditional branch back to "top".
        assert_eq!(c.backedge.iter_ones().count(), 1);
        assert!(c.max_stack >= 2);
        assert_eq!(c.frame_words, 3 + 1 + c.max_stack as u32);
    }

    #[test]
    fn refmap_tracks_reference_local() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("Box").field("v", Ty::Int).build();
        let m = pb.method("m", 0, 2).code(|a| {
            a.iconst(7).store(0); // local 0: int
            a.new(cls).store(1); // local 1: ref
            a.load(1).get_field(0).print();
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        // After both stores (pc 4 = Load(1)), local 1 is a ref, local 0 not.
        let rm = c.ref_maps[4].as_ref().unwrap();
        assert!(rm.locals.get(1));
        assert!(!rm.locals.get(0));
    }

    #[test]
    fn refmap_tracks_stack_slots() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("Box").field("v", Ty::Int).build();
        let m = pb.method("m", 0, 1).code(|a| {
            a.new(cls); // stack: [ref]
            a.iconst(3); // stack: [ref, int]
            a.pop().pop();
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        let rm = c.ref_maps[2].as_ref().unwrap(); // before first Pop
        assert_eq!(rm.stack_depth, 2);
        assert!(rm.stack.get(0));
        assert!(!rm.stack.get(1));
    }

    #[test]
    fn merge_of_int_and_ref_is_dead_and_unusable() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("Box").field("v", Ty::Int).build();
        // local 0 is int on one path, ref on the other; using it after the
        // merge must be rejected.
        let m = pb.method("m", 1, 2).code(|a| {
            a.load(0).if_nz("refpath");
            a.iconst(1).store(1);
            a.goto("merge");
            a.label("refpath");
            a.new(cls).store(1);
            a.label("merge");
            a.load(1).pop();
            a.halt();
        });
        let err = pb.finish(m).unwrap_err();
        assert!(matches!(err, CompileError::DeadSlotUse { .. }));
    }

    #[test]
    fn dead_merge_slot_is_not_in_refmap() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("Box").field("v", Ty::Int).build();
        let m = pb.method("m", 1, 2).code(|a| {
            a.load(0).if_nz("refpath");
            a.iconst(1).store(1);
            a.goto("merge");
            a.label("refpath");
            a.new(cls).store(1);
            a.label("merge");
            a.halt(); // never uses local 1
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        let halt_pc = p.methods[m as usize].ops.len() - 1;
        let rm = c.ref_maps[halt_pc].as_ref().unwrap();
        assert!(!rm.locals.get(1), "dead merged slot must not be marked ref");
    }

    #[test]
    fn stack_underflow_rejected() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 0).code(|a| {
            a.add().halt();
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::StackUnderflow { .. }
        ));
    }

    #[test]
    fn type_confusion_rejected() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 0).code(|a| {
            a.null().iconst(1).add().pop().halt();
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn falls_off_end_rejected() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 0).code(|a| {
            a.iconst(1).pop();
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::FallsOffEnd { .. }
        ));
    }

    #[test]
    fn inconsistent_merge_depth_rejected() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 1, 1).code(|a| {
            a.load(0).if_nz("push2");
            a.iconst(1);
            a.goto("merge");
            a.label("push2");
            a.iconst(1).iconst(2);
            a.label("merge");
            a.pop().halt();
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::InconsistentStackDepth { .. }
        ));
    }

    #[test]
    fn return_type_checked() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 0).code(|a| {
            a.iconst(1).ret_val(); // method declared with no return
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::ReturnMismatch { .. }
        ));
    }

    #[test]
    fn builtins_are_injected_and_helper_methods_verify() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("main", 0, 0).code(|a| {
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let b = p.builtins;
        assert_eq!(p.class(b.thread_class).name, "Thread");
        assert_eq!(p.class(b.string_class).name, "String");
        assert_eq!(p.class(b.vm_method_class).name, "VM_Method");
        // The instrumentation helpers verified (they have compiled forms)
        // and contain at least one backedge each (a yield point inside
        // instrumentation — the liveClock hazard).
        for helper in [b.flush_method, b.fill_method] {
            let c = p.compiled(helper);
            assert!(c.backedge.iter_ones().next().is_some());
        }
        // getLineNumberAt sits in VM_Method's vtable.
        assert_eq!(
            p.class(b.vm_method_class).vtable
                [p.class(b.vm_method_class).vslots["getLineNumberAt"] as usize],
            b.get_line_number_at
        );
    }

    #[test]
    fn call_signature_checked() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.func("f", 1, 1).code(|a| {
            a.load(0).ret_val();
        });
        let m = pb.method("m", 0, 0).code(|a| {
            a.null().call(callee).pop().halt(); // ref where int expected
        });
        assert!(matches!(
            pb.finish(m).unwrap_err(),
            CompileError::SignatureMismatch { .. }
        ));
    }

    #[test]
    fn quickening_covers_every_pc_and_fuses_patterns() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 2).code(|a| {
            a.iconst(0).store(0); // ConstStore head at pc 0
            a.iconst(0).store(1); // ConstStore head at pc 2
            a.label("top");
            a.load(0).iconst(10).ge().if_nz("done"); // LoadConstCmpIf head at pc 4
            a.load(1).load(0).add().store(1); // LoadLoadAlu head at pc 8
            a.load(0).iconst(1).add().store(0); // LoadConstAlu head at pc 12
            a.goto("top");
            a.label("done");
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        let n = p.method(m).ops.len();
        assert_eq!(c.qops.len(), n, "one QOp per source pc");
        assert!(matches!(c.qops[0], QOp::ConstStore { v: 0, local: 0 }));
        // Interior pc of the fusion keeps its own single-op form.
        assert!(matches!(c.qops[1], QOp::Store(0)));
        assert!(matches!(
            c.qops[4],
            QOp::LoadConstCmpIf { a: 0, v: 10, f: CmpFn::Ge, jump_if: true, .. }
        ));
        assert!(matches!(c.qops[8], QOp::LoadLoadAlu { a: 1, b: 0, f: AluFn::Add }));
        assert!(matches!(c.qops[12], QOp::LoadConstAlu { a: 0, v: 1, f: AluFn::Add }));
        // The goto back to "top" bakes its backedge bit.
        let goto_pc = (0..n)
            .find(|&pc| matches!(p.method(m).ops[pc], Op::Goto(_)))
            .unwrap();
        assert!(matches!(c.qops[goto_pc], QOp::Goto { backedge: true, .. }));
        // Widths cover the stream without gaps when walked from the entry.
        let mut pc = 0usize;
        let mut seen = 0;
        while pc < 4 {
            pc += c.qops[pc].width() as usize;
            seen += 1;
        }
        assert!(seen <= 2, "entry block is fused into at most 2 dispatches");
    }

    #[test]
    fn div_and_rem_are_never_fused() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("m", 0, 2).code(|a| {
            a.iconst(7).store(0);
            a.load(0).load(0).div().pop(); // Load;Load;Div must NOT fuse
            a.load(0).iconst(2).rem().pop(); // Load;Const;Rem must NOT fuse
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        assert!(c.qops.iter().all(|q| !matches!(
            q,
            QOp::LoadLoadAlu { .. } | QOp::LoadConstAlu { .. }
        )));
        assert!(c
            .qops
            .iter()
            .any(|q| matches!(q, QOp::Gen(Op::Div) | QOp::Gen(Op::Rem))));
    }

    #[test]
    fn monomorphic_virtual_calls_devirtualize_overridden_ones_do_not() {
        let mut pb = ProgramBuilder::new();
        let base = pb.class("Base").build();
        pb.virtual_method(base, "f", vec![], 1, Some(Ty::Int)).code(|a| {
            a.iconst(1).ret_val();
        });
        pb.virtual_method(base, "g", vec![], 1, Some(Ty::Int)).code(|a| {
            a.iconst(3).ret_val();
        });
        let derived = pb.class_extends("Derived", Some(base)).build();
        pb.virtual_method(derived, "f", vec![], 1, Some(Ty::Int)).code(|a| {
            a.iconst(2).ret_val();
        });
        let f_slot = pb.vslot(base, "f");
        let g_slot = pb.vslot(base, "g");
        let m = pb.method("main", 0, 1).code(|a| {
            a.new(derived).store(0);
            a.load(0).call_virtual(base, f_slot).print(); // polymorphic
            a.load(0).call_virtual(base, g_slot).print(); // monomorphic
            a.load(0).call_virtual(derived, f_slot).print(); // mono via Derived
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        let c = p.compiled(m);
        let virtual_qops: Vec<&QOp> = p
            .method(m)
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, Op::CallVirtual { .. }))
            .map(|(pc, _)| &c.qops[pc])
            .collect();
        assert!(matches!(virtual_qops[0], QOp::Gen(Op::CallVirtual { .. })));
        assert!(matches!(virtual_qops[1], QOp::CallMono { nargs: 1, .. }));
        assert!(matches!(virtual_qops[2], QOp::CallMono { nargs: 1, .. }));
    }

    #[test]
    fn quickening_is_deterministic() {
        let build = || {
            let mut pb = ProgramBuilder::new();
            let m = pb.method("m", 0, 2).code(|a| {
                a.iconst(0).store(0);
                a.label("top");
                a.load(0).iconst(100).ge().if_nz("done");
                a.load(0).iconst(1).add().store(0);
                a.goto("top");
                a.label("done");
                a.halt();
            });
            pb.finish(m).unwrap()
        };
        let (a, b) = (build(), build());
        for (ma, mb) in a.methods.iter().zip(b.methods.iter()) {
            assert_eq!(
                ma.compiled.as_ref().unwrap().qops,
                mb.compiled.as_ref().unwrap().qops
            );
        }
    }

    #[test]
    fn virtual_call_types_its_result() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("C").build();
        pb.virtual_method(cls, "f", vec![], 1, Some(Ty::Int))
            .code(|a| {
                a.iconst(42).ret_val();
            });
        let slot = pb.vslot(cls, "f");
        let m = pb.method("m", 0, 1).code(|a| {
            a.new(cls).store(0);
            a.load(0).call_virtual(cls, slot).print();
            a.halt();
        });
        let p = pb.finish(m).unwrap();
        assert!(p.compiled(m).max_stack >= 1);
    }
}
