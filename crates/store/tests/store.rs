//! Store integration against real recorded workloads: dedup across the
//! fig1 family, byte-identical reconstruction, store-served time-travel
//! seeks with the ≤-one-block-span guarantee, and fingerprint
//! neutrality under compaction and concurrent ingest.

use baselines::TimeTravel;
use dejavu::blocktrace::encode_block;
use dejavu::{
    record_run, replay_run, BlockFile, ExecSpec, SymmetryConfig, Trace, DEFAULT_BLOCK_BUDGET,
};
use store::{Store, StoreError, DEFAULT_COLD_THRESHOLD};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("store-it-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic spec for a named workload (timer base/jitter mirror the
/// corpus/fleet environment so fingerprints are family-stable).
fn spec_for(name: &str, seed: u64) -> (ExecSpec, fn(&mut djvm::Vm)) {
    let w = workloads::registry()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name}"));
    let mut spec = ExecSpec::new((w.build)()).with_seed(seed);
    spec.timer_base = 211;
    spec.timer_jitter = 60;
    (spec, w.natives)
}

fn record(name: &str, seed: u64) -> (u64, Trace, Vec<u8>) {
    let (spec, natives) = spec_for(name, seed);
    let (rec, trace) = record_run(&spec, natives, SymmetryConfig::full(), true);
    let bytes = encode_block(&trace, DEFAULT_BLOCK_BUDGET);
    (rec.fingerprint, trace, bytes)
}

fn replay_vm(spec: &ExecSpec) -> djvm::Vm {
    djvm::Vm::boot(
        Arc::clone(&spec.program),
        spec.vm.clone(),
        Box::new(djvm::JitteredTimer::new(
            spec.seed,
            spec.timer_base,
            spec.timer_jitter,
        )),
        Box::new(djvm::CycleClock::new(spec.clock_origin, spec.cycles_per_ms)),
    )
    .expect("workload boots")
}

#[test]
fn fig1_family_dedups_and_replays_bit_identical() {
    let root = scratch("family");
    let store = Store::open(&root).unwrap();
    let mut entries = Vec::new();
    for name in ["fig1_ab", "fig1_cd", "fig1_hot"] {
        for seed in [1u64, 2] {
            let (fp, _, bytes) = record(name, seed);
            // First put: unverified (the fleet-ingest path).
            let a = store.put_bytes(name, seed, &bytes, 0, "").unwrap();
            // Second record of the same (workload, seed) is byte-identical
            // (record is deterministic), so the whole run dedups.
            let (fp2, _, bytes2) = record(name, seed);
            assert_eq!(fp, fp2, "record determinism");
            assert_eq!(bytes, bytes2);
            let b = store.put_bytes(name, seed, &bytes2, fp2, "").unwrap();
            assert_eq!(a.entry, b.entry, "same run converges to one entry");
            assert_eq!(b.blocks_new, 0, "re-put writes no blocks");
            assert_eq!(b.fingerprint, fp, "fingerprint upgraded in place");
            entries.push((name, seed, a.entry.clone(), fp, bytes));
        }
    }
    // Reconstruction is byte-identical, and a replay served out of the
    // store reproduces the recorded fingerprint exactly.
    for (name, seed, id, fp, bytes) in &entries {
        assert_eq!(&store.get_bytes(id).unwrap(), bytes);
        let stored = store.open_trace(id).unwrap();
        assert_eq!(stored.entry.fingerprint, *fp);
        let (spec, _) = spec_for(name, *seed);
        let (rep, desyncs) = replay_run(&spec, stored.trace, SymmetryConfig::full());
        assert!(desyncs.is_empty(), "{name}/{seed}: clean replay");
        assert_eq!(rep.fingerprint, *fp, "{name}/{seed}: fingerprint");
    }
    // The dedup claim: 12 puts of 6 distinct runs → naive bytes at least
    // 2× the stored bytes is not guaranteed at this tiny scale, but the
    // entry/blocks shape is.
    assert_eq!(store.entries().unwrap().len(), 6);
}

#[test]
fn store_served_seek_is_one_block_span_and_matches_file_backed() {
    let root = scratch("seek");
    let store = Store::open(&root).unwrap();
    let (fp, trace, bytes) = record("fig1_hot", 5);
    let id = store.put_bytes("fig1_hot", 5, &bytes, fp, "").unwrap().entry;

    let bf = BlockFile::parse(bytes.clone()).unwrap();
    let file_bounds = bf.boundaries();
    let stored = store.open_trace(&id).unwrap();
    assert_eq!(stored.boundaries, file_bounds, "store serves the same checkpoint keys");
    assert_eq!(stored.trace, trace);

    let (spec, _) = spec_for("fig1_hot", 5);
    let run = |t: Trace, bounds: Vec<u64>| {
        let mut tt = TimeTravel::new_indexed(
            replay_vm(&spec),
            t,
            SymmetryConfig::full(),
            u64::MAX, // boundary checkpoints only
            bounds,
        );
        let last = *file_bounds.last().unwrap();
        tt.seek_logical(last);
        let mid = file_bounds[file_bounds.len() / 2];
        tt.seek_logical(mid + 1)
    };
    assert!(file_bounds.len() >= 2, "need multiple blocks to seek across");
    let from_store = run(stored.trace.clone(), stored.boundaries.clone());
    let from_file = run(bf.to_trace().unwrap(), file_bounds.clone());
    assert_eq!(
        from_store.events_replayed, from_file.events_replayed,
        "store- and file-served seeks replay identically"
    );
    // ≤ one block span: never more than the largest block's event count.
    let max_span = bf
        .index
        .iter()
        .map(|b| b.event_count as u64)
        .max()
        .unwrap();
    assert!(
        from_store.events_replayed <= max_span,
        "replayed {} events, block span is {max_span}",
        from_store.events_replayed
    );
}

#[test]
fn compaction_under_concurrent_ingest_preserves_fingerprints() {
    let root = scratch("concurrent");
    let store = Arc::new(Store::open(&root).unwrap());
    // Pre-record serially (record_run itself is timed; keep the
    // concurrency on the store, which is the system under test).
    // fig1_hot: every run has real blocks, so compaction and ingest
    // genuinely contend for the same record files.
    let runs: Vec<(String, u64, u64, Vec<u8>)> = (10u64..18)
        .map(|seed| {
            let (fp, _, bytes) = record("fig1_hot", seed);
            ("fig1_hot".to_string(), seed, fp, bytes)
        })
        .collect();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let compactor = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut passes = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                store.compact(DEFAULT_COLD_THRESHOLD).unwrap();
                passes += 1;
            }
            passes
        })
    };

    let mut handles = Vec::new();
    for chunk in runs.chunks(2) {
        let store = Arc::clone(&store);
        let chunk = chunk.to_vec();
        handles.push(std::thread::spawn(move || {
            chunk
                .into_iter()
                .map(|(name, seed, fp, bytes)| {
                    let out = store.put_bytes(&name, seed, &bytes, fp, "").unwrap();
                    (name, seed, fp, bytes, out.entry)
                })
                .collect::<Vec<_>>()
        }));
    }
    let ingested: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let passes = compactor.join().unwrap();
    assert!(passes > 0, "compactor ran against live ingest");

    // Every run: byte-identical get, fingerprint-identical replay —
    // with compaction racing the whole time and one more pass after.
    store.compact(DEFAULT_COLD_THRESHOLD).unwrap();
    for (name, seed, fp, bytes, id) in ingested {
        assert_eq!(store.get_bytes(&id).unwrap(), bytes, "{name}/{seed}");
        let stored = store.open_trace(&id).unwrap();
        let (spec, _) = spec_for(&name, seed);
        let (rep, desyncs) = replay_run(&spec, stored.trace, SymmetryConfig::full());
        assert!(desyncs.is_empty());
        assert_eq!(rep.fingerprint, fp, "{name}/{seed}: fingerprint under compaction");
    }

    // gc after everything: nothing is unreferenced. The verification
    // loop above bumped heat (reads are heat, by design), so one more
    // compact may re-tier — but the one after that must be a no-op.
    let gc = store.gc().unwrap();
    assert_eq!(gc.removed_blocks, 0);
    store.compact(DEFAULT_COLD_THRESHOLD).unwrap();
    let c = store.compact(DEFAULT_COLD_THRESHOLD).unwrap();
    assert_eq!(c.migrated, 0, "consecutive compacts converge");
}

#[test]
fn corrupt_block_file_is_typed_not_panic() {
    let root = scratch("corrupt");
    let store = Store::open(&root).unwrap();
    // fig1_hot: the block-rich family member (fig1_ab records an empty
    // trace at these timer settings — zero blocks to damage).
    let (fp, _, bytes) = record("fig1_hot", 77);
    let id = store.put_bytes("fig1_hot", 77, &bytes, fp, "").unwrap().entry;
    // Damage one block record on disk.
    let entry = store.entry(&id).unwrap();
    let victim = entry.blocks[0].digest;
    let path = root
        .join("blocks")
        .join(&victim.hex()[..2])
        .join(format!("{}.blk", victim.hex()));
    let mut buf = std::fs::read(&path).unwrap();
    let mid = buf.len() / 2;
    buf[mid] ^= 0xff;
    std::fs::write(&path, &buf).unwrap();
    let err = store.get_bytes(&id).unwrap_err();
    assert_eq!(err.code(), 1);
    assert!(matches!(err, StoreError::Corrupt(_) | StoreError::Trace(_)));
}
