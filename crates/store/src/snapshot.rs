//! The checkpoint-snapshot tier: a bounded in-process cache of decoded
//! blocks, keyed by content digest. Opening a run out of the store
//! decodes only the blocks not already resident — 100 runs of the same
//! workload family share one decode of every shared block — and the
//! catalog's per-block `first_logical_time` list keys the time-travel
//! layer's boundary checkpoints, so a store-served
//! `TimeTravel::seek_logical` keeps the existing ≤-one-block-span
//! replay guarantee.
//!
//! The cache is an *observer* of store reads: hits and misses are
//! counted (surfaced through fleet `stats --fleet`), but cache state
//! never changes what is decoded — the decoded events are a pure
//! function of the block bytes, so a hit and a miss are bit-equivalent.

use crate::catalog::CatalogEntry;
use codec::Digest128;
use dejavu::trace::{DataRec, SwitchRec, Trace};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Decoded events of one block, shared between cached opens.
pub type DecodedBlock = Arc<(Vec<SwitchRec>, Vec<DataRec>)>;

/// Cache key: the digest names the raw bytes; the decode parameters
/// (paranoid flag and the catalog's counts) complete the function
/// input, so two entries that disagree about a digest's counts can
/// never alias each other's decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    pub digest: Digest128,
    pub paranoid: bool,
    pub event_count: u32,
    pub switch_count: u32,
}

/// FIFO-bounded decoded-block cache.
#[derive(Debug, Default)]
pub struct BlockCache {
    map: HashMap<BlockKey, DecodedBlock>,
    order: VecDeque<BlockKey>,
    cap: usize,
}

/// Default cache capacity in blocks (~4096 events each): large enough
/// to hold the whole working set of a fig1-family corpus, small enough
/// to bound a long-lived fleet process.
pub const DEFAULT_CACHE_BLOCKS: usize = 1024;

impl BlockCache {
    pub fn new(cap: usize) -> Self {
        BlockCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    pub fn get(&self, key: &BlockKey) -> Option<DecodedBlock> {
        self.map.get(key).cloned()
    }

    pub fn insert(&mut self, key: BlockKey, block: DecodedBlock) {
        if self.map.insert(key, block).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A run opened out of the store, ready for replay: the decoded trace,
/// the block-boundary checkpoint keys, and the catalog metadata the
/// caller needs to build a spec (workload, seed) and to cross-check a
/// replay (fingerprint).
#[derive(Debug, Clone)]
pub struct StoredTrace {
    pub entry: CatalogEntry,
    pub trace: Trace,
    /// `first_logical_time` per block — feed to
    /// `TimeTravel::new_indexed` for boundary checkpointing.
    pub boundaries: Vec<u64>,
}

/// Splice per-block decoded events into one [`Trace`], enforcing the
/// canonical switches-first unified order exactly as
/// [`dejavu::BlockFile::to_trace`] does.
pub fn splice_blocks(
    paranoid: bool,
    blocks: Vec<DecodedBlock>,
) -> Result<Trace, crate::error::StoreError> {
    let mut trace = Trace {
        paranoid,
        ..Trace::default()
    };
    for b in blocks {
        let (sw, da) = b.as_ref();
        if !sw.is_empty() && !trace.data.is_empty() {
            return Err(crate::error::StoreError::Corrupt(
                "stored blocks: switch events after data events".into(),
            ));
        }
        trace.switches.extend_from_slice(sw);
        trace.data.extend_from_slice(da);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codec::digest128;

    fn key(n: u8) -> BlockKey {
        BlockKey {
            digest: digest128(&[n]),
            paranoid: false,
            event_count: 1,
            switch_count: 0,
        }
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let mut c = BlockCache::new(2);
        let blk: DecodedBlock = Arc::new((Vec::new(), vec![DataRec::Clock(1)]));
        c.insert(key(0), blk.clone());
        c.insert(key(1), blk.clone());
        c.insert(key(2), blk.clone());
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(0)).is_none(), "oldest evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_some());
        // Re-inserting an existing key is not a duplicate order entry.
        c.insert(key(2), blk);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn splice_enforces_switches_first() {
        let sw: DecodedBlock = Arc::new((vec![SwitchRec { nyp: 1, check_tid: u32::MAX }], Vec::new()));
        let da: DecodedBlock = Arc::new((Vec::new(), vec![DataRec::Clock(9)]));
        assert!(splice_blocks(false, vec![sw.clone(), da.clone()]).is_ok());
        assert!(splice_blocks(false, vec![da, sw]).is_err());
    }
}
