//! Typed store failures. Every store code path returns one of these —
//! corruption, hostile bytes, or concurrent interference are never a
//! panic — and [`StoreError::code`] maps each variant onto the CLI's
//! exit-code contract (1 = bad input / I/O / corruption, 2 = a
//! divergence-class disagreement).

use dejavu::TraceError;
use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem-level failure (path + OS error text).
    Io(String),
    /// The store's own structures are damaged (catalog JSON, block
    /// record framing, digest mismatch, reconstruction disagreement).
    Corrupt(String),
    /// The DJVB/flat payload inside a block or entry failed trace-level
    /// decode.
    Trace(TraceError),
    /// No entry / block under the requested identity.
    NotFound(String),
    /// Two puts of the same entry identity carry different *verified*
    /// fingerprints — the replay-divergence class, not an I/O class.
    FingerprintMismatch {
        entry: String,
        have: u64,
        got: u64,
    },
}

impl StoreError {
    /// Exit class on the repo-wide 0/1/2 contract: everything here is
    /// 1 (corrupt / bad input) except a fingerprint disagreement, which
    /// is the divergence class (2).
    pub fn code(&self) -> u8 {
        match self {
            StoreError::FingerprintMismatch { .. } => 2,
            _ => 1,
        }
    }

    /// Wrap an OS error with the path it happened on.
    pub fn io(path: &std::path::Path, err: std::io::Error) -> Self {
        StoreError::Io(format!("{}: {err}", path.display()))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(what) => write!(f, "store i/o error: {what}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StoreError::Trace(e) => write!(f, "stored trace: {e}"),
            StoreError::NotFound(what) => write!(f, "not in store: {what}"),
            StoreError::FingerprintMismatch { entry, have, got } => write!(
                f,
                "fingerprint mismatch for entry {entry}: store has {have:#018x}, put carries {got:#018x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<TraceError> for StoreError {
    fn from(e: TraceError) -> Self {
        StoreError::Trace(e)
    }
}
